"""Timeline recording.

Figures 1, 4 and 5 of the paper are *timelines*: requests, measurement
start/end, lock release, infections, detections.  :class:`Trace`
collects timestamped records from every component so the figure
benchmarks can print the same timelines from simulation output.

Long-running fleet campaigns (:mod:`repro.fleet`) keep thousands of
simulations alive at once, so the trace also supports a bounded
ring-buffer mode (``max_records``) and a JSONL export hook
(:meth:`Trace.to_jsonl`) for shipping timelines into run artifacts.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional


def _jsonable(value: Any) -> Any:
    """Coerce a trace payload value into something JSON can hold."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


@dataclass(slots=True)
class TraceRecord:
    """One timeline event.

    Treated as immutable by convention; ``slots`` (rather than
    ``frozen``) keeps construction cheap on the per-compute hot path,
    where ``object.__setattr__`` overhead is measurable at fleet scale.
    """

    time: float
    kind: str
    source: str
    data: Dict[str, Any]

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        text = f"[{self.time:12.6f}] {self.kind:<12} {self.source}"
        return f"{text} {extra}" if extra else text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "source": self.source,
            "data": {k: _jsonable(v) for k, v in sorted(self.data.items())},
        }


class Trace:
    """Timestamped :class:`TraceRecord` storage with query helpers.

    Unbounded (a plain append-only list) by default; pass
    ``max_records`` to keep only the newest records in a ring buffer --
    older records are silently discarded and counted in ``dropped``.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None)")
        self.max_records = max_records
        self.records: Any = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.dropped = 0

    def record(self, time: float, kind: str, source: str, **data: Any) -> None:
        if (
            self.max_records is not None
            and len(self.records) == self.max_records
        ):
            self.dropped += 1
        self.records.append(TraceRecord(time, kind, source, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- queries --------------------------------------------------------

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided criteria, in time order."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str, source: Optional[str] = None) -> Optional[TraceRecord]:
        matches = self.filter(kind=kind, source=source)
        return matches[0] if matches else None

    def last(self, kind: str, source: Optional[str] = None) -> Optional[TraceRecord]:
        matches = self.filter(kind=kind, source=source)
        return matches[-1] if matches else None

    def between(self, t_start: float, t_end: float) -> List[TraceRecord]:
        return [r for r in self.records if t_start <= r.time <= t_end]

    def kinds(self) -> List[str]:
        """Distinct record kinds, in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.kind, None)
        return list(seen)

    # -- rendering / export ---------------------------------------------

    def render(
        self, kinds: Optional[Iterable[str]] = None, limit: Optional[int] = None
    ) -> str:
        """Human-readable multi-line timeline (used by figure benches)."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            str(rec)
            for rec in self.records
            if wanted is None or rec.kind in wanted
        ]
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines)

    def to_jsonl(self, path: Any) -> int:
        """Write every retained record to ``path`` as one JSON object
        per line, closed by a ``trace.meta`` line carrying the counts
        -- in ring-buffer mode the *oldest* records are silently
        discarded, so without the meta line a reader cannot tell a
        complete export from a truncated one.  Returns the number of
        data records written (the meta line is not counted).

        The export is serialized in memory and flushed with a single
        buffered ``write``: per-record ``write`` calls dominated export
        time for fleet-scale traces, and one join yields the identical
        bytes."""
        lines = [
            json.dumps(rec.to_dict(), sort_keys=True,
                       separators=(",", ":"))
            for rec in self.records
        ]
        count = len(lines)
        meta = {
            "kind": "trace.meta",
            "records": count,
            "dropped": self.dropped,
            "max_records": self.max_records,
        }
        lines.append(
            json.dumps(meta, sort_keys=True, separators=(",", ":"))
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return count
