"""Timeline recording.

Figures 1, 4 and 5 of the paper are *timelines*: requests, measurement
start/end, lock release, infections, detections.  :class:`Trace`
collects timestamped records from every component so the figure
benchmarks can print the same timelines from simulation output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timeline event."""

    time: float
    kind: str
    source: str
    data: Dict[str, Any]

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        text = f"[{self.time:12.6f}] {self.kind:<12} {self.source}"
        return f"{text} {extra}" if extra else text


class Trace:
    """An append-only list of :class:`TraceRecord` with query helpers."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, time: float, kind: str, source: str, **data: Any) -> None:
        self.records.append(TraceRecord(time, kind, source, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- queries --------------------------------------------------------

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided criteria, in time order."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str, source: Optional[str] = None) -> Optional[TraceRecord]:
        matches = self.filter(kind=kind, source=source)
        return matches[0] if matches else None

    def last(self, kind: str, source: Optional[str] = None) -> Optional[TraceRecord]:
        matches = self.filter(kind=kind, source=source)
        return matches[-1] if matches else None

    def between(self, t_start: float, t_end: float) -> List[TraceRecord]:
        return [r for r in self.records if t_start <= r.time <= t_end]

    def kinds(self) -> List[str]:
        """Distinct record kinds, in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.kind, None)
        return list(seen)

    # -- rendering --------------------------------------------------------

    def render(
        self, kinds: Optional[Iterable[str]] = None, limit: Optional[int] = None
    ) -> str:
        """Human-readable multi-line timeline (used by figure benches)."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            str(rec)
            for rec in self.records
            if wanted is None or rec.kind in wanted
        ]
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines)
