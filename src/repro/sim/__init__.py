"""Discrete-event simulation substrate: the simple IoT device.

This subpackage provides the "hardware" the paper assumes:

* :mod:`repro.sim.engine` -- event queue and simulation clock;
* :mod:`repro.sim.process` -- generator-coroutine processes on a single
  CPU with priority preemption and interrupt masking (the mechanism
  behind *atomic* attestation);
* :mod:`repro.sim.memory` -- block-structured attested memory;
* :mod:`repro.sim.mpu` -- per-block lock bits (the mechanism behind
  *memory locking*);
* :mod:`repro.sim.task` -- periodic real-time tasks with deadline
  accounting (the safety-critical application substrate);
* :mod:`repro.sim.device` -- the prover device tying it all together;
* :mod:`repro.sim.network` -- verifier/prover channels with latency and
  adversarial filters;
* :mod:`repro.sim.trace` -- timeline recording used by the figure
  benchmarks.
"""

from repro.sim.engine import Simulator, Signal, EventHandle
from repro.sim.process import (
    CPU,
    Process,
    Compute,
    Sleep,
    WaitSignal,
    Atomic,
    Yield,
)
from repro.sim.memory import Memory, MemoryBlock, Region, MemoryImage
from repro.sim.mpu import MemoryProtectionUnit, FaultPolicy
from repro.sim.task import PeriodicTask, TaskStats
from repro.sim.device import Device, SecureTimer
from repro.sim.network import (
    Channel,
    ChannelFilter,
    DropAdversary,
    Endpoint,
    FilterVerdict,
    Message,
)
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "Signal",
    "EventHandle",
    "CPU",
    "Process",
    "Compute",
    "Sleep",
    "WaitSignal",
    "Atomic",
    "Yield",
    "Memory",
    "MemoryBlock",
    "Region",
    "MemoryImage",
    "MemoryProtectionUnit",
    "FaultPolicy",
    "PeriodicTask",
    "TaskStats",
    "Device",
    "SecureTimer",
    "Channel",
    "ChannelFilter",
    "FilterVerdict",
    "Endpoint",
    "Message",
    "DropAdversary",
    "Trace",
    "TraceRecord",
]
