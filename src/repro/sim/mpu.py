"""Memory Protection Unit: per-block lock bits.

The memory-locking mechanisms of Section 3.1 ([5], prototyped on
HYDRA/seL4) make regions *temporarily read-only* during measurement.
This module is the hardware half of that design: a lock bit per block,
checked on every write, with accounting of how long each block stayed
locked (the paper's "writable memory availability" column in Table 1).

Lock and unlock calls carry a configurable syscall cost hook so the
locking mechanisms can charge simulated time for MPU reconfiguration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import LockStateError, MemoryFault
from repro.sim.engine import Signal, Simulator


class FaultPolicy(enum.Enum):
    """What a write to a locked block does to the writer.

    ``RAISE``
        The write faults -- :class:`MemoryFault` propagates to the
        writer, which may catch it and retry (how our tasks model
        "task delayed by locking").
    ``DROP``
        The write is silently discarded (write-ignore hardware).
    """

    RAISE = "raise"
    DROP = "drop"


@dataclass(frozen=True)
class FaultRecord:
    """One rejected write attempt."""

    time: float
    block: int
    actor: str


@dataclass(frozen=True)
class LockInterval:
    """A closed interval during which one block was locked."""

    block: int
    locked_at: float
    released_at: float

    @property
    def duration(self) -> float:
        return self.released_at - self.locked_at


class MemoryProtectionUnit:
    """Per-block lock bits with fault accounting.

    The MPU is deliberately mechanism-free: *policies* (All-Lock,
    Dec-Lock, Inc-Lock, ...) live in :mod:`repro.ra.locking` and drive
    the MPU through :meth:`lock` / :meth:`unlock`.
    """

    def __init__(
        self,
        sim: Simulator,
        block_count: int,
        policy: FaultPolicy = FaultPolicy.RAISE,
    ) -> None:
        self.sim = sim
        self.block_count = block_count
        self.policy = policy
        self._locked: List[bool] = [False] * block_count
        self._locked_since: List[Optional[float]] = [None] * block_count
        self.faults: List[FaultRecord] = []
        self.lock_history: List[LockInterval] = []
        self.release_signal = Signal(sim, "mpu.release")
        self.lock_ops = 0
        self.unlock_ops = 0

    # -- state ----------------------------------------------------------

    def is_locked(self, block_index: int) -> bool:
        return self._locked[block_index]

    def locked_blocks(self) -> List[int]:
        return [i for i, flag in enumerate(self._locked) if flag]

    def locked_count(self) -> int:
        return sum(self._locked)

    # -- configuration ----------------------------------------------------

    def lock(self, block_index: int) -> None:
        """Make one block read-only.  Idempotent locking is an error:
        the mechanisms in the paper never double-lock, so a double lock
        indicates a policy bug and raises :class:`LockStateError`."""
        if self._locked[block_index]:
            raise LockStateError(f"block {block_index} already locked")
        self._locked[block_index] = True
        self._locked_since[block_index] = self.sim.now
        self.lock_ops += 1

    def unlock(self, block_index: int) -> None:
        """Release one block.  Fires :attr:`release_signal` so writers
        blocked on a fault can retry."""
        if not self._locked[block_index]:
            raise LockStateError(f"block {block_index} not locked")
        self._locked[block_index] = False
        since = self._locked_since[block_index]
        self._locked_since[block_index] = None
        if since is not None:
            self.lock_history.append(
                LockInterval(block_index, since, self.sim.now)
            )
        self.unlock_ops += 1
        self.release_signal.fire(block_index)

    def lock_many(self, blocks: Iterable[int]) -> None:
        for block_index in blocks:
            self.lock(block_index)

    def unlock_many(self, blocks: Iterable[int]) -> None:
        for block_index in blocks:
            self.unlock(block_index)

    def lock_all(self) -> None:
        self.lock_many(
            i for i in range(self.block_count) if not self._locked[i]
        )

    def unlock_all(self) -> None:
        self.unlock_many(
            i for i in range(self.block_count) if self._locked[i]
        )

    def reset(self) -> int:
        """Clear every lock bit (device reset / brownout).

        MPU configuration registers are volatile: after a reset **all
        lock bits are cleared** and every block is writable again --
        this is the documented post-reset state the resilience tests
        pin down.  Open lock intervals are closed at the current time
        so lock-hold accounting stays consistent, but -- unlike
        :meth:`unlock` -- no ``release_signal`` fires and no unlock
        ops are charged: nothing executed the release, the hardware
        simply forgot.  Returns the number of bits cleared.
        """
        cleared = 0
        for block_index in range(self.block_count):
            if not self._locked[block_index]:
                continue
            self._locked[block_index] = False
            since = self._locked_since[block_index]
            self._locked_since[block_index] = None
            if since is not None:
                self.lock_history.append(
                    LockInterval(block_index, since, self.sim.now)
                )
            cleared += 1
        return cleared

    # -- enforcement ------------------------------------------------------

    def check_write(self, block_index: int, actor: str) -> bool:
        """Called by :class:`~repro.sim.memory.Memory` on every write.

        Returns ``True`` if the write may proceed.  For a locked block:
        under :attr:`FaultPolicy.RAISE` a :class:`MemoryFault` is raised
        to the writer; under :attr:`FaultPolicy.DROP` the method returns
        ``False`` and the memory silently discards the write.
        """
        if not self._locked[block_index]:
            return True
        self.faults.append(FaultRecord(self.sim.now, block_index, actor))
        if self.policy is FaultPolicy.RAISE:
            raise MemoryFault(block_index)
        return False

    # -- accounting ---------------------------------------------------------

    def total_locked_time(self) -> float:
        """Sum of completed per-block lock durations (block-seconds)."""
        return sum(interval.duration for interval in self.lock_history)

    def mean_lock_duration(self) -> float:
        if not self.lock_history:
            return 0.0
        return self.total_locked_time() / len(self.lock_history)

    def fault_count_by_actor(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.faults:
            counts[record.actor] = counts.get(record.actor, 0) + 1
        return counts
