"""Generator-coroutine processes on a single preemptible CPU.

The paper's central tension is *who holds the CPU*: an atomic
measurement process (MP) that masks interrupts keeps a safety-critical
task off the CPU for seconds (Section 2.5), while an interruptible MP
yields quickly but opens the door to roving malware (Section 3).

This module models exactly that.  A :class:`CPU` schedules
:class:`Process` objects by fixed priority with preemption.  A process
body is a generator that yields commands:

``Compute(duration)``
    Occupy the CPU for ``duration`` simulated seconds.  Preemptible by
    a strictly higher-priority process -- unless the process holds the
    CPU atomically.
``Sleep(duration)``
    Release the CPU and wake after ``duration``.
``WaitSignal(signal)``
    Release the CPU until ``signal`` fires; the fired value is sent
    back into the generator.
``Atomic(True/False)``
    Mask / unmask preemption (models SMART's "disable interrupts as the
    first step of MP").  Sleeping or waiting while atomic is an error:
    real attestation code that masked interrupts cannot block.
``Yield()``
    Cooperative reschedule point: lets an equal-priority ready process
    run (round-robin hand-off).

Code between yields runs as an instantaneous side effect at the current
simulation time -- the standard discrete-event coroutine convention.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, List, Optional

from repro.errors import ProcessError
from repro.sim.engine import EventHandle, Signal, Simulator


class Compute:
    """Occupy the CPU for ``duration`` seconds of work.

    ``coalesce=True`` marks the compute as a candidate for the engine's
    inline fast path: when the completion event would provably be the
    next event to fire anyway (see
    :meth:`repro.sim.engine.Simulator.can_coalesce`), the clock advances
    without a heap round-trip.  Purely a wall-clock optimisation --
    sim-time, trace records and preemption behavior are identical --
    used by the measurement hot loop on digest-cache hits.
    """

    __slots__ = ("duration", "coalesce")

    def __init__(self, duration: float, coalesce: bool = False) -> None:
        if duration < 0:
            raise ProcessError(f"negative compute duration {duration!r}")
        self.duration = duration
        self.coalesce = coalesce


class Sleep:
    """Release the CPU; become ready again after ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ProcessError(f"negative sleep duration {duration!r}")
        self.duration = duration


class WaitSignal:
    """Release the CPU until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal


class Atomic:
    """Enter (``True``) or leave (``False``) an uninterruptible section."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


class Yield:
    """Cooperatively offer the CPU to an equal-priority ready process."""

    __slots__ = ()


class ProcState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    WAITING = "waiting"
    DONE = "done"


class Process:
    """A schedulable coroutine with a fixed priority.

    Higher ``priority`` values run first.  Equal priorities do not
    preempt each other.  ``body`` is a generator function called with
    the process itself, e.g.::

        def body(proc):
            yield Compute(0.5)
            proc.log.append(proc.cpu.sim.now)

        cpu.spawn("app", body, priority=10)

    Accounting fields (``cpu_time``, ``max_response``, ...) feed the
    availability metrics in :mod:`repro.apps.metrics`.
    """

    def __init__(
        self,
        cpu: "CPU",
        name: str,
        body: Callable[["Process"], Generator],
        priority: int = 0,
    ) -> None:
        self.cpu = cpu
        self.name = name
        self.priority = priority
        self.state = ProcState.NEW
        self.atomic = False
        self.done_signal = Signal(cpu.sim, f"{name}.done")
        self.result: Any = None

        self._generator: Optional[Generator] = None
        self._body = body
        self._remaining: float = 0.0
        self._run_start: float = 0.0
        self._ready_since: float = 0.0
        self._completion: Optional[EventHandle] = None
        self._wake_event: Optional[EventHandle] = None
        self._start_event: Optional[EventHandle] = None
        self._ready_seq: int = 0
        self._pending_value: Any = None

        # accounting
        self.cpu_time: float = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.preemption_count: int = 0
        self.dispatch_count: int = 0
        self.response_total: float = 0.0
        self.response_max: float = 0.0
        self.response_samples: int = 0

    # -- introspection --------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (ProcState.NEW, ProcState.DONE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Process {self.name!r} prio={self.priority} "
            f"state={self.state.value}>"
        )

    # -- internal accounting hooks ---------------------------------------

    def _became_ready(self, now: float) -> None:
        self.state = ProcState.READY
        self._ready_since = now
        self._ready_seq = self.cpu._next_seq()

    def _record_dispatch(self, now: float) -> None:
        self.dispatch_count += 1
        latency = now - self._ready_since
        self.response_total += latency
        self.response_samples += 1
        if latency > self.response_max:
            self.response_max = latency

    @property
    def response_mean(self) -> float:
        if self.response_samples == 0:
            return 0.0
        return self.response_total / self.response_samples


class CPU:
    """A single core with fixed-priority preemptive scheduling.

    The CPU is deliberately simple: no time slicing, no priority
    inheritance -- matching the bare-metal / microkernel provers the
    paper targets (SMART on an MCU, HYDRA on seL4 with a
    highest-priority attestation process).
    """

    def __init__(self, sim: Simulator, trace: Optional[Any] = None) -> None:
        self.sim = sim
        self.trace = trace
        self.current: Optional[Process] = None
        self.processes: List[Process] = []
        self._seq = 0
        self._in_advance = False
        self._dispatch_pending = False

    # -- public API ------------------------------------------------------

    def spawn(
        self,
        name: str,
        body: Callable[[Process], Generator],
        priority: int = 0,
        delay: float = 0.0,
    ) -> Process:
        """Create a process and make it ready after ``delay`` seconds."""
        proc = Process(self, name, body, priority)
        self.processes.append(proc)
        proc._start_event = self.sim.schedule(delay, self._start, proc)
        return proc

    def kill(self, proc: Process) -> bool:
        """Terminate ``proc`` without running it further.

        Models a power loss, not an exit: pending wake/completion
        events are cancelled, the generator is closed, and -- unlike
        :meth:`_finish` -- ``done_signal`` is *not* fired, because
        nothing on a browned-out device gets to observe its own death.
        Returns ``False`` if the process had already finished.
        """
        if proc.state is ProcState.DONE:
            return False
        if proc._start_event is not None:
            proc._start_event.cancel()
            proc._start_event = None
        if proc._completion is not None:
            if self.current is proc:
                proc.cpu_time += self.sim.now - proc._run_start
            proc._completion.cancel()
            proc._completion = None
        if proc._wake_event is not None:
            proc._wake_event.cancel()
            proc._wake_event = None
        if proc._generator is not None:
            proc._generator.close()
        proc.state = ProcState.DONE
        proc.atomic = False
        proc.finished_at = self.sim.now
        self._release(proc)
        self._emit("killed", proc)
        return True

    def reset(self) -> int:
        """Kill every live process (device brownout).

        Finished processes stay in :attr:`processes` so CPU-time
        accounting spans the reset.  Returns the number killed.
        """
        killed = 0
        for proc in list(self.processes):
            if self.kill(proc):
                killed += 1
        return killed

    def idle_fraction(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which no process held the CPU."""
        if elapsed <= 0:
            return 0.0
        busy = sum(proc.cpu_time for proc in self.processes)
        return max(0.0, 1.0 - busy / elapsed)

    # -- internals -------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _emit(self, kind: str, proc: Process, **data: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, kind, proc.name, **data)

    def _start(self, proc: Process) -> None:
        if proc.state is not ProcState.NEW:
            raise ProcessError(f"process {proc.name!r} already started")
        proc._start_event = None
        proc._generator = proc._body(proc)
        proc.started_at = self.sim.now
        proc._became_ready(self.sim.now)
        self._emit("spawn", proc)
        self._dispatch()

    def _make_ready(self, proc: Process) -> None:
        proc._became_ready(self.sim.now)
        self._emit("ready", proc)
        self._dispatch()

    def _ready_processes(self) -> List[Process]:
        return [p for p in self.processes if p.state is ProcState.READY]

    def _pick_next(self) -> Optional[Process]:
        ready = self._ready_processes()
        if not ready:
            return None
        return min(ready, key=lambda p: (-p.priority, p._ready_seq))

    def _dispatch(self) -> None:
        """Ensure the highest-priority ready/running process holds the CPU."""
        if self._in_advance:
            self._dispatch_pending = True
            return
        candidate = self._pick_next()
        if self.current is not None:
            if candidate is None:
                return
            if self.current.atomic:
                return
            if candidate.priority <= self.current.priority:
                return
            self._preempt(self.current)
        if candidate is None:
            return
        self._run(candidate)

    def _preempt(self, proc: Process) -> None:
        """Take the CPU away from ``proc`` mid-Compute."""
        assert proc is self.current
        elapsed = self.sim.now - proc._run_start
        proc._remaining = max(0.0, proc._remaining - elapsed)
        proc.cpu_time += elapsed
        if proc._completion is not None:
            proc._completion.cancel()
            proc._completion = None
        proc.preemption_count += 1
        proc._became_ready(self.sim.now)
        self.current = None
        self._emit("preempt", proc, remaining=proc._remaining)

    def _run(self, proc: Process) -> None:
        """Give the CPU to ``proc`` (which must be READY)."""
        assert proc.state is ProcState.READY
        proc.state = ProcState.RUNNING
        proc._record_dispatch(self.sim.now)
        self.current = proc
        self._emit("run", proc)
        if proc._remaining > 0.0:
            proc._run_start = self.sim.now
            proc._completion = self.sim.schedule(
                proc._remaining, self._compute_done, proc
            )
        else:
            value, proc._pending_value = proc._pending_value, None
            self._advance(proc, value)

    def _compute_done(self, proc: Process) -> None:
        assert proc is self.current
        proc.cpu_time += proc._remaining
        proc._remaining = 0.0
        proc._completion = None
        self._advance(proc, None)

    def _release(self, proc: Process) -> None:
        """Remove ``proc`` from the CPU without making it ready."""
        if self.current is proc:
            self.current = None

    def _advance(self, proc: Process, send_value: Any) -> None:
        """Step the generator until it blocks (Compute/Sleep/Wait) or ends."""
        self._in_advance = True
        try:
            while True:
                try:
                    command = proc._generator.send(send_value)
                except StopIteration as stop:
                    self._finish(proc, getattr(stop, "value", None))
                    return
                send_value = None
                if isinstance(command, Compute):
                    duration = command.duration
                    if command.coalesce and self.sim.can_coalesce(duration):
                        # Inline fast path: the completion event would
                        # be the very next event the engine fires, so
                        # skip the heap round-trip.  The trace record is
                        # emitted at the pre-advance instant, exactly as
                        # the scheduling path does.
                        self._emit("compute", proc, duration=duration)
                        self.sim.coalesce_advance(duration)
                        proc.cpu_time += duration
                        continue
                    proc._remaining = duration
                    proc._run_start = self.sim.now
                    proc._completion = self.sim.schedule(
                        duration, self._compute_done, proc
                    )
                    self._emit("compute", proc, duration=duration)
                    return
                if isinstance(command, Sleep):
                    if proc.atomic:
                        raise ProcessError(
                            f"{proc.name}: Sleep inside atomic section"
                        )
                    self._release(proc)
                    proc.state = ProcState.SLEEPING
                    proc._wake_event = self.sim.schedule(
                        command.duration, self._wake, proc
                    )
                    self._emit("sleep", proc, duration=command.duration)
                    return
                if isinstance(command, WaitSignal):
                    if proc.atomic:
                        raise ProcessError(
                            f"{proc.name}: WaitSignal inside atomic section"
                        )
                    self._release(proc)
                    proc.state = ProcState.WAITING
                    command.signal.wait(
                        lambda value, p=proc: self._signal_wake(p, value)
                    )
                    self._emit("wait", proc, signal=command.signal.name)
                    return
                if isinstance(command, Atomic):
                    proc.atomic = command.enabled
                    self._emit("atomic", proc, enabled=command.enabled)
                    continue
                if isinstance(command, Yield):
                    self._release(proc)
                    proc._became_ready(self.sim.now)
                    self._emit("yield", proc)
                    return
                raise ProcessError(
                    f"{proc.name}: yielded unsupported command {command!r}"
                )
        finally:
            self._in_advance = False
            self._dispatch_pending = False
            self._dispatch()

    def _wake(self, proc: Process) -> None:
        proc._wake_event = None
        if proc.state is not ProcState.SLEEPING:
            return
        self._make_ready(proc)

    def _signal_wake(self, proc: Process, value: Any) -> None:
        if proc.state is not ProcState.WAITING:
            return
        proc._became_ready(self.sim.now)
        proc._pending_value = value
        self._emit("signalled", proc)
        self._dispatch()

    def _finish(self, proc: Process, result: Any) -> None:
        proc.state = ProcState.DONE
        proc.atomic = False
        proc.result = result
        proc.finished_at = self.sim.now
        self._release(proc)
        self._emit("done", proc)
        proc.done_signal.fire(result)
