"""The prover device: CPU + memory + MPU + secure peripherals + NIC.

:class:`Device` is the composition root for the simulated prover
(:math:`\\mathcal{P}rv`).  It wires together the substrate pieces and
holds the two hardware security anchors the hybrid-RA literature
assumes:

* the **attestation key**, stored where untrusted software (malware)
  cannot read it -- SMART keeps it in ROM behind hard-wired access
  control; we model that by simply never exposing it to malware agents;
* a **secure timer** (SeED's "dedicated timeout circuit that has
  exclusive access to the clock"): trigger times are invisible to
  software, modelled by scheduling engine events that no malware hook
  can observe or cancel.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import EventHandle, Simulator
from repro.sim.interrupts import InterruptController
from repro.sim.memory import Memory, Region
from repro.sim.mpu import FaultPolicy, MemoryProtectionUnit
from repro.sim.network import Channel, Endpoint
from repro.sim.process import CPU
from repro.sim.trace import Trace
from repro.crypto.timing import OdroidXU4Model, TimingModel


class SecureTimer:
    """A trigger source outside software's reach.

    Used by SeED to start attestation at pseudorandom times that
    malware cannot predict or observe, and by ERASMUS for its
    self-measurement schedule.  Events fire on the simulation engine
    directly, bypassing the CPU scheduler until the callback spawns a
    process -- like a hardware timer raising a non-maskable trigger.
    """

    def __init__(self, sim: Simulator, name: str = "securetimer") -> None:
        self.sim = sim
        self.name = name
        self.fired = 0
        #: fractional clock-drift rate injected by a fault plan: a
        #: timer asked to wait ``d`` actually waits ``d * (1 + drift)``.
        #: 0.0 (the default) is the exact-clock fast path -- delays are
        #: passed through untouched, so drift-free runs schedule
        #: byte-identical events.
        self.drift = 0.0
        self._pending: List[EventHandle] = []

    def _skewed(self, delay: float) -> float:
        if self.drift == 0.0:
            return delay
        return max(0.0, delay * (1.0 + self.drift))

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Fire ``callback`` at absolute time ``time`` (plus any injected
        clock drift on the remaining wait)."""
        if self.drift != 0.0:
            remaining = max(0.0, time - self.sim.now)
            time = self.sim.now + self._skewed(remaining)
        handle = self.sim.schedule_at(time, self._fire, callback)
        self._pending.append(handle)
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Fire ``callback`` ``delay`` seconds from now (skewed by any
        injected clock drift)."""
        handle = self.sim.schedule(self._skewed(delay), self._fire, callback)
        self._pending.append(handle)
        return handle

    def _fire(self, callback: Callable[[], None]) -> None:
        self.fired += 1
        callback()

    def cancel_all(self) -> None:
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()


class Device:
    """A simulated low-end prover.

    Parameters
    ----------
    sim:
        The simulation engine the device lives on.
    block_count, block_size:
        Geometry of attested memory (real bytes per block).
    sim_block_size:
        Simulated bytes per block for the timing model (defaults to
        ``block_size``); lets a small real memory stand in for, e.g.,
        a 1 GiB prover.
    timing:
        Per-algorithm cost model; defaults to the calibrated
        ODROID-XU4 model from Figure 2.
    attestation_key:
        Secret MAC key; generated from ``seed`` if not given.
    digest_cache:
        Optional :class:`repro.perf.digest_cache.DigestCache`.  When
        set, the measurement process skips re-hashing blocks whose
        generation is unchanged -- a wall-clock-only optimisation;
        ``None`` (the default) is the seed-identical path.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "prv",
        block_count: int = 64,
        block_size: int = 64,
        sim_block_size: Optional[int] = None,
        timing: Optional[TimingModel] = None,
        attestation_key: Optional[bytes] = None,
        fault_policy: FaultPolicy = FaultPolicy.RAISE,
        seed: int = 7,
        trace: Optional[Trace] = None,
        digest_cache: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.seed = seed
        self.trace = trace if trace is not None else Trace()
        self.cpu = CPU(sim, trace=self.trace)
        self.memory = Memory(
            block_count, block_size, sim_block_size=sim_block_size, seed=seed
        )
        self.mpu = MemoryProtectionUnit(sim, block_count, policy=fault_policy)
        self.memory.mpu = self.mpu
        self.memory._clock = lambda: sim.now
        self.irq = InterruptController(self.cpu)
        self.secure_timer = SecureTimer(sim, f"{name}.timer")
        self.timing = timing if timing is not None else OdroidXU4Model()
        if attestation_key is None:
            rng = random.Random(seed ^ 0xA77E57)
            attestation_key = bytes(rng.getrandbits(8) for _ in range(32))
        self.attestation_key = attestation_key
        self.digest_cache = digest_cache
        self._key_fingerprint: Optional[bytes] = None
        self.nic: Optional[Endpoint] = None
        self.malware_agents: List[Any] = []
        self.reset_count = 0
        self._reset_hooks: List[Callable[[], None]] = []

    # -- wiring ---------------------------------------------------------

    def attach_network(self, channel: Channel) -> Endpoint:
        """Create this device's NIC endpoint on ``channel``."""
        self.nic = channel.make_endpoint(self.name)
        return self.nic

    def add_region(self, name: str, start: int, length: int,
                   mutable: bool = False, description: str = "") -> Region:
        """Declare a named memory region (code / data / stack...)."""
        return self.memory.add_region(
            Region(name, start, length, mutable, description)
        )

    def standard_layout(self, code_fraction: float = 0.5) -> None:
        """Install the paper's ``M = [C, D]`` layout (Section 2.3):
        an immutable code region followed by a mutable data region."""
        if not 0.0 < code_fraction < 1.0:
            raise ConfigurationError("code_fraction must be in (0, 1)")
        code_blocks = max(1, int(self.memory.block_count * code_fraction))
        data_blocks = self.memory.block_count - code_blocks
        if data_blocks < 1:
            raise ConfigurationError("layout leaves no data blocks")
        self.add_region("code", 0, code_blocks, mutable=False,
                        description="immutable firmware C")
        self.add_region("data", code_blocks, data_blocks, mutable=True,
                        description="volatile data D")

    # -- resets -----------------------------------------------------------

    def add_reset_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run (in registration order) at the end of
        every :meth:`reset` -- services use this to restore themselves
        the way boot firmware would, and to drop volatile protocol
        state (e.g. the attestation service's nonce cache)."""
        self._reset_hooks.append(hook)

    def reset(self) -> None:
        """Brownout/restart the prover (the VRASED-style reset event).

        What survives and what does not:

        * **RAM image survives** -- memory contents (including any
          malware payload) are untouched; this is a processor reset,
          not a power-off long enough to decay DRAM.
        * **Execution state is lost** -- every CPU process is killed
          mid-flight (no ``done_signal`` fires) and pending NIC input
          is discarded, including the waiters parked on ``rx_signal``.
        * **MPU lock bits are cleared** -- the documented post-reset
          state (see :meth:`~repro.sim.mpu.MemoryProtectionUnit.reset`).
        * **The secure timer keeps running** -- it is dedicated
          hardware with its own power budget (SeED's timeout circuit),
          so scheduled triggers still fire.
        * **Malware agents stay registered** -- they live in the RAM
          image, and re-hook themselves exactly as real persistence
          mechanisms would.

        Registered reset hooks then run in order, reinstalling
        services from "ROM".
        """
        self.cpu.reset()
        self.mpu.reset()
        # Brownout hygiene for the digest-cache layer: bump every block
        # generation so nothing pre-computed about the surviving RAM
        # image is trusted, and drop the now-unreachable entries.
        self.memory.bump_all_generations()
        if self.digest_cache is not None:
            self.digest_cache.invalidate()
        if self.nic is not None:
            self.nic.inbox.clear()
            self.nic.rx_signal.clear()
        self.reset_count += 1
        self.trace.record(self.sim.now, "device.reset", self.name,
                          count=self.reset_count)
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "device.resets", "prover resets/brownouts injected",
            ).inc()
        for hook in list(self._reset_hooks):
            hook()

    # -- malware hooks -----------------------------------------------------

    def register_malware(self, agent: Any) -> None:
        """Attach a malware agent (gets measurement-progress callbacks)."""
        self.malware_agents.append(agent)

    def notify_measurement_started(self, mechanism: str, interruptible: bool,
                                   region: str = "") -> None:
        for agent in self.malware_agents:
            agent.on_measurement_start(mechanism, interruptible, region)

    def notify_block_measured(self, progress: int, total: int,
                              interruptible: bool, region: str = "") -> None:
        """SMARM's adversary model: malware learns *how many* blocks are
        measured, never *which* (Section 3.2)."""
        for agent in self.malware_agents:
            agent.on_progress(progress, total, interruptible, region)

    def notify_measurement_finished(self) -> None:
        for agent in self.malware_agents:
            agent.on_measurement_end()

    # -- convenience ---------------------------------------------------------

    @property
    def obs(self) -> Any:
        """The simulator's observability bundle (``NULL_OBS`` when off)."""
        return self.sim.obs

    @property
    def key_fingerprint(self) -> bytes:
        """Truncated SHA-256 of the attestation key.

        Scopes :class:`~repro.perf.digest_cache.DigestCache` entries to
        this device's keyed measurement context without ever exposing
        the key itself.  Computed lazily and cached.
        """
        if self._key_fingerprint is None:
            self._key_fingerprint = hashlib.sha256(
                self.attestation_key
            ).digest()[:8]
        return self._key_fingerprint

    @property
    def block_count(self) -> int:
        return self.memory.block_count

    def hash_time(self, algorithm: str, num_sim_bytes: int) -> float:
        """Simulated seconds to hash ``num_sim_bytes`` on this device."""
        return self.timing.hash_time(algorithm, num_sim_bytes)

    def block_measure_time(self, algorithm: str) -> float:
        """Simulated seconds to measure one block."""
        return self.timing.hash_time(algorithm, self.memory.sim_block_size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Device {self.name!r} {self.memory.block_count}x"
            f"{self.memory.block_size}B>"
        )
