"""Interrupt controller: IRQ lines, handlers and masking.

SMART's atomicity is implemented on real MCUs by *disabling interrupts*
as the first instruction of the attestation code (Section 3.1).  In the
simulator that masking already exists as the CPU's atomic flag; this
module adds the asynchronous entry point: an IRQ line that, when
raised, spawns its handler as a high-priority process.  While the CPU
is held atomically the handler simply stays READY -- exactly the
pending-interrupt latency the fire-alarm scenario worries about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator

from repro.errors import ConfigurationError
from repro.sim.process import CPU, Process


@dataclass
class IrqStats:
    """Latency accounting for one IRQ line."""

    raised: int = 0
    handled: int = 0
    worst_latency: float = 0.0
    total_latency: float = 0.0

    @property
    def mean_latency(self) -> float:
        if self.handled == 0:
            return 0.0
        return self.total_latency / self.handled


class IrqLine:
    """One interrupt source with a registered handler."""

    def __init__(
        self,
        name: str,
        handler: Callable[[Process, object], Generator],
        priority: int,
    ) -> None:
        self.name = name
        self.handler = handler
        self.priority = priority
        self.stats = IrqStats()


class InterruptController:
    """Dispatches IRQs as one-shot handler processes on the CPU.

    Handlers run at their line's priority; the fixed-priority scheduler
    (and any atomic section in force) decides when they actually get
    the CPU.  The controller records raise-to-handle latency per line.
    """

    def __init__(self, cpu: CPU) -> None:
        self.cpu = cpu
        self.lines: Dict[str, IrqLine] = {}

    def register(
        self,
        name: str,
        handler: Callable[[Process, object], Generator],
        priority: int = 100,
    ) -> IrqLine:
        """Attach ``handler(proc, payload)`` to a new line ``name``."""
        if name in self.lines:
            raise ConfigurationError(f"IRQ line {name!r} already registered")
        line = IrqLine(name, handler, priority)
        self.lines[name] = line
        return line

    def raise_irq(self, name: str, payload: object = None) -> Process:
        """Fire line ``name``: spawn its handler, record latency on entry."""
        line = self.lines.get(name)
        if line is None:
            raise ConfigurationError(f"unknown IRQ line {name!r}")
        line.stats.raised += 1
        raised_at = self.cpu.sim.now

        def body(proc: Process, _line=line, _raised=raised_at, _payload=payload):
            latency = self.cpu.sim.now - _raised
            _line.stats.handled += 1
            _line.stats.total_latency += latency
            if latency > _line.stats.worst_latency:
                _line.stats.worst_latency = latency
            yield from _line.handler(proc, _payload)

        return self.cpu.spawn(
            f"irq.{name}.{line.stats.raised}", body, priority=line.priority
        )
