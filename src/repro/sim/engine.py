"""Event queue and simulation clock.

The engine is a classic discrete-event simulator: a priority queue of
``(time, sequence, callback)`` entries and a clock that jumps from event
to event.  Everything in the reproduction -- CPU scheduling, network
delivery, self-measurement timers -- is built on :class:`Simulator`.

Determinism
-----------
Two runs with the same inputs produce identical traces: ties in event
time are broken by a monotonically increasing sequence number, and the
engine itself uses no global randomness.  Components that need
randomness take an explicit :class:`random.Random` (or the package's
HMAC-DRBG) so experiments are reproducible from a seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError
from repro.obs.core import NULL_OBS


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`Simulator.schedule`.  Cancelling is O(1): the
    entry stays in the heap but is skipped when popped.

    The heap itself stores ``(time, seq, handle)`` tuples so sift
    comparisons run as C-level tuple compares (``seq`` is unique, so
    the handle is never compared); ``__lt__`` is kept for callers that
    order handles directly.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulation core.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, print, "one second elapsed")
        sim.run()

    The clock starts at 0.0 and only moves forward.  ``run`` drains the
    queue or stops at ``until``; ``step`` executes exactly one event.

    ``obs`` attaches an :class:`repro.obs.core.Observability` bundle;
    the default is the shared null bundle, and the hot loop skips
    instrumentation entirely in that case (cached-handle ``None``
    checks only).
    """

    def __init__(self, obs: Optional[Any] = None) -> None:
        self.now: float = 0.0
        #: heap of (time, seq, EventHandle) -- see EventHandle docstring
        self._queue: List[tuple] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._until: Optional[float] = None  # active run() bound
        self.obs = obs if obs is not None else NULL_OBS
        self.obs.bind_clock(lambda: self.now)
        # Cache instrument handles once so the scheduling/firing hot
        # paths pay a single `is None` test when observability is off.
        metrics = self.obs.metrics
        if metrics.enabled:
            self._m_scheduled = metrics.counter(
                "sim.events.scheduled", "events pushed onto the queue"
            )
            self._m_fired = metrics.counter(
                "sim.events.fired", "events popped and executed"
            )
            self._m_cancelled = metrics.counter(
                "sim.events.cancelled", "events cancelled before firing"
            )
        else:
            self._m_scheduled = None
            self._m_fired = None
            self._m_cancelled = None
        profiler = self.obs.profiler
        self._profiler = profiler if profiler.enabled else None
        # Uninstrumented engines (the default) dispatch through a
        # specialized inner loop in run() with no per-event counter or
        # profiler checks; both flags are fixed at construction.
        self._plain = self._m_fired is None and self._profiler is None

    # -- scheduling ---------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, handle))
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time!r}, before current time {self.now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, handle))
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
        return handle

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Return ``False`` if none remain."""
        while self._queue:
            handle = heapq.heappop(self._queue)[2]
            if handle.cancelled:
                if self._m_cancelled is not None:
                    self._m_cancelled.inc()
                continue
            if self._profiler is not None:
                self._fire_profiled(handle)
            else:
                self.now = handle.time
                handle.callback(*handle.args)
            if self._m_fired is not None:
                self._m_fired.inc()
            return True
        return False

    def _fire_profiled(self, handle: EventHandle) -> None:
        """Fire one event under the profiler (cold path)."""
        profiler = self._profiler
        advanced = handle.time - self.now
        self.now = handle.time
        wall = profiler.wall_clock
        if wall is not None:
            began = wall()
            handle.callback(*handle.args)
            profiler.record(handle.callback, advanced, wall() - began)
        else:
            handle.callback(*handle.args)
            profiler.record(handle.callback, advanced)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the simulation time at which the run stopped.  When
        ``until`` is given and events remain beyond it, the clock is
        advanced exactly to ``until`` (so back-to-back ``run`` calls
        compose).
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        self._until = until
        queue = self._queue
        pop = heapq.heappop
        try:
            # Specialized dispatch loops for the uninstrumented engine
            # (no metrics, no profiler -- the default): pop, advance,
            # fire, with zero per-event branching on observability.
            # Identical event order and stop()/until semantics to the
            # instrumented loop below.
            if self._plain:
                if until is None:
                    while queue:
                        time, _seq, head = pop(queue)
                        if head.cancelled:
                            continue
                        self.now = time
                        head.callback(*head.args)
                        if self._stopped:
                            break
                    return self.now
                while queue:
                    entry = queue[0]
                    if entry[0] > until:
                        self.now = until
                        return self.now
                    pop(queue)
                    head = entry[2]
                    if head.cancelled:
                        continue
                    self.now = entry[0]
                    head.callback(*head.args)
                    if self._stopped:
                        break
                if self.now < until:
                    self.now = until
                return self.now
            while queue and not self._stopped:
                head = queue[0][2]
                if head.cancelled:
                    pop(queue)
                    if self._m_cancelled is not None:
                        self._m_cancelled.inc()
                    continue
                if until is not None and head.time > until:
                    self.now = until
                    return self.now
                pop(queue)
                if self._profiler is not None:
                    self._fire_profiled(head)
                else:
                    self.now = head.time
                    head.callback(*head.args)
                if self._m_fired is not None:
                    self._m_fired.inc()
                # Batch: drain co-scheduled events at this same instant
                # without re-checking the until bound (head.time <= until
                # already held, and the clock cannot move backwards).
                # Pop order is still (time, seq), so FIFO tie-breaking --
                # and therefore trace parity -- is preserved.
                when = head.time
                while (
                    queue
                    and not self._stopped
                    and queue[0][0] == when
                    and self.now == when
                ):
                    nxt = pop(queue)[2]
                    if nxt.cancelled:
                        if self._m_cancelled is not None:
                            self._m_cancelled.inc()
                        continue
                    if self._profiler is not None:
                        self._fire_profiled(nxt)
                    else:
                        nxt.callback(*nxt.args)
                    if self._m_fired is not None:
                        self._m_fired.inc()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            self._until = None
        return self.now

    def stop(self) -> None:
        """Stop a ``run`` in progress after the current event returns."""
        self._stopped = True

    # -- coalesced time advance ---------------------------------------

    def can_coalesce(self, duration: float) -> bool:
        """Whether a completion event ``duration`` from now may be
        *coalesced*: executed inline instead of round-tripping through
        the heap.

        Coalescing is behavior-preserving only when the would-be event
        is provably the next thing the engine would fire, so this
        requires all of:

        * a ``run()`` is active (``step()`` drives events one at a
          time and must observe every one) and has not been stopped;
        * the profiler is off (it attributes wall time per fired
          event, so every event must actually fire);
        * the target time does not overshoot the active ``until``
          bound;
        * the earliest live queued event is *strictly* later than the
          target -- an event at exactly the target time was scheduled
          earlier, holds a smaller sequence number, and must run first.
        """
        if not self._running or self._stopped or self._profiler is not None:
            return False
        target = self.now + duration
        if self._until is not None and target > self._until:
            return False
        head = self._live_head()
        return head is None or head.time > target

    def coalesce_advance(self, duration: float) -> None:
        """Advance the clock by ``duration`` inline.

        Only legal immediately after :meth:`can_coalesce` returned
        ``True`` (same stack frame, nothing scheduled in between).  The
        skipped schedule/fire pair is accounted logically -- sequence
        number, scheduled/fired counters -- so telemetry and any later
        tie-breaking are identical to the event-queue path.
        """
        self.now += duration
        self._seq += 1
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
            self._m_fired.inc()

    # -- introspection ------------------------------------------------

    def _live_head(self) -> Optional[EventHandle]:
        """The earliest live event, lazily discarding cancelled heads."""
        queue = self._queue
        while queue:
            head = queue[0][2]
            if not head.cancelled:
                return head
            heapq.heappop(queue)
            if self._m_cancelled is not None:
                self._m_cancelled.inc()
        return None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(
            1 for _, _, handle in self._queue if not handle.cancelled
        )

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        head = self._live_head()
        return None if head is None else head.time


class Signal:
    """A broadcast condition: processes wait, someone fires.

    ``fire(value)`` wakes every current waiter at the *current* time
    (callbacks are scheduled with zero delay so firing from inside an
    event keeps the event loop's ordering guarantees).  Waiters that
    subscribe after a fire do not see it -- a Signal is an edge, not a
    level.  :attr:`fire_count` supports level-style checks by callers.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.fire_count = 0
        self.last_value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run at the next fire."""
        self._waiters.append(callback)

    def unwait(self, callback: Callable[[Any], None]) -> None:
        """Remove a previously registered waiter (no-op if absent)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def clear(self) -> int:
        """Forget every current waiter without waking it.

        Used by :meth:`repro.sim.device.Device.reset`: a brownout wipes
        whatever software was blocked on the signal, so the waiters must
        vanish rather than fire.  Returns the number removed.
        """
        count = len(self._waiters)
        self._waiters = []
        return count

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``.  Returns waiter count."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, value)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Signal {self.name!r} waiters={len(self._waiters)} "
            f"fires={self.fire_count}>"
        )
