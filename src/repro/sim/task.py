"""Periodic real-time tasks with deadline accounting.

The safety-critical side of the paper's conflict (Section 2.5) is a
periodic sensor/actuator loop: release every period, do a little work,
meet a deadline.  :class:`PeriodicTask` wraps a job generator in the
release/deadline bookkeeping and exposes the statistics (response
times, deadline misses, blocked writes) that the Table 1 "availability"
and "interruptibility" columns summarize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.errors import ConfigurationError, MemoryFault
from repro.sim.memory import Memory
from repro.sim.process import CPU, Compute, Process, Sleep, WaitSignal


@dataclass
class JobRecord:
    """Timing of one job instance of a periodic task."""

    index: int
    release: float
    start: Optional[float] = None
    finish: Optional[float] = None
    deadline: float = 0.0
    write_faults: int = 0

    @property
    def response_time(self) -> Optional[float]:
        if self.finish is None:
            return None
        return self.finish - self.release

    @property
    def missed_deadline(self) -> bool:
        if self.finish is None:
            return True  # never finished within the simulation
        return self.finish > self.deadline


@dataclass
class TaskStats:
    """Aggregate availability metrics for one task."""

    jobs_released: int = 0
    jobs_finished: int = 0
    deadline_misses: int = 0
    worst_response: float = 0.0
    total_response: float = 0.0
    write_faults: int = 0

    @property
    def mean_response(self) -> float:
        if self.jobs_finished == 0:
            return 0.0
        return self.total_response / self.jobs_finished

    @property
    def miss_rate(self) -> float:
        if self.jobs_released == 0:
            return 0.0
        return self.deadline_misses / self.jobs_released


class PeriodicTask:
    """A periodic task on the device CPU.

    ``job`` is a generator function ``job(proc, task, job_index)``
    yielding scheduler commands (usually a single ``Compute(wcet)``
    plus some memory writes).  If ``job`` is ``None``, a default job of
    ``Compute(wcet)`` is used.

    The task releases at ``offset``, ``offset + period``, ... and its
    relative deadline defaults to the period (implicit deadlines).
    Releases are strictly periodic: a job that overruns delays the next
    job's *start*, not its release or deadline (standard real-time
    semantics), so overload shows up as deadline misses.
    """

    def __init__(
        self,
        cpu: CPU,
        name: str,
        period: float,
        wcet: float,
        priority: int = 10,
        deadline: Optional[float] = None,
        offset: float = 0.0,
        job: Optional[Callable[[Process, "PeriodicTask", int], Generator]] = None,
        max_jobs: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ConfigurationError("period must be positive")
        if wcet < 0 or wcet > period:
            raise ConfigurationError("wcet must be within (0, period]")
        self.cpu = cpu
        self.name = name
        self.period = period
        self.wcet = wcet
        self.priority = priority
        self.deadline = period if deadline is None else deadline
        self.offset = offset
        self.max_jobs = max_jobs
        self.jobs: List[JobRecord] = []
        self._job_body = job if job is not None else self._default_job
        self.process = cpu.spawn(name, self._run, priority=priority, delay=0.0)

    # -- job bodies -------------------------------------------------------

    @staticmethod
    def _default_job(proc: Process, task: "PeriodicTask", index: int):
        yield Compute(task.wcet)

    def _run(self, proc: Process):
        sim = self.cpu.sim
        if self.offset > 0:
            yield Sleep(self.offset)
        index = 0
        while self.max_jobs is None or index < self.max_jobs:
            release = self.offset + index * self.period
            if sim.now < release:
                yield Sleep(release - sim.now)
            record = JobRecord(
                index=index, release=release, deadline=release + self.deadline
            )
            self.jobs.append(record)
            record.start = sim.now
            yield from self._job_body(proc, self, index)
            record.finish = sim.now
            index += 1

    # -- statistics ---------------------------------------------------------

    def stats(self, as_of: Optional[float] = None) -> TaskStats:
        """Aggregate job statistics as of time ``as_of`` (defaults to
        the current simulation time).

        A job still in flight whose deadline has not yet passed is
        released-but-pending, not a miss -- otherwise every run would
        end with one artificial miss per task.
        """
        now = self.cpu.sim.now if as_of is None else as_of
        stats = TaskStats()
        for record in self.jobs:
            stats.jobs_released += 1
            stats.write_faults += record.write_faults
            if record.finish is None:
                if now > record.deadline:
                    stats.deadline_misses += 1
                continue
            stats.jobs_finished += 1
            response = record.response_time or 0.0
            stats.total_response += response
            if response > stats.worst_response:
                stats.worst_response = response
            if record.missed_deadline:
                stats.deadline_misses += 1
        return stats


def write_with_retry(
    proc: Process,
    memory: Memory,
    block_index: int,
    data: bytes,
    actor: str,
    record: Optional[JobRecord] = None,
) -> Generator:
    """Write a block, waiting on MPU release when the block is locked.

    This is the canonical writer used by workload jobs: it attempts the
    write; on a :class:`MemoryFault` it blocks on the MPU's release
    signal and retries.  Each fault is counted on ``record`` so locking
    mechanisms' availability damage is measurable.
    """
    if memory.mpu is None:
        memory.write(block_index, data, actor)
        return
    while True:
        try:
            memory.write(block_index, data, actor)
            return
        except MemoryFault:
            if record is not None:
                record.write_faults += 1
            yield WaitSignal(memory.mpu.release_signal)
