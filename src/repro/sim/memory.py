"""Block-structured attested memory.

The paper reasons about prover memory ``M`` of bit-size ``L`` measured
block by block (Sections 2.3, 3.1, 3.2).  We model ``M`` as an array of
fixed-size blocks of real bytes:

* measurement reads blocks and hashes their **actual contents** (the
  crypto is functional, not mocked -- a flipped byte changes the HMAC);
* the MPU locks at block granularity;
* malware occupies blocks.

Scale decoupling
----------------
Simulated timing and stored bytes are decoupled.  A block stores
``block_size`` real bytes but *accounts* for ``sim_block_size`` bytes
in the timing model, so a device can represent a 1 GiB prover (the
Section 2.5 fire-alarm scenario) while keeping only a few MiB of real
Python bytearrays.  Digests depend only on the real bytes; latency
depends only on the simulated size.  Both default to the same value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AddressError, ConfigurationError, MemoryFault
from repro.perf import reference_store as _reference_store


@dataclass(frozen=True)
class Region:
    """A named, contiguous range of blocks with a mutability attribute.

    Mirrors the paper's ``M = [C, D]`` decomposition: ``C`` immutable
    code known to the verifier, ``D`` volatile data (Section 2.3).
    """

    name: str
    start: int
    length: int
    mutable: bool = False
    description: str = ""

    @property
    def end(self) -> int:
        """One past the last block index."""
        return self.start + self.length

    def blocks(self) -> range:
        return range(self.start, self.end)

    def __contains__(self, block_index: int) -> bool:
        return self.start <= block_index < self.end


#: length of the truncated content fingerprint used for auditing
FINGERPRINT_LEN = 8


def content_fingerprint(content: bytes) -> bytes:
    """Truncated SHA-256 identifying block contents in audit records."""
    return hashlib.sha256(content).digest()[:FINGERPRINT_LEN]


@dataclass(frozen=True)
class WriteRecord:
    """One committed write, for consistency auditing (Figure 4).

    ``fingerprint`` identifies the block's contents *after* the write,
    which lets the consistency analyzer reconstruct any block's content
    identity at any past instant from the log alone.
    """

    time: float
    block: int
    actor: str
    fingerprint: bytes = b""


class MemoryImage:
    """An immutable snapshot of all block contents.

    The verifier's reference state is a ``MemoryImage``; measurement
    verification compares digests of images.
    """

    __slots__ = ("_blocks",)

    def __init__(self, blocks: Iterable[bytes]) -> None:
        self._blocks: Tuple[bytes, ...] = tuple(bytes(b) for b in blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, index: int) -> bytes:
        return self._blocks[index]

    def __iter__(self):
        return iter(self._blocks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash(self._blocks)

    def replace(self, block_index: int, data: bytes) -> "MemoryImage":
        """Return a new image with one block substituted."""
        if not 0 <= block_index < len(self._blocks):
            raise AddressError(f"block {block_index} out of range")
        blocks = list(self._blocks)
        blocks[block_index] = bytes(data)
        return MemoryImage(blocks)

    def fingerprint(self) -> str:
        """Content-addressed identity (SHA-256 over all blocks), for tests."""
        h = hashlib.sha256()
        for block in self._blocks:
            h.update(block)
        return h.hexdigest()


class MemoryBlock:
    """One block of prover memory."""

    __slots__ = ("index", "data", "sim_size")

    def __init__(self, index: int, data: bytearray, sim_size: int) -> None:
        self.index = index
        self.data = data
        self.sim_size = sim_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemoryBlock {self.index} {len(self.data)}B>"


def benign_fill(block_index: int, block_size: int, seed: int) -> bytes:
    """Deterministic pseudo-random benign contents for one block.

    Both prover initialization and the verifier's reference database use
    this, modelling the verifier knowing the expected firmware image.

    Memoized through the process-wide
    :data:`repro.perf.reference_store.REFERENCE_STORE`: the per-byte
    PRNG loop runs once per ``(seed, block_size, block_index)`` per
    process, and every caller afterwards gets the same interned
    ``bytes`` object (output is byte-identical to the raw generator,
    :func:`repro.perf.reference_store.raw_benign_fill`).
    """
    return _reference_store.REFERENCE_STORE.block(
        block_index, block_size, seed
    )


class Memory:
    """The prover's attested memory: an array of equally sized blocks.

    Writes are checked against an optional MPU (wired in by
    :class:`repro.sim.device.Device`) and logged with their simulation
    time so consistency of a measurement window can be audited after
    the fact.
    """

    def __init__(
        self,
        block_count: int,
        block_size: int = 64,
        sim_block_size: Optional[int] = None,
        seed: int = 7,
    ) -> None:
        if block_count <= 0:
            raise ConfigurationError("block_count must be positive")
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self.block_count = block_count
        self.block_size = block_size
        self.sim_block_size = (
            block_size if sim_block_size is None else sim_block_size
        )
        if self.sim_block_size < block_size:
            raise ConfigurationError(
                "sim_block_size must be >= real block_size"
            )
        self.seed = seed
        # The benign firmware image is interned process-wide: construction
        # copies the shared bytes into per-device mutable bytearrays, and
        # keeps the image view so benign_block/benign_image/dirty_blocks
        # and audit-hash lookups never regenerate a byte.
        self._reference = _reference_store.REFERENCE_STORE.image(
            seed, block_size
        )
        benign = self._reference.blocks(block_count)
        self.blocks: List[MemoryBlock] = [
            MemoryBlock(i, bytearray(benign[i]), self.sim_block_size)
            for i in range(block_count)
        ]
        #: per-block frozen content snapshot: ``read_block`` returns the
        #: cached immutable bytes instead of copying the backing
        #: bytearray on every access; any applied mutation (write /
        #: patch / load_image) drops the affected snapshot.  Pristine
        #: blocks start out aliasing the interned benign bytes, so a
        #: cold read is zero-copy *and* identity-comparable against the
        #: reference image.
        self._frozen: List[Optional[bytes]] = list(benign)
        self._benign_image: Optional[MemoryImage] = None
        self.regions: Dict[str, Region] = {}
        self.mpu = None  # wired by Device; duck-typed check_write(block)
        self.write_log: List[WriteRecord] = []
        self._clock = None  # wired by Device: callable returning sim time
        #: monotonic per-block content generation: bumped on every
        #: *applied* mutation (MPU-blocked writes leave it untouched).
        #: ``(block, generation)`` therefore identifies block contents,
        #: which is what :class:`repro.perf.digest_cache.DigestCache`
        #: keys on to skip re-hashing unchanged blocks.
        self.generations: List[int] = [0] * block_count

    # -- geometry --------------------------------------------------------

    @property
    def total_size(self) -> int:
        """Real bytes stored."""
        return self.block_count * self.block_size

    @property
    def total_sim_size(self) -> int:
        """Simulated bytes, as seen by the timing model."""
        return self.block_count * self.sim_block_size

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < self.block_count:
            raise AddressError(
                f"block {block_index} out of range [0, {self.block_count})"
            )

    # -- regions -----------------------------------------------------------

    def add_region(self, region: Region) -> Region:
        """Register a named region; regions may not overlap."""
        if region.start < 0 or region.end > self.block_count:
            raise AddressError(
                f"region {region.name!r} [{region.start}, {region.end}) "
                f"outside memory of {self.block_count} blocks"
            )
        for existing in self.regions.values():
            if region.start < existing.end and existing.start < region.end:
                raise ConfigurationError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self.regions[region.name] = region
        return region

    def region_of(self, block_index: int) -> Optional[Region]:
        """The region containing ``block_index``, if any."""
        for region in self.regions.values():
            if block_index in region:
                return region
        return None

    # -- access ------------------------------------------------------------

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def read_block(self, block_index: int) -> bytes:
        """Read a block's current contents (reads are never blocked).

        Zero-copy on repeat reads: the returned ``bytes`` snapshot is
        cached until the next applied mutation of the block, so hot
        measurement traversals stop paying a bytearray copy per access.
        """
        self._check_index(block_index)
        frozen = self._frozen[block_index]
        if frozen is None:
            frozen = self._frozen[block_index] = bytes(
                self.blocks[block_index].data
            )
        return frozen

    def generation(self, block_index: int) -> int:
        """The block's current content generation (see ``generations``)."""
        self._check_index(block_index)
        return self.generations[block_index]

    def bump_all_generations(self) -> None:
        """Conservatively invalidate every cached content identity.

        :meth:`repro.sim.device.Device.reset` calls this on a brownout:
        the RAM image technically survives, but after a reset nothing
        pre-computed about its contents should be trusted -- every
        digest-cache entry keyed on the old generations becomes
        unreachable and is re-derived from the actual bytes.  Mutates
        in place so long-lived aliases of the list stay valid.
        """
        for index in range(self.block_count):
            self.generations[index] += 1

    def write(self, block_index: int, data: bytes, actor: str = "?") -> None:
        """Overwrite a whole block.

        Raises :class:`MemoryFault` if the MPU has the block locked and
        is configured to raise; the write is then *not* applied.
        """
        self._check_index(block_index)
        if len(data) != self.block_size:
            raise AddressError(
                f"write of {len(data)} bytes to block of {self.block_size}"
            )
        if self.mpu is not None and not self.mpu.check_write(block_index, actor):
            return
        self.blocks[block_index].data[:] = data
        self._frozen[block_index] = bytes(data)
        self.generations[block_index] += 1
        self.write_log.append(
            WriteRecord(
                self.now(), block_index, actor, content_fingerprint(data)
            )
        )

    def try_write(self, block_index: int, data: bytes, actor: str = "?") -> bool:
        """Like :meth:`write` but returns ``False`` on an MPU fault."""
        try:
            self.write(block_index, data, actor)
        except MemoryFault:
            return False
        return True

    def patch(
        self, block_index: int, offset: int, data: bytes, actor: str = "?"
    ) -> None:
        """Overwrite part of a block (same MPU semantics as ``write``)."""
        self._check_index(block_index)
        if offset < 0 or offset + len(data) > self.block_size:
            raise AddressError("patch outside block bounds")
        if self.mpu is not None and not self.mpu.check_write(block_index, actor):
            return
        self.blocks[block_index].data[offset : offset + len(data)] = data
        patched = bytes(self.blocks[block_index].data)
        self._frozen[block_index] = patched
        self.generations[block_index] += 1
        self.write_log.append(
            WriteRecord(
                self.now(), block_index, actor,
                content_fingerprint(patched),
            )
        )

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> MemoryImage:
        """Immutable copy of the entire current contents."""
        return MemoryImage(block.data for block in self.blocks)

    def load_image(self, image: MemoryImage) -> None:
        """Restore memory to ``image``, bypassing the MPU (re-flash)."""
        if len(image) != self.block_count:
            raise ConfigurationError("image block count mismatch")
        for index, content in enumerate(image):
            if len(content) != self.block_size:
                raise ConfigurationError("image block size mismatch")
            self.blocks[index].data[:] = content
            self._frozen[index] = bytes(content)
            self.generations[index] += 1

    def benign_image(self) -> MemoryImage:
        """The pristine image this memory was initialized with.

        Built once from the interned reference blocks and memoized;
        repeat calls (verifier enrollment, QoA analysis, fleet runs)
        return the same shared image.
        """
        if self._benign_image is None:
            self._benign_image = MemoryImage(
                self._reference.blocks(self.block_count)
            )
        return self._benign_image

    def benign_block(self, block_index: int) -> bytes:
        """Pristine contents of one block (interned, shared)."""
        self._check_index(block_index)
        return self._reference.block(block_index)

    def reference_blocks(self) -> Tuple[bytes, ...]:
        """The interned benign image as one shared tuple.

        Every call returns the same tuple of the same interned ``bytes``
        objects (shared across all devices with this ``seed`` /
        ``block_size``); the measurement hot loop compares against it by
        identity to recognise still-benign content.
        """
        return self._reference.blocks(self.block_count)

    def benign_audit(self, block_index: int) -> bytes:
        """Precomputed audit hash of the block's pristine contents.

        Equals ``content_fingerprint(self.benign_block(block_index))``
        without re-hashing; the measurement process's cache-miss fill
        uses it whenever the measured content is still benign.
        """
        self._check_index(block_index)
        return self._reference.audit(block_index)

    def dirty_blocks(self) -> List[int]:
        """Indices of blocks that differ from the benign image.

        Reuses the interned reference blocks; the common all-clean case
        is an O(1) identity check per pristine block (its frozen
        snapshot *is* the interned benign object).
        """
        benign = self._reference.blocks(self.block_count)
        read = self.read_block
        return [
            i for i in range(self.block_count) if read(i) != benign[i]
        ]

    def writes_in(self, t_start: float, t_end: float) -> List[WriteRecord]:
        """All committed writes with ``t_start <= time <= t_end``."""
        return [
            rec for rec in self.write_log if t_start <= rec.time <= t_end
        ]
