"""Verifier <-> prover communication with latency and adversaries.

On-demand RA (Figure 1) begins with a network round trip, and SeED
(Section 3.3) must survive a *communication adversary* that drops
attestation responses.  This module provides:

* :class:`Endpoint` -- a named mailbox with an arrival signal;
* :class:`Channel` -- a bidirectional link with a latency model;
* :class:`DropAdversary` / :class:`DelayAdversary` / :class:`ReplayAdversary`
  -- in-path filters used by the failure-injection tests.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Signal, Simulator


@dataclass(frozen=True)
class Message:
    """One network message."""

    msg_id: int
    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float


class Endpoint:
    """A named mailbox attached to a channel.

    Processes consume messages by waiting on :attr:`rx_signal` and then
    draining :meth:`receive`.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.inbox: List[Message] = []
        self.rx_signal = Signal(sim, f"{name}.rx")
        self.channel: Optional["Channel"] = None
        self.received_count = 0

    def send(self, dst: str, kind: str, payload: Any) -> Message:
        """Send via the attached channel."""
        if self.channel is None:
            raise ConfigurationError(f"endpoint {self.name!r} not attached")
        return self.channel.send(self.name, dst, kind, payload)

    def deliver(self, message: Message) -> None:
        """Called by the channel when a message arrives here."""
        self.inbox.append(message)
        self.received_count += 1
        obs = self.sim.obs
        if obs.enabled:
            # The flight interval only becomes known on arrival, so it
            # is recorded retrospectively from the send stamp.
            obs.spans.add_span(
                "net.delivery", message.sent_at, self.sim.now,
                category="net", src=message.src, dst=message.dst,
                kind=message.kind,
            )
            obs.metrics.counter(
                "net.messages.delivered", "messages handed to an endpoint"
            ).inc()
        self.rx_signal.fire(message)

    def receive(self) -> Optional[Message]:
        """Pop the oldest pending message, or ``None``."""
        if not self.inbox:
            return None
        return self.inbox.pop(0)

    def drain(self) -> List[Message]:
        """Pop every pending message."""
        messages, self.inbox = self.inbox, []
        return messages


class Channel:
    """A link between named endpoints with latency and optional filters.

    ``latency`` may be a constant (seconds) or a callable
    ``latency(message) -> float``.  Filters see each message before
    delivery and return the delivery delay, ``None`` to drop, or a list
    of ``(delay, message)`` pairs to duplicate/mutate (used by the
    replay adversary).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Any = 0.005,
        trace: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.trace = trace
        self.endpoints: Dict[str, Endpoint] = {}
        self.filters: List[Callable[[Message], Any]] = []
        self.log: List[Message] = []
        self.dropped: List[Message] = []
        self._ids = itertools.count(1)

    def attach(self, endpoint: Endpoint) -> Endpoint:
        if endpoint.name in self.endpoints:
            raise ConfigurationError(
                f"endpoint name {endpoint.name!r} already attached"
            )
        self.endpoints[endpoint.name] = endpoint
        endpoint.channel = self
        return endpoint

    def make_endpoint(self, name: str) -> Endpoint:
        """Create and attach an endpoint in one step."""
        return self.attach(Endpoint(self.sim, name))

    def add_filter(self, filter_fn: Callable[[Message], Any]) -> None:
        self.filters.append(filter_fn)

    def _base_latency(self, message: Message) -> float:
        if callable(self.latency):
            return float(self.latency(message))
        return float(self.latency)

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Message:
        if dst not in self.endpoints:
            raise ConfigurationError(f"unknown destination {dst!r}")
        message = Message(
            next(self._ids), src, dst, kind, payload, self.sim.now
        )
        self.log.append(message)
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "net.messages.sent", "messages entering the channel"
            ).inc()
        deliveries = [(self._base_latency(message), message)]
        for filter_fn in self.filters:
            next_deliveries = []
            for delay, msg in deliveries:
                verdict = filter_fn(msg)
                if verdict is None:
                    self.dropped.append(msg)
                    if obs.enabled:
                        obs.metrics.counter(
                            "net.messages.dropped",
                            "messages eaten by an in-path filter",
                        ).inc()
                    if self.trace is not None:
                        self.trace.record(
                            self.sim.now, "net.drop", msg.src, msg_kind=msg.kind
                        )
                    continue
                if isinstance(verdict, list):
                    next_deliveries.extend(verdict)
                else:
                    next_deliveries.append((float(verdict), msg))
            deliveries = next_deliveries
        for delay, msg in deliveries:
            self.sim.schedule(delay, self.endpoints[msg.dst].deliver, msg)
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "net.send",
                    msg.src,
                    dst=msg.dst,
                    msg_kind=msg.kind,
                    delay=round(delay, 6),
                )
        return message


class DropAdversary:
    """Drops matching messages with a given probability.

    The SeED communication adversary: suppress attestation responses so
    the verifier never learns the prover was dirty.
    """

    def __init__(
        self,
        probability: float = 1.0,
        kind: Optional[str] = None,
        rng: Optional[random.Random] = None,
        base_latency: float = 0.005,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        self.probability = probability
        self.kind = kind
        self.rng = rng if rng is not None else random.Random(0)
        self.base_latency = base_latency
        self.dropped_count = 0

    def __call__(self, message: Message) -> Optional[float]:
        if self.kind is not None and message.kind != self.kind:
            return self.base_latency
        if self.rng.random() < self.probability:
            self.dropped_count += 1
            return None
        return self.base_latency


class DelayAdversary:
    """Adds a fixed extra delay to matching messages (request deferral
    in Figure 1's timeline)."""

    def __init__(
        self, extra_delay: float, kind: Optional[str] = None,
        base_latency: float = 0.005,
    ) -> None:
        if extra_delay < 0:
            raise ConfigurationError("extra_delay must be non-negative")
        self.extra_delay = extra_delay
        self.kind = kind
        self.base_latency = base_latency

    def __call__(self, message: Message) -> float:
        if self.kind is not None and message.kind != self.kind:
            return self.base_latency
        return self.base_latency + self.extra_delay


class ReplayAdversary:
    """Records matching messages and re-injects each one ``copies``
    times after ``replay_delay`` -- the attack SeED's monotonic
    counters must defeat."""

    def __init__(
        self,
        kind: str,
        replay_delay: float = 1.0,
        copies: int = 1,
        base_latency: float = 0.005,
    ) -> None:
        self.kind = kind
        self.replay_delay = replay_delay
        self.copies = copies
        self.base_latency = base_latency
        self.captured: List[Message] = []

    def __call__(self, message: Message):
        if message.kind != self.kind:
            return self.base_latency
        self.captured.append(message)
        deliveries = [(self.base_latency, message)]
        for copy_index in range(1, self.copies + 1):
            deliveries.append(
                (self.base_latency + copy_index * self.replay_delay, message)
            )
        return deliveries
