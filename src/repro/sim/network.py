"""Verifier <-> prover communication with latency and adversaries.

On-demand RA (Figure 1) begins with a network round trip, and SeED
(Section 3.3) must survive a *communication adversary* that drops
attestation responses.  This module provides:

* :class:`Endpoint` -- a named mailbox with an arrival signal;
* :class:`Channel` -- a bidirectional link with a latency model;
* :class:`ChannelFilter` / :class:`FilterVerdict` -- the one in-path
  filter protocol shared by adversaries and fault injectors;
* :class:`DropAdversary` / :class:`DelayAdversary` / :class:`ReplayAdversary`
  -- in-path filters used by the failure-injection tests.

Filters historically had three incompatible contracts (return ``None``
to drop, a float to override the delay, or a list to duplicate); they
now all speak :class:`FilterVerdict`, and :meth:`Channel.add_filter`
wraps legacy callables in an adapter so old code keeps working.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Signal, Simulator


@dataclass(frozen=True)
class Message:
    """One network message.

    ``ctx`` is an out-of-band :class:`repro.obs.tracectx.TraceContext`
    carried alongside (never inside) the protocol payload: MAC'd bytes
    are computed from ``payload`` only, so tracing never perturbs the
    golden protocol transcripts.  ``None`` means untraced.
    """

    msg_id: int
    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float
    ctx: Any = None


class Endpoint:
    """A named mailbox attached to a channel.

    Processes consume messages by waiting on :attr:`rx_signal` and then
    draining :meth:`receive`.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.inbox: List[Message] = []
        self.rx_signal = Signal(sim, f"{name}.rx")
        self.channel: Optional["Channel"] = None
        self.received_count = 0
        #: lazily resolved instrument handle -- deliver() runs once per
        #: message, so the registry's get-or-create lookup is paid once
        #: instead of per delivery (instrument creation order, and
        #: therefore snapshots, are unchanged)
        self._delivered_counter: Optional[Any] = None

    def send(self, dst: str, kind: str, payload: Any,
             ctx: Any = None) -> Message:
        """Send via the attached channel."""
        if self.channel is None:
            raise ConfigurationError(f"endpoint {self.name!r} not attached")
        return self.channel.send(self.name, dst, kind, payload, ctx=ctx)

    def deliver(self, message: Message) -> None:
        """Called by the channel when a message arrives here."""
        self.inbox.append(message)
        self.received_count += 1
        obs = self.sim.obs
        if obs.enabled:
            # The flight interval only becomes known on arrival, so it
            # is recorded retrospectively from the send stamp.
            if message.ctx is not None:
                obs.spans.add_span(
                    "net.delivery", message.sent_at, self.sim.now,
                    category="net", src=message.src, dst=message.dst,
                    kind=message.kind, trace_id=message.ctx.trace_id,
                )
            else:
                obs.spans.add_span(
                    "net.delivery", message.sent_at, self.sim.now,
                    category="net", src=message.src, dst=message.dst,
                    kind=message.kind,
                )
            counter = self._delivered_counter
            if counter is None:
                counter = self._delivered_counter = obs.metrics.counter(
                    "net.messages.delivered",
                    "messages handed to an endpoint",
                )
            counter.inc()
        self.rx_signal.fire(message)

    def receive(self) -> Optional[Message]:
        """Pop the oldest pending message, or ``None``."""
        if not self.inbox:
            return None
        return self.inbox.pop(0)

    def drain(self) -> List[Message]:
        """Pop every pending message."""
        messages, self.inbox = self.inbox, []
        return messages


class MuxEndpoint(Endpoint):
    """A many-to-one mailbox spanning several channels.

    The served verifier's front door: thousands of provers live on
    per-cohort channels (each with its own latency model and fault
    filters), while the server terminates them all in one inbox and
    one ``rx_signal``.  :meth:`join` attaches this endpoint to an
    additional channel under its own name; :meth:`send` routes by
    destination, picking the first joined channel that knows ``dst``
    (channel join order, so routing stays deterministic).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.channels: List["Channel"] = []
        super().__init__(sim, name)

    # ``Channel.attach`` assigns ``endpoint.channel``; the mux turns
    # that single-owner slot into an accumulating membership so joining
    # a second channel does not silently detach the first.
    @property
    def channel(self) -> Optional["Channel"]:
        return self.channels[0] if self.channels else None

    @channel.setter
    def channel(self, value: Optional["Channel"]) -> None:
        if value is not None and value not in self.channels:
            self.channels.append(value)

    def join(self, channel: "Channel") -> "MuxEndpoint":
        """Attach to one more channel (same name on every channel)."""
        channel.attach(self)
        return self

    def send(self, dst: str, kind: str, payload: Any,
             ctx: Any = None) -> Message:
        for channel in self.channels:
            if dst in channel.endpoints:
                return channel.send(self.name, dst, kind, payload, ctx=ctx)
        raise ConfigurationError(
            f"mux endpoint {self.name!r} reaches no channel with "
            f"destination {dst!r}"
        )


@dataclass(frozen=True)
class FilterVerdict:
    """What one filter decided about one in-flight message.

    ``action`` is ``"deliver"``, ``"drop"`` or ``"replace"``.  On
    deliver, ``delay`` (when not ``None``) *replaces* the delivery
    delay accumulated so far and ``extra`` is added on top -- jitter
    injectors use ``extra`` so they compose with whatever latency the
    channel or an upstream filter chose.  On replace, ``deliveries``
    is the full ``(delay, message)`` fan-out that substitutes for the
    original delivery (the replay adversary's contract).
    """

    action: str = "deliver"
    delay: Optional[float] = None
    extra: float = 0.0
    deliveries: Tuple[Tuple[float, "Message"], ...] = ()
    #: substitute message delivered in place of the original (in-flight
    #: tampering); ``None`` delivers the message unchanged
    mutate: Optional["Message"] = None

    def __post_init__(self) -> None:
        if self.action not in ("deliver", "drop", "replace"):
            raise ConfigurationError(
                f"unknown filter action {self.action!r}"
            )
        if self.extra < 0:
            raise ConfigurationError("extra delay must be non-negative")

    # -- constructors -----------------------------------------------------

    @classmethod
    def deliver(cls, delay: Optional[float] = None, extra: float = 0.0,
                mutate: Optional["Message"] = None) -> "FilterVerdict":
        return cls("deliver", delay=delay, extra=extra, mutate=mutate)

    @classmethod
    def drop(cls) -> "FilterVerdict":
        return cls("drop")

    @classmethod
    def replace(
        cls, deliveries: Any
    ) -> "FilterVerdict":
        return cls("replace", deliveries=tuple(
            (float(delay), message) for delay, message in deliveries
        ))

    @classmethod
    def coerce(cls, raw: Any) -> "FilterVerdict":
        """Normalize a legacy filter return value.

        The pre-unification contracts: ``None`` dropped the message, a
        list of ``(delay, message)`` pairs replaced the delivery, any
        number replaced the delivery delay.
        """
        if isinstance(raw, FilterVerdict):
            return raw
        if raw is None:
            return cls.drop()
        if isinstance(raw, (list, tuple)):
            return cls.replace(raw)
        return cls.deliver(delay=float(raw))


class ChannelFilter:
    """Base class for in-path filters: ``__call__(Message) -> FilterVerdict``.

    Adversaries and fault injectors both subclass this; anything else
    handed to :meth:`Channel.add_filter` is wrapped in
    :class:`LegacyFilterAdapter`.
    """

    def __call__(self, message: Message) -> FilterVerdict:
        raise NotImplementedError


class LegacyFilterAdapter(ChannelFilter):
    """Adapts a legacy callable (None/number/list contract) to
    :class:`FilterVerdict`."""

    def __init__(self, fn: Callable[[Message], Any]) -> None:
        self.fn = fn

    def __call__(self, message: Message) -> FilterVerdict:
        return FilterVerdict.coerce(self.fn(message))


class Channel:
    """A link between named endpoints with latency and optional filters.

    ``latency`` may be a constant (seconds) or a callable
    ``latency(message) -> float``.  Filters see each message before
    delivery and return a :class:`FilterVerdict`; legacy callables
    using the old None/number/list contract are adapted transparently.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Any = 0.005,
        trace: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.trace = trace
        self.endpoints: Dict[str, Endpoint] = {}
        self.filters: List[Callable[[Message], Any]] = []
        self.log: List[Message] = []
        self.dropped: List[Message] = []
        self._ids = itertools.count(1)
        # lazily resolved instrument handles (see Endpoint.deliver)
        self._sent_counter: Optional[Any] = None
        self._dropped_counter: Optional[Any] = None

    def attach(self, endpoint: Endpoint) -> Endpoint:
        if endpoint.name in self.endpoints:
            raise ConfigurationError(
                f"endpoint name {endpoint.name!r} already attached"
            )
        self.endpoints[endpoint.name] = endpoint
        endpoint.channel = self
        return endpoint

    def make_endpoint(self, name: str) -> Endpoint:
        """Create and attach an endpoint in one step."""
        return self.attach(Endpoint(self.sim, name))

    def add_filter(self, filter_fn: Callable[[Message], Any]) -> None:
        if not isinstance(filter_fn, ChannelFilter):
            filter_fn = LegacyFilterAdapter(filter_fn)
        self.filters.append(filter_fn)

    def _base_latency(self, message: Message) -> float:
        if callable(self.latency):
            return float(self.latency(message))
        return float(self.latency)

    def send(self, src: str, dst: str, kind: str, payload: Any,
             ctx: Any = None) -> Message:
        if dst not in self.endpoints:
            raise ConfigurationError(f"unknown destination {dst!r}")
        message = Message(
            next(self._ids), src, dst, kind, payload, self.sim.now, ctx
        )
        self.log.append(message)
        obs = self.sim.obs
        if obs.enabled:
            counter = self._sent_counter
            if counter is None:
                counter = self._sent_counter = obs.metrics.counter(
                    "net.messages.sent", "messages entering the channel"
                )
            counter.inc()
        deliveries = [(self._base_latency(message), message)]
        for filter_fn in self.filters:
            next_deliveries = []
            for delay, msg in deliveries:
                verdict = FilterVerdict.coerce(filter_fn(msg))
                if verdict.action == "drop":
                    self.dropped.append(msg)
                    if obs.enabled:
                        counter = self._dropped_counter
                        if counter is None:
                            counter = self._dropped_counter = (
                                obs.metrics.counter(
                                    "net.messages.dropped",
                                    "messages eaten by an in-path filter",
                                )
                            )
                        counter.inc()
                    if self.trace is not None:
                        self.trace.record(
                            self.sim.now, "net.drop", msg.src, msg_kind=msg.kind
                        )
                    continue
                if verdict.action == "replace":
                    next_deliveries.extend(verdict.deliveries)
                    continue
                chosen = delay if verdict.delay is None else verdict.delay
                delivered = msg if verdict.mutate is None else verdict.mutate
                next_deliveries.append((chosen + verdict.extra, delivered))
            deliveries = next_deliveries
        for delay, msg in deliveries:
            self.sim.schedule(delay, self.endpoints[msg.dst].deliver, msg)
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "net.send",
                    msg.src,
                    dst=msg.dst,
                    msg_kind=msg.kind,
                    delay=round(delay, 6),
                )
        return message


class DropAdversary(ChannelFilter):
    """Drops matching messages with a given probability.

    The SeED communication adversary: suppress attestation responses so
    the verifier never learns the prover was dirty.
    """

    def __init__(
        self,
        probability: float = 1.0,
        kind: Optional[str] = None,
        rng: Optional[random.Random] = None,
        base_latency: float = 0.005,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        self.probability = probability
        self.kind = kind
        self.rng = rng if rng is not None else random.Random(0)
        self.base_latency = base_latency
        self.dropped_count = 0

    def __call__(self, message: Message) -> FilterVerdict:
        if self.kind is not None and message.kind != self.kind:
            return FilterVerdict.deliver(delay=self.base_latency)
        if self.rng.random() < self.probability:
            self.dropped_count += 1
            return FilterVerdict.drop()
        return FilterVerdict.deliver(delay=self.base_latency)


class DelayAdversary(ChannelFilter):
    """Adds a fixed extra delay to matching messages (request deferral
    in Figure 1's timeline)."""

    def __init__(
        self, extra_delay: float, kind: Optional[str] = None,
        base_latency: float = 0.005,
    ) -> None:
        if extra_delay < 0:
            raise ConfigurationError("extra_delay must be non-negative")
        self.extra_delay = extra_delay
        self.kind = kind
        self.base_latency = base_latency

    def __call__(self, message: Message) -> FilterVerdict:
        if self.kind is not None and message.kind != self.kind:
            return FilterVerdict.deliver(delay=self.base_latency)
        return FilterVerdict.deliver(
            delay=self.base_latency + self.extra_delay
        )


class ReplayAdversary(ChannelFilter):
    """Records matching messages and re-injects each one ``copies``
    times after ``replay_delay`` -- the attack SeED's monotonic
    counters must defeat."""

    def __init__(
        self,
        kind: str,
        replay_delay: float = 1.0,
        copies: int = 1,
        base_latency: float = 0.005,
    ) -> None:
        self.kind = kind
        self.replay_delay = replay_delay
        self.copies = copies
        self.base_latency = base_latency
        self.captured: List[Message] = []

    def __call__(self, message: Message) -> FilterVerdict:
        if message.kind != self.kind:
            return FilterVerdict.deliver(delay=self.base_latency)
        self.captured.append(message)
        deliveries = [(self.base_latency, message)]
        for copy_index in range(1, self.copies + 1):
            deliveries.append(
                (self.base_latency + copy_index * self.replay_delay, message)
            )
        return FilterVerdict.replace(deliveries)
