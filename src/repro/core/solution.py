"""The solution landscape as data: Table 1 and Figure 3.

The paper's Table 1 summarizes each candidate solution along eight
dimensions; Figure 3 arranges the same solutions as a taxonomy
(on-demand vs self-initiated; within on-demand, locking vs shuffling).
This module encodes both so benchmarks can print them, and -- more
importantly -- so :mod:`repro.core.tradeoff` can check the claimed
cells against simulation outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Feature(enum.Enum):
    """Tri-state feature value as printed in Table 1."""

    YES = "yes"
    NO = "no"
    PARTIAL = "partial"  # the paper's "(to some degree)" / "high prob."

    @property
    def mark(self) -> str:
        return {"yes": "Y", "no": "x", "partial": "~"}[self.value]


@dataclass(frozen=True)
class Solution:
    """One row of Table 1."""

    name: str
    reference: str
    #: detects self-relocating malware (resident at measurement start)
    detects_relocating: Feature
    #: detects transient malware (resident at measurement start)
    detects_transient: Feature
    #: can tasks write attested memory while MP runs?
    writable_availability: Feature
    #: does the digest correspond to a state of M that existed in full?
    consistency: Feature
    #: can (critical) tasks interrupt MP?
    interruptibility: Feature
    #: works for unattended devices (detects infections between visits)?
    unattended: Feature
    extra_hardware: str
    runtime_overhead: str
    #: mechanism key understood by repro.core.tradeoff, "" if abstract
    mechanism_key: str = ""
    notes: str = ""


# Table 1, transcribed.  The two detection columns follow the table's
# reading: the malware is resident when the measurement starts and
# actively tries to evade during MP (Section 2.5's two strategies).
SOLUTIONS: Tuple[Solution, ...] = (
    Solution(
        name="SMART on-demand (baseline)",
        reference="[12]",
        detects_relocating=Feature.YES,
        detects_transient=Feature.YES,
        writable_availability=Feature.NO,
        consistency=Feature.YES,
        interruptibility=Feature.NO,
        unattended=Feature.NO,
        extra_hardware="baseline (ROM + key access control)",
        runtime_overhead="baseline",
        mechanism_key="smart",
        notes="atomicity doubles as (coincidental) consistency",
    ),
    Solution(
        name="All-Lock",
        reference="[5]",
        detects_relocating=Feature.YES,
        detects_transient=Feature.YES,
        writable_availability=Feature.NO,
        consistency=Feature.YES,
        interruptibility=Feature.PARTIAL,
        unattended=Feature.NO,
        extra_hardware="dynamically configurable MPU or MMU",
        runtime_overhead="low",
        mechanism_key="all-lock",
        notes="interruptible, but writers to M stay blocked",
    ),
    Solution(
        name="Dec-Lock",
        reference="[5]",
        detects_relocating=Feature.YES,
        detects_transient=Feature.YES,
        writable_availability=Feature.PARTIAL,
        consistency=Feature.YES,
        interruptibility=Feature.PARTIAL,
        unattended=Feature.NO,
        extra_hardware="dynamically configurable MPU or MMU",
        runtime_overhead="low",
        mechanism_key="dec-lock",
        notes="consistent with M at t_s; blocks free up as measured",
    ),
    Solution(
        name="Inc-Lock",
        reference="[5]",
        detects_relocating=Feature.YES,
        detects_transient=Feature.NO,
        writable_availability=Feature.PARTIAL,
        consistency=Feature.YES,
        interruptibility=Feature.PARTIAL,
        unattended=Feature.NO,
        extra_hardware="dynamically configurable MPU or MMU",
        runtime_overhead="low",
        mechanism_key="inc-lock",
        notes="consistent with M at t_e; transient can erase early",
    ),
    Solution(
        name="Shuffled measurement (SMARM)",
        reference="[7]",
        detects_relocating=Feature.PARTIAL,  # "(high prob.)"
        detects_transient=Feature.NO,
        writable_availability=Feature.YES,
        consistency=Feature.NO,
        interruptibility=Feature.YES,
        unattended=Feature.NO,
        extra_hardware="none (optionally secure memory)",
        runtime_overhead="high",
        mechanism_key="smarm",
        notes="~e^-1 escape per round; repeat to drive it down",
    ),
    Solution(
        name="Self-measurement (ERASMUS/SeED)",
        reference="[6, 14]",
        detects_relocating=Feature.YES,
        detects_transient=Feature.YES,
        writable_availability=Feature.NO,
        consistency=Feature.YES,
        # The table prints "x (may be made context aware)": measurements
        # themselves are atomic; the *schedule* dodges the application.
        interruptibility=Feature.NO,
        unattended=Feature.YES,
        extra_hardware="secure clock",
        runtime_overhead="none (amortized off the critical path)",
        mechanism_key="erasmus",
        notes="QoA decouples measurement (T_M) from collection (T_C)",
    ),
)

_COLUMNS = (
    ("Solution", lambda s: s.name),
    ("Reloc", lambda s: s.detects_relocating.mark),
    ("Trans", lambda s: s.detects_transient.mark),
    ("WritableMem", lambda s: s.writable_availability.mark),
    ("Consist", lambda s: s.consistency.mark),
    ("Interrupt", lambda s: s.interruptibility.mark),
    ("Unattend", lambda s: s.unattended.mark),
    ("ExtraHW", lambda s: s.extra_hardware),
    ("Overhead", lambda s: s.runtime_overhead),
)


def solution_table() -> str:
    """Render Table 1 as aligned text (the TAB1 bench prints this next
    to the empirically derived matrix)."""
    rows = [[title for title, _ in _COLUMNS]]
    for solution in SOLUTIONS:
        rows.append([getter(solution) for _, getter in _COLUMNS])
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(_COLUMNS))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def taxonomy_tree() -> Dict[str, Dict[str, List[str]]]:
    """Figure 3's overview: how the solutions relate.

    Returned as a nested dict; :func:`render_taxonomy` prints it.
    """
    return {
        "interruptible attestation (on-demand)": {
            "memory locking [5]": [
                "All-Lock / All-Lock-Ext",
                "Dec-Lock (consistent at t_s)",
                "Inc-Lock / Inc-Lock-Ext (consistent at t_e)",
            ],
            "shuffled measurement [7]": [
                "SMARM (secret order, repeat k times)",
            ],
            "per-process measurement [3]": [
                "TyTAN (measured process may not interrupt)",
            ],
        },
        "periodic self-measurement": {
            "collect-later [6]": [
                "ERASMUS (T_M measurements, T_C collections)",
            ],
            "prover-initiated [14]": [
                "SeED (secret triggers, monotonic counters)",
            ],
        },
    }


def render_taxonomy() -> str:
    """Figure 3 as an indented text tree."""
    lines = ["potential solutions"]
    tree = taxonomy_tree()
    for family, subfamilies in tree.items():
        lines.append(f"+- {family}")
        for subfamily, members in subfamilies.items():
            lines.append(f"|  +- {subfamily}")
            for member in members:
                lines.append(f"|  |  +- {member}")
    return "\n".join(lines)


def solution_by_key(mechanism_key: str) -> Optional[Solution]:
    """Look up the Table 1 row for a mechanism key."""
    for solution in SOLUTIONS:
        if solution.mechanism_key == mechanism_key:
            return solution
    return None
