"""Temporal consistency of measurements (Figure 4, after [5]).

A measurement is *consistent with M at time t* if the contents MP
digested are exactly M's contents at instant t.  Figure 4's point:
a write at A (before t_s) or D (after t_r) never matters; whether a
write at B or C (inside the measurement) breaks consistency depends on
the mechanism.

The analyzer reconstructs any block's content identity at any past
instant from the memory's write log (each committed write carries a
content fingerprint) and compares with the fingerprints MP recorded
when it snapshotted each block.  From that it derives:

* :meth:`ConsistencyAnalyzer.consistent_at` -- is the measurement
  consistent with M at t?
* :meth:`consistent_instants` -- which of a set of probe times are
  consistent;
* :meth:`consistency_window` -- the maximal set of instants around the
  measurement where consistency holds, probed at write-event
  boundaries (between two consecutive writes, consistency cannot
  change, so probing the midpoints of the write-partitioned timeline
  is exact).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ra.report import MeasurementRecord
from repro.sim.memory import Memory, content_fingerprint


class ConsistencyVerdict(enum.Enum):
    """Classification of one measurement's consistency guarantee."""

    INTERVAL = "interval"  # consistent over a closed interval
    INSTANT = "instant"  # consistent at isolated instant(s)
    NONE = "none"  # consistent with no full-memory state


@dataclass(frozen=True)
class ConsistencyProfile:
    """The result of probing a measurement's consistency over time."""

    verdict: ConsistencyVerdict
    consistent_times: Tuple[float, ...]
    probed_times: Tuple[float, ...]

    @property
    def any_consistent(self) -> bool:
        return bool(self.consistent_times)


class ConsistencyAnalyzer:
    """Answers "was this measurement consistent with M at time t?"."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self._benign = [
            # one-shot reference build at construction; never on a
            # traversal hot path
            content_fingerprint(memory.benign_block(i))  # repro: allow[perf-uncached-digest]
            for i in range(memory.block_count)
        ]

    # -- content reconstruction -------------------------------------------

    def fingerprint_at(self, block_index: int, time: float) -> bytes:
        """Content identity of ``block_index`` at instant ``time``.

        The last committed write at or before ``time`` determines the
        content; with no prior write the block still holds its benign
        fill.  (Assumes memory was not re-flashed via ``load_image``
        mid-run, which bypasses the log.)
        """
        fingerprint = self._benign[block_index]
        for record in self.memory.write_log:
            if record.block != block_index:
                continue
            if record.time > time:
                break
            fingerprint = record.fingerprint
        return fingerprint

    # -- consistency checks ---------------------------------------------------

    def _measured_blocks(self, record: MeasurementRecord) -> List[int]:
        return [
            index
            for index, t in enumerate(record.audit_block_times)
            if t >= 0.0
        ]

    def consistent_at(self, record: MeasurementRecord, time: float) -> bool:
        """True iff every measured block's digested content equals its
        content at instant ``time``."""
        if not record.audit_block_hashes:
            raise ConfigurationError("record carries no audit data")
        for block_index in self._measured_blocks(record):
            measured = record.audit_block_hashes[block_index]
            if measured != self.fingerprint_at(block_index, time):
                return False
        return True

    def consistent_instants(
        self, record: MeasurementRecord, probe_times: Sequence[float]
    ) -> List[float]:
        return [
            t for t in probe_times if self.consistent_at(record, t)
        ]

    def probe_times(
        self, record: MeasurementRecord, margin: float = 1e-6
    ) -> List[float]:
        """Exact probe set: one instant per write-free segment of the
        timeline around the measurement (plus t_s, t_e and t_r).

        Consistency is constant between consecutive writes, so probing
        one point per segment fully characterizes the window.
        """
        horizon_start = record.t_start - margin
        horizon_end = (
            record.t_release if record.t_release is not None else record.t_end
        ) + margin
        cuts = sorted(
            {
                rec.time
                for rec in self.memory.write_log
                if horizon_start <= rec.time <= horizon_end
            }
            | {record.t_start, record.t_end, horizon_start, horizon_end}
        )
        probes = list(cuts)
        for left, right in zip(cuts, cuts[1:]):
            probes.append((left + right) / 2.0)
        return sorted(probes)

    def profile(self, record: MeasurementRecord) -> ConsistencyProfile:
        """Probe consistency across the measurement window."""
        probes = self.probe_times(record)
        consistent = tuple(self.consistent_instants(record, probes))
        if not consistent:
            verdict = ConsistencyVerdict.NONE
        elif len(consistent) >= 3:
            verdict = ConsistencyVerdict.INTERVAL
        else:
            verdict = ConsistencyVerdict.INSTANT
        return ConsistencyProfile(
            verdict=verdict,
            consistent_times=consistent,
            probed_times=tuple(probes),
        )


def expected_consistency(policy_name: str) -> str:
    """The paper's claimed guarantee per mechanism (Section 3.1)."""
    claims = {
        "no-lock": "none",
        "all-lock": "interval [t_s, t_e]",
        "all-lock-ext": "interval [t_s, t_r]",
        "dec-lock": "instant t_s",
        "inc-lock": "instant t_e",
        "inc-lock-ext": "interval [t_e, t_r]",
        "smart": "interval [t_s, t_e] (coincidental, via atomicity)",
        "smarm": "none",
        "erasmus": "interval [t_s, t_e] (atomic self-measurements)",
        "seed": "interval [t_s, t_e] (atomic triggered measurements)",
        "tytan": "per-process only (cross-process moves invisible)",
    }
    claim = claims.get(policy_name)
    if claim is None:
        raise ConfigurationError(f"no consistency claim for {policy_name!r}")
    return claim
