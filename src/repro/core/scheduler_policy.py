"""Context-aware self-measurement scheduling (Section 3.3).

ERASMUS "does not fully resolve the conflict between RA security and
critical application needs", but offers compromises:

1. interrupt MP when the application must run, reschedule it after --
   that one falls out of priorities (MP runs below the application);
2. *adapt MP scheduling so it does not interfere with application
   scheduling* -- that one needs a policy, and this module provides
   three:

``FixedSchedule``
    The baseline: start every measurement exactly at ``k * T_M``.
``ContextAwareSchedule``
    Defer a measurement that would collide with an imminent release of
    a registered critical task: start it right after the critical job
    instead.
``SlackSchedule``
    Only start a measurement when the projected measurement time fits
    entirely inside the critical task's idle gap; otherwise wait for
    the next gap.

All three are callables with the signature ERASMUS expects:
``policy(device, nominal_time, index) -> start_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.task import PeriodicTask


@dataclass
class FixedSchedule:
    """Start at the nominal instant, always."""

    def __call__(self, device: Device, nominal: float, index: int) -> float:
        return nominal


@dataclass
class ContextAwareSchedule:
    """Dodge imminent critical releases.

    If the nominal start is within ``guard`` seconds *before* the
    critical task's next release, defer until just after that release
    plus the task's worst-case execution time.
    """

    critical: PeriodicTask
    guard: float = 0.05

    def __post_init__(self) -> None:
        if self.guard < 0:
            raise ConfigurationError("guard must be non-negative")
        self.deferrals = 0

    def _next_release_at_or_after(self, time: float) -> float:
        period = self.critical.period
        offset = self.critical.offset
        if time <= offset:
            return offset
        jobs_passed = int((time - offset) / period)
        release = offset + jobs_passed * period
        if release < time:
            release += period
        return release

    def __call__(self, device: Device, nominal: float, index: int) -> float:
        release = self._next_release_at_or_after(nominal)
        if release - nominal <= self.guard:
            self.deferrals += 1
            return release + self.critical.wcet
        return nominal


@dataclass
class SlackSchedule:
    """Fit the whole measurement inside one idle gap of the critical task.

    ``measurement_time`` is the projected duration of MP (use the
    device's timing model).  The policy starts MP right after a
    critical job if the remaining gap fits the measurement; otherwise
    it keeps sliding to later gaps.  When no gap ever fits, it degrades
    to the context-aware behaviour (a warning-grade condition the
    ablation bench exercises by oversizing the measurement).
    """

    critical: PeriodicTask
    measurement_time: float

    def __post_init__(self) -> None:
        if self.measurement_time < 0:
            raise ConfigurationError("measurement_time must be >= 0")
        self.deferrals = 0
        self.never_fits = (
            self.measurement_time
            > self.critical.period - self.critical.wcet
        )

    def __call__(self, device: Device, nominal: float, index: int) -> float:
        period = self.critical.period
        offset = self.critical.offset
        # Candidate start: right after the critical job in the current
        # period window.
        if nominal <= offset:
            window_start = offset
        else:
            window_start = (
                offset + int((nominal - offset) / period) * period
            )
        candidate = max(nominal, window_start + self.critical.wcet)
        if self.never_fits:
            self.deferrals += 1
            return candidate
        # Does [candidate, candidate + measurement_time] avoid the next
        # release?
        while True:
            next_release = window_start + period
            if candidate + self.measurement_time <= next_release:
                if candidate > nominal:
                    self.deferrals += 1
                return candidate
            window_start = next_release
            candidate = window_start + self.critical.wcet
