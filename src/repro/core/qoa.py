"""Quality of Attestation (Section 3.3, Figure 5).

QoA has two independent knobs once self-measurement decouples them:

* ``T_M`` -- time between two *measurements*: determines the window of
  opportunity for transient malware;
* ``T_C`` -- time between two *collections*: determines how stale the
  verifier's knowledge is (detection *latency*, not detection
  *ability*).

Figure 5 shows two infections: one fitting entirely between two
measurements (undetected), one spanning a measurement (detected at the
next collection).  :class:`QoATimeline` reproduces that picture from
parameters or from actual ERASMUS runs, and the analytic helpers give
the closed forms the ablation benches sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QoAParameters:
    """The (T_M, T_C) pair."""

    t_m: float
    t_c: float

    def __post_init__(self) -> None:
        if self.t_m <= 0 or self.t_c <= 0:
            raise ConfigurationError("T_M and T_C must be positive")

    @property
    def measurements_per_collection(self) -> float:
        return self.t_c / self.t_m

    @property
    def max_transient_window(self) -> float:
        """Longest residency a transient infection can have while
        guaranteed to be missed (just under one measurement gap)."""
        return self.t_m

    @property
    def worst_detection_latency(self) -> float:
        """Worst case from infection start to verifier awareness: the
        infection must first span a measurement (up to T_M) and the
        covering measurement must then be collected (up to T_C)."""
        return self.t_m + self.t_c

    def detection_probability(self, dwell: float) -> float:
        """Probability a transient infection of residency ``dwell`` is
        covered by at least one measurement, for a uniformly random
        infection phase and instantaneous measurements.

        ``dwell >= T_M`` guarantees coverage; below that the covering
        probability is ``dwell / T_M``.
        """
        if dwell < 0:
            raise ConfigurationError("dwell must be non-negative")
        return min(1.0, dwell / self.t_m)


@dataclass(frozen=True)
class InfectionEvent:
    """One transient-malware residency interval."""

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("infection end must be after start")

    @property
    def dwell(self) -> float:
        return self.end - self.start


@dataclass
class InfectionOutcome:
    """Detection verdict for one infection on a QoA timeline."""

    infection: InfectionEvent
    detected: bool
    covering_measurement: Optional[float] = None
    detected_at_collection: Optional[float] = None

    @property
    def detection_latency(self) -> Optional[float]:
        if self.detected_at_collection is None:
            return None
        return self.detected_at_collection - self.infection.start


class QoATimeline:
    """The Figure 5 picture: measurements, collections, infections.

    Measurement instants default to the ideal schedule ``k * T_M`` but
    can be replaced by the actual instants of an ERASMUS run (use
    each record's ``t_end``); likewise collections.
    """

    def __init__(
        self,
        params: QoAParameters,
        horizon: float,
        measurement_times: Optional[Sequence[float]] = None,
        collection_times: Optional[Sequence[float]] = None,
    ) -> None:
        self.params = params
        self.horizon = horizon
        if measurement_times is None:
            count = int(horizon / params.t_m) + 1
            measurement_times = [k * params.t_m for k in range(count)]
        if collection_times is None:
            count = int(horizon / params.t_c) + 1
            collection_times = [k * params.t_c for k in range(1, count)]
        self.measurement_times = sorted(
            t for t in measurement_times if t <= horizon
        )
        self.collection_times = sorted(
            t for t in collection_times if t <= horizon
        )
        self.outcomes: List[InfectionOutcome] = []

    # -- analysis ---------------------------------------------------------

    def add_infection(self, infection: InfectionEvent) -> InfectionOutcome:
        """Classify one infection: covered by a measurement or not, and
        when the verifier learns about it."""
        covering = next(
            (
                t
                for t in self.measurement_times
                if infection.start <= t <= infection.end
            ),
            None,
        )
        detected_at = None
        if covering is not None:
            detected_at = next(
                (t for t in self.collection_times if t >= covering), None
            )
        outcome = InfectionOutcome(
            infection=infection,
            detected=covering is not None and detected_at is not None,
            covering_measurement=covering,
            detected_at_collection=detected_at,
        )
        self.outcomes.append(outcome)
        return outcome

    # -- rendering -----------------------------------------------------------

    def render(self, width: int = 72) -> str:
        """ASCII Figure 5: M ticks, C ticks, infection spans."""
        scale = width / self.horizon

        def lane(marks: Sequence[Tuple[float, str]]) -> str:
            cells = [" "] * (width + 1)
            for time, char in marks:
                position = min(width, int(round(time * scale)))
                cells[position] = char
            return "".join(cells)

        lines = [
            "time  0" + " " * (width - 8) + f"{self.horizon:g}",
            "meas  "
            + lane([(t, "M") for t in self.measurement_times]),
            "coll  "
            + lane([(t, "C") for t in self.collection_times]),
        ]
        for index, outcome in enumerate(self.outcomes, 1):
            infection = outcome.infection
            start_col = int(round(infection.start * scale))
            end_col = max(start_col + 1, int(round(infection.end * scale)))
            span = [" "] * (width + 1)
            for col in range(start_col, min(end_col, width) + 1):
                span[col] = "#"
            verdict = "DETECTED" if outcome.detected else "undetected"
            label = infection.label or f"infection {index}"
            lines.append("inf   " + "".join(span) + f"  <- {label}: {verdict}")
        return "\n".join(lines)


def on_demand_equivalent(t_request: float) -> QoAParameters:
    """On-demand RA conflates the two QoA components (Figure 5's
    caption: they are "conjoined"): measuring and collecting both
    happen every ``t_request``."""
    return QoAParameters(t_m=t_request, t_c=t_request)
