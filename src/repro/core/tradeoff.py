"""Cross-mechanism evaluation: Table 1, derived from simulation.

For every mechanism in the solution landscape this harness runs three
scenarios on an identical device/workload -- no adversary,
self-relocating malware, reactive transient malware -- and distills the
Table 1 columns from what actually happened:

* the detection cells from the verifier's verdicts;
* writable-memory availability from write probes fired mid-measurement;
* interruptibility from whether the critical task preempted MP (and
  what its worst response time was);
* runtime overhead from measured MP wall time;
* the consistency column from the mechanism's guarantee (validated
  empirically, with controlled writes, by the Figure 4 benchmark --
  adversarial scenarios can be trivially consistent when every malware
  write is blocked).

Conventions (documented in DESIGN.md): the adversaries are resident
when the measurement begins and evade *during* MP, which is the
reading under which Table 1's baseline detects "transient" malware;
self-measurement (ERASMUS) runs its measurements atomically at
secretly-timed instants (its interruptibility cell is the paper's
"x (may be made context aware)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.consistency import expected_consistency
from repro.core.solution import Feature, solution_by_key
from repro.errors import ConfigurationError
from repro.malware.relocating import SelfRelocatingMalware
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import ErasmusService
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig
from repro.ra.report import Verdict
from repro.ra.service import AttestationService
from repro.ra.smarm import SmarmAttestation
from repro.ra.smart import SmartAttestation
from repro.sim.device import Device
from repro.units import MiB

ADVERSARIES = ("none", "relocating", "transient")

#: mechanism keys evaluated by default (the Table 1 rows)
STANDARD_KEYS = (
    "smart",
    "all-lock",
    "dec-lock",
    "inc-lock",
    "smarm",
    "erasmus",
    "no-lock",  # the strawman, shown for contrast
)


@dataclass
class ScenarioConfig:
    """Shared experiment geometry (one knob set for the whole matrix)."""

    block_count: int = 48
    block_size: int = 32
    #: each real block stands for this many simulated bytes, stretching
    #: MP to a realistic duration so tasks contend with it
    sim_block_size: int = 2 * MiB
    algorithm: str = "blake2s"
    request_at: float = 2.0
    horizon: float = 40.0
    smarm_rounds: int = 13
    erasmus_period: float = 2.5
    erasmus_collect_at: float = 30.0
    task_period: float = 0.1
    task_wcet: float = 0.002
    task_priority: int = 100
    mp_priority: int = 50
    malware_block: int = 5  # inside the code region
    infect_at: float = 0.5
    probe_count: int = 6  # mid-MP write probes across the data region


@dataclass
class MechanismSetup:
    """How to instantiate one mechanism inside a scenario."""

    key: str
    kind: str  # "on-demand" | "self"
    build: Callable[[Device, ScenarioConfig], object]
    rounds: int = 1


def _ondemand_builder(policy_name: Optional[str], atomic: bool):
    def build(device: Device, config: ScenarioConfig):
        mp_config = MeasurementConfig(
            algorithm=config.algorithm,
            order="sequential",
            atomic=atomic,
            locking=make_policy(policy_name) if policy_name else None,
            priority=config.mp_priority,
            normalize_mutable=True,
        )
        name = policy_name or ("smart" if atomic else "ondemand")
        return AttestationService(device, mp_config, mechanism=name)

    return build


def standard_mechanisms() -> Dict[str, MechanismSetup]:
    """The Table 1 rows as runnable setups."""

    def build_smart(device: Device, config: ScenarioConfig):
        service = SmartAttestation(device, algorithm=config.algorithm)
        service.config.normalize_mutable = True
        return service

    def build_smarm(device: Device, config: ScenarioConfig):
        service = SmarmAttestation(
            device, algorithm=config.algorithm,
            rounds=config.smarm_rounds, priority=config.mp_priority,
        )
        service.config.normalize_mutable = True
        return service

    def build_erasmus(device: Device, config: ScenarioConfig):
        mp_config = MeasurementConfig(
            algorithm=config.algorithm,
            order="sequential",
            atomic=True,  # ERASMUS runs SMART-style measurements, self-timed
            priority=config.mp_priority,
            normalize_mutable=True,
        )
        return ErasmusService(
            device, period=config.erasmus_period, config=mp_config,
        )

    setups = {
        "smart": MechanismSetup("smart", "on-demand", build_smart),
        "all-lock": MechanismSetup(
            "all-lock", "on-demand", _ondemand_builder("all-lock", False)
        ),
        "dec-lock": MechanismSetup(
            "dec-lock", "on-demand", _ondemand_builder("dec-lock", False)
        ),
        "inc-lock": MechanismSetup(
            "inc-lock", "on-demand", _ondemand_builder("inc-lock", False)
        ),
        "no-lock": MechanismSetup(
            "no-lock", "on-demand", _ondemand_builder("no-lock", False)
        ),
        "smarm": MechanismSetup("smarm", "on-demand", build_smarm),
        "erasmus": MechanismSetup("erasmus", "self", build_erasmus),
    }
    setups["smarm"].rounds = 13
    return setups


@dataclass
class ProbeResult:
    """Mid-measurement write probes into the data region."""

    attempted: int = 0
    succeeded: int = 0

    @property
    def fraction(self) -> float:
        if self.attempted == 0:
            return 0.0
        return self.succeeded / self.attempted


@dataclass
class ScenarioOutcome:
    """Everything measured from one (mechanism, adversary) run."""

    mechanism: str
    adversary: str
    detected: bool
    verdicts: List[str]
    mp_duration: float
    mp_interruptions: int
    task_worst_response: float
    task_deadline_misses: int
    probe: ProbeResult = field(default_factory=ProbeResult)
    malware_blocked_actions: int = 0
    lock_ops: int = 0

    def summary(self) -> str:
        return (
            f"{self.mechanism:<10} vs {self.adversary:<10} "
            f"detected={str(self.detected):<5} "
            f"mp={self.mp_duration:.3f}s "
            f"intr={self.mp_interruptions:<3} "
            f"task_worst={self.task_worst_response * 1e3:7.1f}ms "
            f"probes={self.probe.succeeded}/{self.probe.attempted}"
        )


def _install_adversary(device: Device, adversary: str,
                       config: ScenarioConfig):
    if adversary == "none":
        return None
    if adversary == "relocating":
        return SelfRelocatingMalware(
            device, target_block=config.malware_block,
            infect_at=config.infect_at, strategy="to-measured",
        )
    if adversary == "transient":
        return TransientMalware(
            device, target_block=config.malware_block,
            infect_at=config.infect_at, reactive=True, reappear=True,
        )
    raise ConfigurationError(f"unknown adversary {adversary!r}")


def _schedule_probes(device: Device, config: ScenarioConfig,
                     probe: ProbeResult, window: Tuple[float, float]) -> None:
    """Fire write attempts into the data region spread across a window.

    A probe models a task trying to update state mid-measurement; it
    runs as a maximum-priority one-shot job so the only obstacles are
    atomicity (no CPU) and MPU locks.  A probe *succeeds* only if the
    write commits promptly (within ``budget`` of its release): a write
    that had to wait for the whole measurement to finish is exactly the
    unavailability Table 1's column is about.
    """
    data_region = device.memory.regions["data"]
    start, end = window
    span = end - start
    budget = 0.005
    for index in range(config.probe_count):
        fire_at = start + span * (index + 0.5) / config.probe_count
        block = data_region.start + (index % data_region.length)

        def probe_job(proc, block=block, released=fire_at):
            from repro.sim.process import Compute

            yield Compute(1e-6)
            probe.attempted += 1
            payload = b"\xEE" * device.memory.block_size
            committed = device.memory.try_write(block, payload, "probe")
            if committed and device.sim.now - released <= budget:
                probe.succeeded += 1

        device.sim.schedule_at(
            fire_at,
            lambda job=probe_job, i=index: device.cpu.spawn(
                f"probe{i}", job, priority=10_000
            ),
        )


def run_scenario(
    setup: MechanismSetup,
    adversary: str,
    config: Optional[ScenarioConfig] = None,
    seed: int = 7,
) -> ScenarioOutcome:
    """Run one cell of the evaluation matrix."""
    # Lazy: repro.scenario imports this module for ScenarioConfig and
    # standard_mechanisms, so the factory can only be pulled in at
    # call time.
    from repro.scenario import Scenario

    config = config or ScenarioConfig()
    scenario = Scenario.build(
        mechanism=setup.key,
        malware=adversary,
        workload="firealarm",
        config=config,
        seed=seed,
    )
    sim = scenario.sim
    device = scenario.device
    verifier = scenario.verifier
    app = scenario.app
    service = scenario.service
    collector = scenario.collector
    if setup.kind == "on-demand":
        scenario.schedule_request(config.request_at, rounds=setup.rounds)
    else:
        sim.schedule_at(
            config.erasmus_collect_at, collector.collect, device.name
        )

    # Estimate the MP window for probe placement: first measurement
    # starts right after the request (plus network latency) or at t=0
    # for self-measurement; duration from the timing model.
    per_block = device.timing.hash_time(
        config.algorithm, config.sim_block_size
    )
    mp_estimate = per_block * config.block_count
    window_start = (
        config.request_at + 0.01 if setup.kind == "on-demand" else 0.0
    )
    probe = ProbeResult()
    _schedule_probes(
        device, config, probe, (window_start, window_start + mp_estimate)
    )

    sim.run(until=config.horizon)

    verdicts = [result.verdict.value for result in verifier.results]
    detected = any(
        result.verdict is Verdict.COMPROMISED for result in verifier.results
    )
    records = []
    if setup.kind == "on-demand":
        for report in service.reports_sent:
            records.extend(report.records)
    else:
        records = list(service.history)
    mp_duration = records[0].duration if records else 0.0
    mp_interruptions = max(
        (record.interruptions for record in records), default=0
    )
    stats = app.task.stats()
    agents = device.malware_agents
    blocked = sum(getattr(agent, "blocked_actions", 0) for agent in agents)

    return ScenarioOutcome(
        mechanism=setup.key,
        adversary=adversary,
        detected=detected,
        verdicts=verdicts,
        mp_duration=mp_duration,
        mp_interruptions=mp_interruptions,
        task_worst_response=stats.worst_response,
        task_deadline_misses=stats.deadline_misses,
        probe=probe,
        malware_blocked_actions=blocked,
        lock_ops=device.mpu.lock_ops + device.mpu.unlock_ops,
    )


@dataclass
class EvaluationMatrix:
    """All scenario outcomes plus the Table 1 distillation."""

    outcomes: Dict[Tuple[str, str], ScenarioOutcome]
    config: ScenarioConfig

    def outcome(self, mechanism: str, adversary: str) -> ScenarioOutcome:
        return self.outcomes[(mechanism, adversary)]

    # -- Table 1 cell derivations ------------------------------------------

    def detects_relocating(self, mechanism: str) -> bool:
        return self.outcome(mechanism, "relocating").detected

    def detects_transient(self, mechanism: str) -> bool:
        return self.outcome(mechanism, "transient").detected

    def false_positive(self, mechanism: str) -> bool:
        return self.outcome(mechanism, "none").detected

    def writable_availability(self, mechanism: str) -> Feature:
        probe = self.outcome(mechanism, "none").probe
        if probe.attempted == 0:
            return Feature.NO
        if probe.fraction >= 0.99:
            return Feature.YES
        if probe.fraction <= 0.01:
            return Feature.NO
        return Feature.PARTIAL

    def interruptibility(self, mechanism: str) -> Feature:
        outcome = self.outcome(mechanism, "none")
        # The critical task preempted MP at least once and never waited
        # anywhere near a full measurement.
        if outcome.mp_interruptions > 0:
            return (
                Feature.YES
                if outcome.task_worst_response
                < 0.05 * max(outcome.mp_duration, 1e-9)
                else Feature.PARTIAL
            )
        return Feature.NO

    def overhead_seconds(self, mechanism: str) -> float:
        outcome = self.outcome(mechanism, "none")
        rounds = max(1, len([v for v in outcome.verdicts]))
        return outcome.mp_duration

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        header = (
            f"{'mechanism':<10} {'reloc':<6} {'trans':<6} {'FP':<4} "
            f"{'writable':<9} {'interrupt':<10} {'mp[s]':<8} "
            f"{'task_worst[ms]':<15} {'consistency (claimed)'}"
        )
        lines = [header, "-" * len(header)]
        for (mechanism, adversary), _ in sorted(self.outcomes.items()):
            pass  # ordering handled below
        seen = []
        for mechanism, _adv in self.outcomes:
            if mechanism not in seen:
                seen.append(mechanism)
        for mechanism in seen:
            none_outcome = self.outcome(mechanism, "none")
            lines.append(
                f"{mechanism:<10} "
                f"{'Y' if self.detects_relocating(mechanism) else 'x':<6} "
                f"{'Y' if self.detects_transient(mechanism) else 'x':<6} "
                f"{'!' if self.false_positive(mechanism) else '-':<4} "
                f"{self.writable_availability(mechanism).mark:<9} "
                f"{self.interruptibility(mechanism).mark:<10} "
                f"{none_outcome.mp_duration:<8.3f} "
                f"{none_outcome.task_worst_response * 1e3:<15.1f} "
                f"{expected_consistency(mechanism)}"
            )
        return "\n".join(lines)

    def against_claims(self) -> List[Tuple[str, str, str, str, bool]]:
        """Compare empirical cells with Table 1's claims.

        Returns ``(mechanism, column, claimed, observed, match)`` rows.
        PARTIAL claims accept either empirical Y or ~.
        """
        rows: List[Tuple[str, str, str, str, bool]] = []

        def feature_match(claim: Feature, observed: Feature) -> bool:
            if claim is Feature.PARTIAL:
                return observed in (Feature.PARTIAL, Feature.YES)
            return claim is observed

        for mechanism in {m for m, _ in self.outcomes}:
            solution = solution_by_key(mechanism)
            if solution is None:
                continue
            reloc = self.detects_relocating(mechanism)
            rows.append(
                (
                    mechanism, "detects_relocating",
                    solution.detects_relocating.mark,
                    "Y" if reloc else "x",
                    feature_match(
                        solution.detects_relocating,
                        Feature.YES if reloc else Feature.NO,
                    ),
                )
            )
            trans = self.detects_transient(mechanism)
            rows.append(
                (
                    mechanism, "detects_transient",
                    solution.detects_transient.mark,
                    "Y" if trans else "x",
                    feature_match(
                        solution.detects_transient,
                        Feature.YES if trans else Feature.NO,
                    ),
                )
            )
            writable = self.writable_availability(mechanism)
            rows.append(
                (
                    mechanism, "writable_availability",
                    solution.writable_availability.mark,
                    writable.mark,
                    feature_match(solution.writable_availability, writable),
                )
            )
            interrupt = self.interruptibility(mechanism)
            rows.append(
                (
                    mechanism, "interruptibility",
                    solution.interruptibility.mark,
                    interrupt.mark,
                    feature_match(solution.interruptibility, interrupt),
                )
            )
        return sorted(rows)


def evaluate_all(
    mechanisms: Optional[List[str]] = None,
    config: Optional[ScenarioConfig] = None,
    adversaries: Tuple[str, ...] = ADVERSARIES,
) -> EvaluationMatrix:
    """Run the full mechanism x adversary matrix."""
    config = config or ScenarioConfig()
    setups = standard_mechanisms()
    keys = mechanisms if mechanisms is not None else list(STANDARD_KEYS)
    outcomes: Dict[Tuple[str, str], ScenarioOutcome] = {}
    for key in keys:
        setup = setups.get(key)
        if setup is None:
            raise ConfigurationError(f"unknown mechanism {key!r}")
        for adversary in adversaries:
            outcomes[(key, adversary)] = run_scenario(
                setup, adversary, config
            )
    return EvaluationMatrix(outcomes=outcomes, config=config)
