"""The paper's contribution layer: reconciling RA with safety-critical
operation.

* :mod:`repro.core.solution` -- the solution landscape as data:
  Table 1's feature matrix and Figure 3's taxonomy;
* :mod:`repro.core.consistency` -- temporal-consistency semantics of
  Figure 4, checked from write logs and measurement audit records;
* :mod:`repro.core.qoa` -- Quality of Attestation (T_M, T_C,
  freshness), Figure 5;
* :mod:`repro.core.scheduler_policy` -- context-aware self-measurement
  scheduling (Section 3.3's compromises);
* :mod:`repro.core.tradeoff` -- the cross-mechanism evaluation harness
  that regenerates Table 1 empirically.
"""

from repro.core.solution import (
    Feature,
    Solution,
    SOLUTIONS,
    solution_table,
    taxonomy_tree,
)
from repro.core.consistency import ConsistencyAnalyzer, ConsistencyVerdict
from repro.core.qoa import QoAParameters, QoATimeline, InfectionEvent
from repro.core.scheduler_policy import (
    FixedSchedule,
    ContextAwareSchedule,
    SlackSchedule,
)
from repro.core.tradeoff import (
    MechanismSetup,
    ScenarioOutcome,
    EvaluationMatrix,
    evaluate_all,
    standard_mechanisms,
)

__all__ = [
    "Feature",
    "Solution",
    "SOLUTIONS",
    "solution_table",
    "taxonomy_tree",
    "ConsistencyAnalyzer",
    "ConsistencyVerdict",
    "QoAParameters",
    "QoATimeline",
    "InfectionEvent",
    "FixedSchedule",
    "ContextAwareSchedule",
    "SlackSchedule",
    "MechanismSetup",
    "ScenarioOutcome",
    "EvaluationMatrix",
    "evaluate_all",
    "standard_mechanisms",
]
