"""Content-hash analysis cache for incremental ``repro lint`` runs.

Two granularities share one JSON file:

* **per module** -- lexical findings plus the whole-program summary,
  keyed by the sha256 of the module's source text.  An unchanged file
  skips parsing and every lexical rule;
* **per project** -- the interprocedural findings, keyed by the hash
  of *all* module hashes.  When no file changed at all, the taint
  fixpoint is skipped too and a warm run reduces to read + hash +
  deserialize.

Both keys are additionally guarded by a *schema hash* covering the
analysis version, the registered rule ids, and the active
:class:`~repro.staticlint.registry.LintConfig` -- upgrading the
analyzer or changing ``--select`` invalidates every entry at once
rather than serving findings a different rule set produced.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.staticlint.findings import Finding
from repro.staticlint.symbols import SUMMARY_VERSION

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def schema_hash(config, rule_ids) -> str:
    material = json.dumps(
        {
            "cache": CACHE_VERSION,
            "summary": SUMMARY_VERSION,
            "rules": sorted(rule_ids),
            "config": repr(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]


class LintCache:
    """Load/serve/update one cache file; counts hits for the bench."""

    def __init__(self, path: str, schema: str) -> None:
        self.path = Path(path)
        self.schema = schema
        self.modules: Dict[str, Dict[str, Any]] = {}
        self.project: Optional[Dict[str, Any]] = None
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("schema") != self.schema
        ):
            return  # stale schema: start empty, overwrite on save
        self.modules = payload.get("modules", {})
        self.project = payload.get("project")

    # -- per-module entries --------------------------------------------

    def get_module(
        self, norm: str, stamp: str
    ) -> Optional[Tuple[List[Finding], Dict[str, Any]]]:
        entry = self.modules.get(norm)
        if entry is None or entry.get("hash") != stamp:
            self.misses += 1
            return None
        self.hits += 1
        findings = [Finding.from_dict(f) for f in entry["findings"]]
        return findings, entry["summary"]

    def put_module(
        self,
        norm: str,
        stamp: str,
        findings: List[Finding],
        summary: Dict[str, Any],
    ) -> None:
        self.modules[norm] = {
            "hash": stamp,
            "findings": [f.to_dict() for f in findings],
            "summary": summary,
        }
        self._dirty = True

    # -- the project-wide entry ----------------------------------------

    def project_key(self, module_hashes: Dict[str, str]) -> str:
        material = json.dumps(sorted(module_hashes.items()))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]

    def get_project(self, key: str) -> Optional[List[Finding]]:
        entry = self.project
        if entry is None or entry.get("hash") != key:
            return None
        return [Finding.from_dict(f) for f in entry["findings"]]

    def put_project(self, key: str, findings: List[Finding]) -> None:
        self.project = {
            "hash": key,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "schema": self.schema,
            "modules": self.modules,
            "project": self.project,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # an unwritable cache degrades to a cold run
        self._dirty = False

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
