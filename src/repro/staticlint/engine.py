"""The analysis driver: parse, run rules, apply suppressions.

One :class:`ModuleContext` per analyzed file carries the parsed tree,
the raw lines, an import-alias table (so ``from time import
perf_counter as pc`` is still seen as ``time.perf_counter``), and the
scoping helpers rules use.  :func:`analyze_source` runs the selected
rules over one module; :func:`analyze_paths` walks files and
directories.

Suppressions
------------
A ``# repro: allow[rule-id]`` comment suppresses matching findings on
its own line; a standalone allow-comment line suppresses the next code
line.  ``allow[rule-a,rule-b]`` lists several rules, ``allow[*]``
suppresses everything on the line.  Suppressed findings are still
reported (marked) but never fail the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import LintConfig, selected_rules

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: pseudo-rule reported for files the parser rejects
PARSE_ERROR_RULE = "parse-error"


@dataclass
class ModuleContext:
    """Everything the rules need to know about one module."""

    path: str  # display path (as passed / found on disk)
    norm: str  # normalized posix path, used for scope matching
    source: str
    lines: List[str]
    tree: ast.AST
    config: LintConfig
    import_map: Dict[str, str] = field(default_factory=dict)

    # -- scoping -------------------------------------------------------

    def in_scope(self, patterns: Sequence[str]) -> bool:
        """True when this module lives under any of ``patterns``."""
        return any(pattern in self.norm for pattern in patterns)

    def is_telemetry_module(self) -> bool:
        return self.in_scope(self.config.telemetry_allowlist)

    # -- name resolution -----------------------------------------------

    def resolve(self, node: ast.AST) -> str:
        """Dotted name of an expression, de-aliased through imports.

        ``pc()`` after ``from time import perf_counter as pc`` resolves
        to ``"time.perf_counter"``; unresolvable expressions (calls on
        call results, subscripts, ...) resolve to ``""``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        root = self.import_map.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted names they import."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:  # relative imports never alias stdlib modules
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def walk_scope(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function bodies.

    Used by rules that reason about one function's control flow (the
    atomicity family): code inside a nested ``def``/``lambda`` runs at
    some other time and must not be attributed to the outer window.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def suppressed_lines(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on them."""
    allowed: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for number, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        rules_here: Set[str] = set()
        if match:
            rules_here = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
        before_comment = line.split("#", 1)[0]
        is_code = bool(before_comment.strip())
        if is_code:
            combined = rules_here | pending
            if combined:
                allowed[number] = allowed.get(number, set()) | combined
            pending = set()
        elif rules_here:
            # standalone allow-comment: applies to the next code line
            pending |= rules_here
    return allowed


def _apply_suppressions(
    findings: List[Finding], allowed: Dict[int, Set[str]]
) -> List[Finding]:
    out = []
    for finding in findings:
        rules = allowed.get(finding.line, ())
        if finding.rule_id in rules or "*" in rules:
            finding = _replace(finding, suppressed=True)
        out.append(finding)
    return out


def _replace(finding: Finding, **changes) -> Finding:
    import dataclasses

    return dataclasses.replace(finding, **changes)


def _number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Disambiguate findings sharing (rule, path, line text)."""
    seen: Dict[Tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule_id)):
        key = (finding.rule_id, finding.path, finding.line_text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(
            _replace(finding, occurrence=index) if index else finding
        )
    return out


# ---------------------------------------------------------------------------
# Analysis entry points
# ---------------------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the selected rules over one module's source text."""
    config = config or LintConfig()
    norm = Path(path).as_posix()
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"could not parse module: {exc.msg}",
                hint="fix the syntax error; unparseable code is unchecked",
                severity=Severity.ERROR,
                line_text=(exc.text or "").strip(),
            )
        ]
    ctx = ModuleContext(
        path=path,
        norm=norm,
        source=source,
        lines=lines,
        tree=tree,
        config=config,
        import_map=build_import_map(tree),
    )
    findings: List[Finding] = []
    for rule in selected_rules(config):
        findings.extend(rule.check(ctx))
    findings = _number_occurrences(findings)
    return _apply_suppressions(findings, suppressed_lines(lines))


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py" and path.exists():
            found.append(path)
    return sorted(set(found))


def analyze_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            analyze_source(
                path.read_text(encoding="utf-8"),
                path=str(path),
                config=config,
            )
        )
    return findings
