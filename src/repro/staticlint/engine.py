"""The analysis driver: parse, run rules, apply suppressions.

One :class:`ModuleContext` per analyzed file carries the parsed tree,
the raw lines, an import-alias table (so ``from time import
perf_counter as pc`` is still seen as ``time.perf_counter``), and the
scoping helpers rules use.  :func:`analyze_source` runs the selected
rules over one module; :func:`analyze_paths` walks files and
directories.

Suppressions
------------
A ``# repro: allow[rule-id]`` comment suppresses matching findings on
its own line; a standalone allow-comment line suppresses the next code
line.  ``allow[rule-a,rule-b]`` lists several rules, ``allow[*]``
suppresses everything on the line.  Suppressed findings are still
reported (marked) but never fail the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import LintConfig, selected_rules

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: pseudo-rule reported for files the parser rejects
PARSE_ERROR_RULE = "parse-error"


@dataclass
class ModuleContext:
    """Everything the rules need to know about one module."""

    path: str  # display path (as passed / found on disk)
    norm: str  # normalized posix path, used for scope matching
    source: str
    lines: List[str]
    tree: ast.AST
    config: LintConfig
    import_map: Dict[str, str] = field(default_factory=dict)

    # -- scoping -------------------------------------------------------

    def in_scope(self, patterns: Sequence[str]) -> bool:
        """True when this module lives under any of ``patterns``."""
        return any(pattern in self.norm for pattern in patterns)

    def is_telemetry_module(self) -> bool:
        return self.in_scope(self.config.telemetry_allowlist)

    # -- name resolution -----------------------------------------------

    def resolve(self, node: ast.AST) -> str:
        """Dotted name of an expression, de-aliased through imports.

        ``pc()`` after ``from time import perf_counter as pc`` resolves
        to ``"time.perf_counter"``; unresolvable expressions (calls on
        call results, subscripts, ...) resolve to ``""``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        root = self.import_map.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class ProjectContext:
    """Everything a whole-program rule sees: every module's summary,
    the call graph index over them, and the raw lines (for snippets
    and suppression handling).  Keyed by each module's display path."""

    summaries: Dict[str, "ModuleSummary"]  # display path -> summary
    index: "ProjectIndex"
    config: LintConfig
    lines: Dict[str, List[str]]  # display path -> source lines

    def path_in_scope(self, path: str, patterns: Sequence[str]) -> bool:
        norm = Path(path).as_posix()
        return any(pattern in norm for pattern in patterns)

    def line_text(self, path: str, line: int) -> str:
        lines = self.lines.get(path, [])
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule,
        path: str,
        line: int,
        col: int,
        message: str,
        trace: Sequence[str] = (),
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding for a whole-program rule at a location."""
        return Finding(
            rule_id=rule.id,
            path=path,
            line=line,
            col=col,
            message=message,
            hint=rule.hint if hint is None else hint,
            severity=rule.severity,
            line_text=self.line_text(path, line),
            trace=tuple(trace),
        )


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted names they import."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:  # relative imports never alias stdlib modules
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def walk_scope(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function bodies.

    Used by rules that reason about one function's control flow (the
    atomicity family): code inside a nested ``def``/``lambda`` runs at
    some other time and must not be attributed to the outer window.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def suppressed_lines(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on them."""
    allowed: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for number, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        rules_here: Set[str] = set()
        if match:
            rules_here = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
        before_comment = line.split("#", 1)[0]
        is_code = bool(before_comment.strip())
        if is_code:
            combined = rules_here | pending
            if combined:
                allowed[number] = allowed.get(number, set()) | combined
            pending = set()
        elif rules_here:
            # standalone allow-comment: applies to the next code line
            pending |= rules_here
    return allowed


def _apply_suppressions(
    findings: List[Finding], allowed: Dict[int, Set[str]]
) -> List[Finding]:
    out = []
    for finding in findings:
        rules = allowed.get(finding.line, ())
        if finding.rule_id in rules or "*" in rules:
            finding = _replace(finding, suppressed=True)
        out.append(finding)
    return out


def _replace(finding: Finding, **changes) -> Finding:
    import dataclasses

    return dataclasses.replace(finding, **changes)


def _number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Disambiguate findings sharing (rule, path, line text)."""
    seen: Dict[Tuple[str, str, str], int] = {}
    out = []
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule_id)):
        key = (finding.rule_id, finding.path, finding.line_text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(
            _replace(finding, occurrence=index) if index else finding
        )
    return out


# ---------------------------------------------------------------------------
# Analysis entry points
# ---------------------------------------------------------------------------


def _parse_module(
    source: str, path: str, config: LintConfig
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    """Parse one module; (context, None) or (None, parse-error)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return None, Finding(
            rule_id=PARSE_ERROR_RULE,
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"could not parse module: {exc.msg}",
            hint="fix the syntax error; unparseable code is unchecked",
            severity=Severity.ERROR,
            line_text=(exc.text or "").strip(),
        )
    return ModuleContext(
        path=path,
        norm=Path(path).as_posix(),
        source=source,
        lines=source.splitlines(),
        tree=tree,
        config=config,
        import_map=build_import_map(tree),
    ), None


def _lexical_findings(ctx: ModuleContext) -> List[Finding]:
    """Run the lexical rules over one parsed module, finished
    (occurrence-numbered and suppression-marked)."""
    findings: List[Finding] = []
    for rule in selected_rules(ctx.config):
        findings.extend(rule.check(ctx))
    findings = _number_occurrences(findings)
    return _apply_suppressions(findings, suppressed_lines(ctx.lines))


def analyze_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the selected lexical rules over one module's source text."""
    config = config or LintConfig()
    ctx, parse_error = _parse_module(source, path, config)
    if parse_error is not None:
        return [parse_error]
    return _lexical_findings(ctx)


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py" and path.exists():
            found.append(path)
    return sorted(set(found))


def analyze_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Run the lexical rules over every ``.py`` file under ``paths``.

    Whole-program rules need the project view; use
    :func:`analyze_project` (or :func:`repro.staticlint.cli.
    build_report`) to run those as well.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            analyze_source(
                path.read_text(encoding="utf-8"),
                path=str(path),
                config=config,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Whole-program analysis
# ---------------------------------------------------------------------------


@dataclass
class ProjectAnalysis:
    """One whole-project run: lexical + interprocedural findings."""

    findings: List[Finding]
    files: List[Path]
    cache_hits: int = 0
    cache_misses: int = 0
    #: set when the summaries/index were materialized (always on a
    #: cold project pass; on a fully-cached run only if requested)
    context: Optional[ProjectContext] = None


def _finish_project_findings(
    findings: List[Finding], lines_by_path: Dict[str, List[str]]
) -> List[Finding]:
    """Occurrence-number and suppression-mark interproc findings."""
    findings = _number_occurrences(findings)
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    out: List[Finding] = []
    for path in sorted(by_path):
        allowed = suppressed_lines(lines_by_path.get(path, []))
        out.extend(_apply_suppressions(by_path[path], allowed))
    return out


def analyze_project(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    cache_path: Optional[str] = None,
    need_context: bool = False,
) -> ProjectAnalysis:
    """Analyze ``paths`` as one project: the lexical rules per module
    plus the whole-program (interprocedural) rules over all of them.

    With ``cache_path``, per-module results are keyed by content hash
    (an unchanged file skips parsing and every lexical rule) and the
    interprocedural findings are keyed by the hash of all module
    hashes (an unchanged *tree* skips the taint fixpoint too).
    ``need_context`` forces the summaries/call-graph index to be
    materialized even on a fully-cached run (``--call-graph``).
    """
    from repro.staticlint.cache import (
        LintCache,
        content_hash,
        schema_hash,
    )
    from repro.staticlint.callgraph import ProjectIndex
    from repro.staticlint.registry import (
        all_rules,
        selected_project_rules,
    )
    from repro.staticlint.symbols import (
        ModuleSummary,
        extract_module_summary,
    )

    config = config or LintConfig()
    selected_rules(config)  # fail fast on unknown --select ids
    files = iter_python_files(paths)
    roots = sorted(
        Path(entry).as_posix() for entry in paths if Path(entry).is_dir()
    )
    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache(
            cache_path,
            schema_hash(config, [r.id for r in all_rules()]),
        )

    module_findings: List[Finding] = []
    summaries_raw: Dict[str, Dict] = {}  # display path -> summary dict
    lines_by_path: Dict[str, List[str]] = {}
    hashes: Dict[str, str] = {}
    for file in files:
        path = str(file)
        norm = file.as_posix()
        source = file.read_text(encoding="utf-8")
        stamp = content_hash(source)
        hashes[norm] = stamp
        lines_by_path[path] = source.splitlines()
        entry = cache.get_module(norm, stamp) if cache else None
        if entry is not None:
            findings, summary_dict = entry
        else:
            ctx, parse_error = _parse_module(source, path, config)
            if parse_error is not None:
                findings = [parse_error]
                summary_dict = ModuleSummary(
                    path=path, module="<unparsed>"
                ).to_dict()
            else:
                findings = _lexical_findings(ctx)
                summary_dict = extract_module_summary(
                    ctx.tree, path, roots=roots,
                    import_map=ctx.import_map,
                ).to_dict()
            if cache is not None:
                cache.put_module(norm, stamp, findings, summary_dict)
        module_findings.extend(findings)
        summaries_raw[path] = summary_dict

    project_key = cache.project_key(hashes) if cache else ""
    project_findings = (
        cache.get_project(project_key) if cache else None
    )
    context: Optional[ProjectContext] = None
    if project_findings is None or need_context:
        summaries = {
            path: ModuleSummary.from_dict(raw)
            for path, raw in summaries_raw.items()
        }
        context = ProjectContext(
            summaries=summaries,
            index=ProjectIndex.build(list(summaries.values())),
            config=config,
            lines=lines_by_path,
        )
        if project_findings is None:
            raw_findings: List[Finding] = []
            for prule in selected_project_rules(config):
                raw_findings.extend(prule.check(context))
            project_findings = _finish_project_findings(
                raw_findings, lines_by_path
            )
            if cache is not None:
                cache.put_project(project_key, project_findings)
    if cache is not None:
        cache.save()
    return ProjectAnalysis(
        findings=module_findings + project_findings,
        files=files,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(files),
        context=context,
    )
