"""Worklist-based interprocedural taint/dataflow engine.

A :class:`TaintSpec` declares a rule family's *sources* (calls whose
results carry the hazardous value, or names that are hazardous on
entry), *sinks* (calls/f-strings the value must not reach), and
*sanitizers* (calls that launder the value -- their result is clean
and nothing propagates through them).

The engine runs a classic context-insensitive worklist to fixpoint
over the project call graph:

* inside a function, taint follows the value-flow edges of the
  :class:`~repro.staticlint.symbols.FunctionInfo` summary;
* a call to a *project* function maps tainted arguments onto the
  callee's parameters (positionally) and maps the callee's tainted
  return value back onto the call result;
* a call to an *unknown* (external) function conservatively taints its
  result when any argument is tainted ("taint-through");
* attribute slots (``attr:name`` nodes) are a single project-global
  namespace, so ``self._key = material`` in one method taints
  ``self._key`` reads everywhere -- coarse, but errs toward reporting.

Every tainted node carries a *trace*: the chain of source / call /
return steps that first reached it.  Traces are what ``repro lint
--explain`` prints, and they are kept minimal (first discovery wins;
intra-function hops add no step) so the path stays readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.staticlint.callgraph import ProjectIndex
from repro.staticlint.symbols import CallRecord, FunctionInfo

#: (function, call) -> description of why it matches, or None
CallMatcher = Callable[[FunctionInfo, CallRecord], Optional[str]]
#: function -> [(node, description), ...] of entry taint
NameSourceFn = Callable[[FunctionInfo], List[Tuple[str, str]]]


def _no_call_match(
    func: FunctionInfo, call: CallRecord
) -> Optional[str]:
    return None


def _no_name_sources(func: FunctionInfo) -> List[Tuple[str, str]]:
    return []


def _project_all(attr: str) -> bool:
    return True


def _proj_parts(node: str) -> Tuple[List[str], str]:
    """Split a ``proj:`` chain into its attr names and terminal base."""
    attrs: List[str] = []
    while node.startswith("proj:"):
        attr, node = node[len("proj:"):].split(":", 1)
        attrs.append(attr)
    return attrs, node


def dotted_matches(name: str, suffixes: Sequence[str]) -> bool:
    """True when ``name`` equals or dotted-suffix-matches a suffix."""
    return any(
        name == suffix or name.endswith("." + suffix)
        for suffix in suffixes
    )


def call_matcher(
    dotted: Sequence[str] = (),
    terminals: Sequence[str] = (),
    describe: str = "{name}()",
) -> CallMatcher:
    """Build a :data:`CallMatcher` from dotted/terminal name lists."""

    def match(func: FunctionInfo, call: CallRecord) -> Optional[str]:
        name = call.resolved or call.terminal
        if (dotted and dotted_matches(call.resolved, dotted)) or (
            terminals and call.terminal in terminals
        ):
            return describe.format(name=name)
        return None

    return match


@dataclass
class TaintSpec:
    """Sources, sinks and sanitizers for one interprocedural rule."""

    rule_id: str
    call_sources: CallMatcher = _no_call_match
    name_sources: NameSourceFn = field(default=_no_name_sources)
    sinks: CallMatcher = _no_call_match
    sanitizers: CallMatcher = _no_call_match
    #: when set, tainted f-string interpolations are sinks too,
    #: reported with this description
    fstring_sink: Optional[str] = None
    #: does taint flow through a ``.<attr>`` read off a tainted base?
    #: The default says yes (conservative); the crypto rule narrows it
    #: to secret-named fields so ``prover.history`` stays clean while
    #: ``prover.key`` does not
    projection: Callable[[str], bool] = _project_all


@dataclass(frozen=True)
class TaintHit:
    """One tainted value reaching one sink."""

    function: FunctionInfo
    line: int
    col: int
    sink_desc: str
    trace: Tuple[str, ...]


class TaintEngine:
    """Runs one :class:`TaintSpec` over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex, spec: TaintSpec) -> None:
        self.index = index
        self.spec = spec
        #: qual -> node -> first-discovered trace
        self.taint: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        #: attribute name -> trace (project-global namespace)
        self.attr_taint: Dict[str, Tuple[str, ...]] = {}
        #: attribute name -> quals mentioning it (for re-enqueueing)
        self._attr_users: Dict[str, Set[str]] = {}
        #: qual -> nodes its body mentions (memoized)
        self._mentioned: Dict[str, Set[str]] = {}
        self._queue: List[str] = []
        self._queued: Set[str] = set()
        self._callers: Dict[str, List[str]] = {}

    # -- bookkeeping ---------------------------------------------------

    def _enqueue(self, qual: str) -> None:
        if qual not in self._queued:
            self._queued.add(qual)
            self._queue.append(qual)

    def _mark(
        self, qual: str, node: str, trace: Tuple[str, ...]
    ) -> bool:
        """Taint ``node`` in ``qual``; True when newly tainted."""
        per_func = self.taint.setdefault(qual, {})
        if node in per_func:
            return False
        per_func[node] = trace
        if node.startswith("attr:"):
            attr = node[len("attr:"):]
            if attr not in self.attr_taint:
                self.attr_taint[attr] = trace
                for user in sorted(self._attr_users.get(attr, ())):
                    self._enqueue(user)
        return True

    def _mentioned_nodes(self, func: FunctionInfo) -> Set[str]:
        cached = self._mentioned.get(func.qual)
        if cached is not None:
            return cached
        nodes: Set[str] = set()
        for src, dst in func.edges:
            nodes.add(src)
            nodes.add(dst)
        for call in func.calls:
            for deps in call.args:
                nodes.update(deps)
            nodes.update(call.recv)
        for _line, _col, deps in func.fstrings:
            nodes.update(deps)
        self._mentioned[func.qual] = nodes
        return nodes

    def _effective(self, func: FunctionInfo) -> Dict[str, Tuple[str, ...]]:
        """Local taint plus globally-tainted attrs this body mentions."""
        per_func = dict(self.taint.get(func.qual, {}))
        for node in self._mentioned_nodes(func):
            if node.startswith("attr:") and node not in per_func:
                attr = node[len("attr:"):]
                if attr in self.attr_taint:
                    per_func[node] = self.attr_taint[attr]
        return per_func

    def _eval_proj(
        self, node: str, tainted: Dict[str, Tuple[str, ...]]
    ) -> Optional[Tuple[str, ...]]:
        """Trace for a ``proj:<attr>:<base>`` read, or None if clean."""
        attr, rest = node[len("proj:"):].split(":", 1)
        slot = self.attr_taint.get(attr)
        if slot is not None:
            return slot  # someone stored tainted material in .<attr>
        if not self.spec.projection(attr):
            return None
        if rest.startswith("proj:"):
            return self._eval_proj(rest, tainted)
        if rest.startswith("attr:"):
            return self.attr_taint.get(rest[len("attr:"):])
        return tainted.get(rest)

    def _closure(
        self, func: FunctionInfo, tainted: Dict[str, Tuple[str, ...]]
    ) -> Dict[str, Tuple[str, ...]]:
        """Propagate along intra-function value-flow edges.

        Interleaves edge propagation with lazy evaluation of the
        projection reads the body mentions, until neither makes
        progress.
        """
        adjacency = func.successors()
        proj_nodes = [
            node for node in self._mentioned_nodes(func)
            if node.startswith("proj:")
        ]
        queue = sorted(tainted)
        while True:
            while queue:
                node = queue.pop(0)
                trace = tainted[node]
                for nxt in sorted(adjacency.get(node, ())):
                    if nxt not in tainted:
                        tainted[nxt] = trace
                        queue.append(nxt)
            progressed = False
            for node in proj_nodes:
                if node in tainted:
                    continue
                trace = self._eval_proj(node, tainted)
                if trace is not None:
                    tainted[node] = trace
                    queue.append(node)
                    progressed = True
            if not progressed:
                return tainted

    @staticmethod
    def _step(func: FunctionInfo, line: int, text: str) -> str:
        name = f"{func.cls}.{func.name}" if func.cls else func.name
        return f"{func.path}:{line}: {name}(): {text}"

    # -- the worklist --------------------------------------------------

    def run(self) -> List[TaintHit]:
        functions = [
            self.index.functions[qual]
            for qual in sorted(self.index.functions)
        ]
        self._callers = self.index.callers_of()
        for func in functions:
            for node in self._mentioned_nodes(func):
                if node.startswith("attr:"):
                    self._attr_users.setdefault(
                        node[len("attr:"):], set()
                    ).add(func.qual)
                elif node.startswith("proj:"):
                    # a projection read re-evaluates when its attr
                    # slot (or the scoped slot at its base) taints
                    attrs, base = _proj_parts(node)
                    for attr in attrs:
                        self._attr_users.setdefault(attr, set()).add(
                            func.qual
                        )
                    if base.startswith("attr:"):
                        self._attr_users.setdefault(
                            base[len("attr:"):], set()
                        ).add(func.qual)
        # seed
        for func in functions:
            for call in func.calls:
                desc = self.spec.call_sources(func, call)
                if desc is not None:
                    trace = (self._step(
                        func, call.line, f"source: {desc}"
                    ),)
                    if self._mark(func.qual, call.node, trace):
                        self._enqueue(func.qual)
            for node, desc in self.spec.name_sources(func):
                trace = (self._step(
                    func, func.line, f"source: {desc}"
                ),)
                if self._mark(func.qual, node, trace):
                    self._enqueue(func.qual)
        # fixpoint
        steps = 0
        limit = 50 * max(1, len(functions))
        while self._queue and steps < limit:
            steps += 1
            qual = self._queue.pop(0)
            self._queued.discard(qual)
            self._process(self.index.functions[qual])
        return self._collect(functions)

    def _process(self, func: FunctionInfo) -> None:
        tainted = self._closure(func, self._effective(func))
        # persist closure results (incl. attr writes) + detect new ret
        ret_was_tainted = "ret" in self.taint.get(func.qual, {})
        for node, trace in sorted(tainted.items()):
            self._mark(func.qual, node, trace)
        if "ret" in tainted and not ret_was_tainted:
            for caller in self._callers.get(func.qual, ()):
                self._enqueue(caller)
        for call in func.calls:
            if self.spec.sanitizers(func, call) is not None:
                continue
            callee = self.index.resolve_call(func, call)
            arg_trace: Optional[Tuple[str, ...]] = None
            tainted_params: List[Tuple[str, Tuple[str, ...]]] = []
            for position, deps in enumerate(call.args):
                hit = next(
                    (d for d in sorted(deps) if d in tainted), None
                )
                if hit is None:
                    continue
                if arg_trace is None:
                    arg_trace = tainted[hit]
                if callee is not None and position < len(callee.params):
                    tainted_params.append(
                        (callee.params[position], tainted[hit])
                    )
            if arg_trace is None:
                # a tainted receiver taints an unknown call's result
                # too (``secret.hex()``); known callees are governed
                # by their own summaries instead
                recv_hit = next(
                    (d for d in sorted(call.recv) if d in tainted),
                    None,
                )
                if recv_hit is not None:
                    arg_trace = tainted[recv_hit]
            if callee is not None:
                callee_name = (
                    f"{callee.cls}.{callee.name}" if callee.cls
                    else callee.name
                )
                for param, trace in tainted_params:
                    step = self._step(
                        func, call.line,
                        f"passes tainted value into {callee_name}()",
                    )
                    if self._mark(
                        callee.qual, f"param:{param}", trace + (step,)
                    ):
                        self._enqueue(callee.qual)
                ret_trace = self.taint.get(callee.qual, {}).get("ret")
                if ret_trace is not None:
                    step = self._step(
                        func, call.line,
                        f"receives tainted return value from "
                        f"{callee_name}()",
                    )
                    if self._mark(
                        func.qual, call.node, ret_trace + (step,)
                    ):
                        self._enqueue(func.qual)
            elif arg_trace is not None:
                # unknown callee: taint flows through to the result
                if self._mark(func.qual, call.node, arg_trace):
                    self._enqueue(func.qual)

    # -- sinks ---------------------------------------------------------

    def _collect(
        self, functions: Sequence[FunctionInfo]
    ) -> List[TaintHit]:
        hits: List[TaintHit] = []
        for func in functions:
            tainted = self._closure(func, self._effective(func))
            if not tainted:
                continue
            for call in func.calls:
                desc = self.spec.sinks(func, call)
                if desc is None:
                    continue
                if self.spec.sanitizers(func, call) is not None:
                    continue
                hit = None
                for deps in call.args:
                    hit = next(
                        (d for d in sorted(deps) if d in tainted), None
                    )
                    if hit is not None:
                        break
                if hit is None:
                    continue
                trace = tainted[hit] + (self._step(
                    func, call.line, f"reaches sink {desc}"
                ),)
                hits.append(TaintHit(
                    function=func, line=call.line, col=call.col,
                    sink_desc=desc, trace=trace,
                ))
            if self.spec.fstring_sink is not None:
                for line, col, deps in func.fstrings:
                    hit = next(
                        (d for d in sorted(deps) if d in tainted), None
                    )
                    if hit is None:
                        continue
                    trace = tainted[hit] + (self._step(
                        func, line,
                        f"reaches sink {self.spec.fstring_sink}",
                    ),)
                    hits.append(TaintHit(
                        function=func, line=line, col=col,
                        sink_desc=self.spec.fstring_sink, trace=trace,
                    ))
        hits.sort(key=lambda h: (h.function.path, h.line, h.col))
        return hits


def run_taint(index: ProjectIndex, spec: TaintSpec) -> List[TaintHit]:
    """Convenience wrapper: build, run, collect."""
    return TaintEngine(index, spec).run()
