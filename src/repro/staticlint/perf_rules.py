"""Performance rules.

The measurement hot loop is the repo's wall-clock center of gravity:
every mechanism in Table 1 re-walks prover memory, and fleet campaigns
multiply that by thousands of runs.  :mod:`repro.perf.digest_cache`
exists so unchanged blocks are hashed once -- but only call sites that
route through it benefit.  The ``perf-uncached-digest`` rule flags the
anti-pattern of hashing freshly read block contents directly
(``audit_hash(memory.read_block(i))`` and friends): on a traversal
path this re-pays the read copy and digest for bytes whose generation
has not changed.  Call sites that are deliberately cache-free -- cache
*misses*, one-shot reference-image builds, verifier-side recomputation
-- carry a ``# repro: allow[perf-uncached-digest]`` suppression with
the justification inline.

The ``perf-unbounded-queue`` rule guards the other wall-clock (and
memory) hazard the verifier service introduced: per-message
accumulation on a hot path.  Inside :data:`LintConfig.queue_scope`
(the service and fleet packages, where one code path runs once per
report across thousand-prover storms) a ``deque()`` without ``maxlen``
or a ``self.x.append()`` with no visible bound in the same function
grows without limit under load.  Deliberate accumulators -- the
verdict ledger itself, per-report latency samples -- carry a
``# repro: allow[perf-unbounded-queue]`` suppression at the growth
site.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.staticlint.engine import ModuleContext, walk_scope
from repro.staticlint.findings import Severity
from repro.staticlint.registry import get_rule, rule

#: content-digest entry points whose input may be cacheable
_HASH_NAMES = {"audit_hash", "content_fingerprint", "hmac_digest"}
#: block-content producers: hashing their output re-derives what a
#: generation-keyed cache entry already holds
_SOURCE_NAMES = {"read_block", "benign_block"}


def _called_name(call: ast.Call) -> str:
    """The terminal name of a call target (``f`` or ``obj.f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_hashlib_call(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "hashlib"
    )


def _contains_source_call(node: ast.AST, tainted: Set[str]) -> bool:
    """True when the expression reads block contents, directly or via a
    name assigned from a block read in the same function body."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _called_name(sub) in _SOURCE_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def _tainted_names(func: ast.AST) -> Set[str]:
    """Names assigned (one level, function scope) from a block read."""
    tainted: Set[str] = set()
    for node in walk_scope(func):
        if not isinstance(node, ast.Assign):
            continue
        has_source = any(
            isinstance(sub, ast.Call)
            and _called_name(sub) in _SOURCE_NAMES
            for sub in ast.walk(node.value)
        )
        if not has_source:
            continue
        for target in node.targets:
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    tainted.add(name.id)
    return tainted


def _hash_calls(func: ast.AST) -> List[ast.Call]:
    calls = []
    for node in walk_scope(func):
        if isinstance(node, ast.Call) and (
            _called_name(node) in _HASH_NAMES or _is_hashlib_call(node)
        ):
            calls.append(node)
    return calls


@rule(
    id="perf-uncached-digest",
    family="performance",
    severity=Severity.WARNING,
    summary="block contents read and hashed without the digest cache",
    rationale=(
        "Measurement traversals dominate wall clock, and most re-visit "
        "blocks whose generation counter has not changed since the "
        "previous round.  Hashing the output of read_block()/"
        "benign_block() directly re-pays the content copy and the "
        "digest for bytes the generation-keyed DigestCache already "
        "identifies; at ERASMUS/fleet scale that is the difference "
        "between seconds and minutes of pure reproduction overhead."
    ),
    hint=(
        "consult repro.perf.digest_cache.DigestCache keyed on "
        "(block, generation, algorithm, key_fingerprint) before "
        "hashing, or suppress with "
        "`# repro: allow[perf-uncached-digest]` where the call is "
        "deliberately cache-free (cache-miss fill, one-shot reference "
        "build, verifier-side recomputation)"
    ),
)
def check_uncached_digest(ctx: ModuleContext) -> Iterable:
    this = get_rule("perf-uncached-digest")
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        hash_calls = _hash_calls(func)
        if not hash_calls:
            continue
        tainted = _tainted_names(func)
        for call in hash_calls:
            if any(
                _contains_source_call(arg, tainted) for arg in call.args
            ):
                yield this.finding(
                    ctx, call,
                    f"{func.name}() hashes freshly read block contents "
                    f"via {_called_name(call) or 'hashlib'}() without "
                    f"consulting the digest cache",
                )


#: attribute mutators that grow a collection
_GROW_NAMES = {"append", "extend", "appendleft", "extendleft"}
#: attribute mutators that shrink/drain one -- evidence of a bound
_DRAIN_NAMES = {"pop", "popleft", "popitem", "clear"}


def _self_attr(node: ast.AST) -> str:
    """``"x"`` for a ``self.x`` expression, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _bounded_attrs(func: ast.AST) -> Set[str]:
    """Attributes with bound evidence in this function scope: a
    ``len(self.x)`` capacity check, a drain call, or a slice-trim
    assignment (``self.x[:] = ...`` / ``del self.x[...]``)."""
    bounded: Set[str] = set()
    for node in walk_scope(func):
        if isinstance(node, ast.Call):
            name = _called_name(node)
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and node.args
            ):
                attr = _self_attr(node.args[0])
                if attr:
                    bounded.add(attr)
            elif name in _DRAIN_NAMES and isinstance(
                node.func, ast.Attribute
            ):
                attr = _self_attr(node.func.value)
                if attr:
                    bounded.add(attr)
        elif isinstance(node, (ast.Delete, ast.Assign)):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                    if attr:
                        bounded.add(attr)
    return bounded


def _deque_without_maxlen(ctx: ModuleContext, call: ast.Call) -> bool:
    if ctx.resolve(call.func) not in ("collections.deque", "deque"):
        return False
    for keyword in call.keywords:
        if keyword.arg == "maxlen" and not (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is None
        ):
            return False
    # positional form deque(iterable, maxlen)
    return len(call.args) < 2


@rule(
    id="perf-unbounded-queue",
    family="performance",
    severity=Severity.WARNING,
    summary="hot-path accumulation without a capacity bound",
    rationale=(
        "The verifier service and the fleet layer run once per report "
        "or per run: a thousand-prover thundering herd pushes "
        "thousands of messages through a single code path in one sim "
        "second.  A deque() without maxlen, or an append onto a "
        "self-attribute with no visible bound, grows without limit "
        "under exactly the load the service exists to absorb -- the "
        "queueing analogue of the unbounded-buffer bugs the paper's "
        "admission-control discussion warns about.  Bounds belong "
        "where the growth happens: admission checks, maxlen "
        "backstops, ring trims."
    ),
    hint=(
        "bound the structure (deque(maxlen=...), a len() admission "
        "check, or a drain/trim in the same function), or suppress a "
        "deliberate accumulator with "
        "`# repro: allow[perf-unbounded-queue]` and the justification "
        "inline (run artifacts like the verdict ledger qualify; "
        "per-message scratch does not)"
    ),
)
def check_unbounded_queue(ctx: ModuleContext) -> Iterable:
    if not ctx.in_scope(ctx.config.queue_scope):
        return
    this = get_rule("perf-unbounded-queue")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _deque_without_maxlen(ctx, node):
            yield this.finding(
                ctx, node,
                "deque() constructed without a maxlen capacity bound",
            )
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        bounded = _bounded_attrs(func)
        for node in walk_scope(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _called_name(node) in _GROW_NAMES
            ):
                continue
            attr = _self_attr(node.func.value)
            if attr and attr not in bounded:
                yield this.finding(
                    ctx, node,
                    f"{func.name}() grows self.{attr} per call with no "
                    f"visible capacity bound in scope",
                )
