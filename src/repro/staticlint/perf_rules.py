"""Performance rules.

The measurement hot loop is the repo's wall-clock center of gravity:
every mechanism in Table 1 re-walks prover memory, and fleet campaigns
multiply that by thousands of runs.  :mod:`repro.perf.digest_cache`
exists so unchanged blocks are hashed once -- but only call sites that
route through it benefit.  The ``perf-uncached-digest`` rule flags the
anti-pattern of hashing freshly read block contents directly
(``audit_hash(memory.read_block(i))`` and friends): on a traversal
path this re-pays the read copy and digest for bytes whose generation
has not changed.  Call sites that are deliberately cache-free -- cache
*misses*, one-shot reference-image builds, verifier-side recomputation
-- carry a ``# repro: allow[perf-uncached-digest]`` suppression with
the justification inline.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.staticlint.engine import ModuleContext, walk_scope
from repro.staticlint.findings import Severity
from repro.staticlint.registry import get_rule, rule

#: content-digest entry points whose input may be cacheable
_HASH_NAMES = {"audit_hash", "content_fingerprint", "hmac_digest"}
#: block-content producers: hashing their output re-derives what a
#: generation-keyed cache entry already holds
_SOURCE_NAMES = {"read_block", "benign_block"}


def _called_name(call: ast.Call) -> str:
    """The terminal name of a call target (``f`` or ``obj.f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_hashlib_call(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "hashlib"
    )


def _contains_source_call(node: ast.AST, tainted: Set[str]) -> bool:
    """True when the expression reads block contents, directly or via a
    name assigned from a block read in the same function body."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _called_name(sub) in _SOURCE_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def _tainted_names(func: ast.AST) -> Set[str]:
    """Names assigned (one level, function scope) from a block read."""
    tainted: Set[str] = set()
    for node in walk_scope(func):
        if not isinstance(node, ast.Assign):
            continue
        has_source = any(
            isinstance(sub, ast.Call)
            and _called_name(sub) in _SOURCE_NAMES
            for sub in ast.walk(node.value)
        )
        if not has_source:
            continue
        for target in node.targets:
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    tainted.add(name.id)
    return tainted


def _hash_calls(func: ast.AST) -> List[ast.Call]:
    calls = []
    for node in walk_scope(func):
        if isinstance(node, ast.Call) and (
            _called_name(node) in _HASH_NAMES or _is_hashlib_call(node)
        ):
            calls.append(node)
    return calls


@rule(
    id="perf-uncached-digest",
    family="performance",
    severity=Severity.WARNING,
    summary="block contents read and hashed without the digest cache",
    rationale=(
        "Measurement traversals dominate wall clock, and most re-visit "
        "blocks whose generation counter has not changed since the "
        "previous round.  Hashing the output of read_block()/"
        "benign_block() directly re-pays the content copy and the "
        "digest for bytes the generation-keyed DigestCache already "
        "identifies; at ERASMUS/fleet scale that is the difference "
        "between seconds and minutes of pure reproduction overhead."
    ),
    hint=(
        "consult repro.perf.digest_cache.DigestCache keyed on "
        "(block, generation, algorithm, key_fingerprint) before "
        "hashing, or suppress with "
        "`# repro: allow[perf-uncached-digest]` where the call is "
        "deliberately cache-free (cache-miss fill, one-shot reference "
        "build, verifier-side recomputation)"
    ),
)
def check_uncached_digest(ctx: ModuleContext) -> Iterable:
    this = get_rule("perf-uncached-digest")
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        hash_calls = _hash_calls(func)
        if not hash_calls:
            continue
        tainted = _tainted_names(func)
        for call in hash_calls:
            if any(
                _contains_source_call(arg, tainted) for arg in call.args
            ):
                yield this.finding(
                    ctx, call,
                    f"{func.name}() hashes freshly read block contents "
                    f"via {_called_name(call) or 'hashlib'}() without "
                    f"consulting the digest cache",
                )
