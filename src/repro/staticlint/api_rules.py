"""API-migration rules.

Deprecated surfaces are removed in two steps: the old names first
survive as warning shims, then disappear once every caller is
migrated.  The shims make the transition safe but also make backslides
silent -- a new call site only warns once at runtime, and only on paths
a test actually exercises.  These rules close that gap statically:
referencing a shim anywhere outside its defining module is a lint
finding, so the migration ratchet cannot slip.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticlint.engine import ModuleContext
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import get_rule, rule

#: the pre-``enroll`` Verifier registry trio (kept as warning shims)
DEPRECATED_REGISTER_METHODS = (
    "register_device",
    "register_from_device",
    "register_signing_identity",
)


@rule(
    id="api-deprecated-register",
    family="api",
    severity=Severity.ERROR,
    summary="call to a deprecated Verifier.register* shim",
    rationale=(
        "Verifier.register_device / register_from_device / "
        "register_signing_identity were collapsed into "
        "Verifier.enroll(device, signing=...); the old names survive "
        "only as DeprecationWarning shims scheduled for removal, and a "
        "new call site would warn once at runtime instead of failing "
        "review."
    ),
    hint=(
        "call Verifier.enroll(device) (pass signing=... to attach a "
        "signing identity, or name plus key=/reference= to enroll "
        "without a device object)"
    ),
)
def check_deprecated_register(ctx: ModuleContext) -> Iterable[Finding]:
    if ctx.in_scope(ctx.config.deprecated_api_allowlist):
        return
    this = get_rule("api-deprecated-register")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in DEPRECATED_REGISTER_METHODS
        ):
            yield this.finding(
                ctx, node,
                f".{func.attr}() is a deprecated shim for "
                "Verifier.enroll()",
            )
