"""Rule registry: declarative metadata plus an AST check function.

Rules self-register at import time via :func:`rule`; the engine runs
every registered (and selected) rule over each parsed module.  Each
rule carries the severity, a one-line summary, the paper-derived
rationale (surfaced by ``repro lint --list-rules`` and the docs), and
the fix hint shown next to every finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.staticlint.findings import Finding, Severity

#: a lexical check takes one module context and yields findings; a
#: whole-program check takes the :class:`~repro.staticlint.engine.
#: ProjectContext` spanning every analyzed module
CheckFn = Callable[["ModuleContext"], Iterable[Finding]]


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs for the rule set.

    Paths are matched as substrings of the module's normalized posix
    path, so defaults like ``repro/sim/`` work from any checkout root.
    """

    #: the only modules allowed to read wall clocks (telemetry sources)
    telemetry_allowlist: Tuple[str, ...] = ("repro/fleet/clock.py",)
    #: packages whose components must take an explicit seeded RNG
    seeded_random_scope: Tuple[str, ...] = (
        "repro/sim/",
        "repro/ra/",
        "repro/malware/",
        "repro/apps/",
        "repro/swarm/",
    )
    #: event-scheduling paths where set iteration breaks trace parity
    scheduling_scope: Tuple[str, ...] = ("repro/sim/", "repro/ra/")
    #: the crypto package: DRBG only, never the random module
    crypto_scope: Tuple[str, ...] = ("repro/crypto/",)
    #: the only modules allowed to send ``att_*`` protocol messages
    #: directly -- everything else must go through the retry layer
    #: (``send_report`` / ``OnDemandVerifier``)
    retry_layer_allowlist: Tuple[str, ...] = (
        "repro/ra/service.py",
        "repro/resilience/",
    )
    #: service/fleet hot paths where per-message accumulation must
    #: carry a visible capacity bound (admission control, ring trim)
    queue_scope: Tuple[str, ...] = (
        "repro/vserver/",
        "repro/fleet/",
    )
    #: modules allowed to reference deprecated API shims (the module
    #: that defines them, so its docstrings/tests stay honest)
    deprecated_api_allowlist: Tuple[str, ...] = ("repro/ra/verifier.py",)
    #: subset of rule ids to run (None = all registered rules)
    select: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    #: "determinism" | "crypto" | "atomicity" | "observability"
    #: | "performance"
    family: str
    severity: Severity
    summary: str
    rationale: str
    hint: str
    check: CheckFn = field(compare=False)
    #: True for interprocedural rules run once over the whole project
    #: (their check receives a ProjectContext, not a ModuleContext)
    whole_program: bool = False

    def finding(
        self,
        ctx: "ModuleContext",
        node,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding for an AST node with this rule's metadata."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        text = ""
        if 1 <= line <= len(ctx.lines):
            text = ctx.lines[line - 1].strip()
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            severity=self.severity,
            line_text=text,
        )


_REGISTRY: Dict[str, Rule] = {}


def rule(
    id: str,
    family: str,
    severity: Severity,
    summary: str,
    rationale: str,
    hint: str,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering ``check`` under the given metadata."""

    def decorate(check: CheckFn) -> CheckFn:
        if id in _REGISTRY:
            raise ConfigurationError(f"duplicate rule id {id!r}")
        _REGISTRY[id] = Rule(
            id=id,
            family=family,
            severity=severity,
            summary=summary,
            rationale=rationale,
            hint=hint,
            check=check,
        )
        return check

    return decorate


def project_rule(
    id: str,
    family: str,
    severity: Severity,
    summary: str,
    rationale: str,
    hint: str,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a whole-program (interprocedural) rule.

    The decorated check receives the :class:`~repro.staticlint.engine.
    ProjectContext` built over every analyzed module and yields
    findings anywhere in the project.
    """

    def decorate(check: CheckFn) -> CheckFn:
        if id in _REGISTRY:
            raise ConfigurationError(f"duplicate rule id {id!r}")
        _REGISTRY[id] = Rule(
            id=id,
            family=family,
            severity=severity,
            summary=summary,
            rationale=rationale,
            hint=hint,
            check=check,
            whole_program=True,
        )
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by family then id."""
    _load_rule_modules()
    return sorted(_REGISTRY.values(), key=lambda r: (r.family, r.id))


def get_rule(rule_id: str) -> Rule:
    _load_rule_modules()
    found = _REGISTRY.get(rule_id)
    if found is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown rule id {rule_id!r}; known: {known}"
        )
    return found


def selected_rules(config: LintConfig) -> List[Rule]:
    """The lexical rules a per-module pass executes."""
    return [r for r in _selected(config) if not r.whole_program]


def selected_project_rules(config: LintConfig) -> List[Rule]:
    """The whole-program rules the project pass executes."""
    return [r for r in _selected(config) if r.whole_program]


def _selected(config: LintConfig) -> List[Rule]:
    rules = all_rules()
    if config.select is None:
        return rules
    chosen = {get_rule(rule_id).id for rule_id in config.select}
    return [r for r in rules if r.id in chosen]


def override_severity(rule_id: str, severity: Severity) -> None:
    """Re-register a rule at a different severity (config hook)."""
    _REGISTRY[rule_id] = replace(get_rule(rule_id), severity=severity)


def _load_rule_modules() -> None:
    """Import the rule modules so their decorators run (idempotent)."""
    from repro.staticlint import (  # noqa: F401
        api_rules,
        atomicity,
        crypto_rules,
        determinism,
        obs_rules,
        perf_rules,
        taint_rules,
    )
