"""Whole-program (interprocedural) rules.

These rules close the laundering gap the lexical families leave open:
a wall-clock read wrapped in a helper, a DRBG key threaded through two
calls into a log line, a ``sim.schedule`` buried in a callee of an
``Atomic(True)`` window, a span begun in a helper and never ended by
the caller.  Each runs once over the :class:`~repro.staticlint.engine.
ProjectContext` (summaries + call graph) instead of per module, and
each finding carries the source->sink ``trace`` that ``repro lint
--explain`` prints.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.staticlint.dataflow import (
    TaintSpec,
    call_matcher,
    dotted_matches,
    run_taint,
)
from repro.staticlint.determinism import WALL_CLOCK_CALLS
from repro.staticlint.engine import ProjectContext
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import get_rule, project_rule
from repro.staticlint.symbols import CallRecord, FunctionInfo

_TOKEN_RE = re.compile(r"[^a-z0-9]+")


def _tokens(name: str) -> Set[str]:
    return {t for t in _TOKEN_RE.split(name.lower()) if t}


def _display(func: FunctionInfo) -> str:
    return f"{func.cls}.{func.name}" if func.cls else func.name


# ---------------------------------------------------------------------------
# det-taint-flow
# ---------------------------------------------------------------------------

#: wall-clock reads (the repro.fleet.clock allowlist's own sources)
#: plus unseeded/os-entropy randomness
_NONDET_SOURCES: Tuple[str, ...] = WALL_CLOCK_CALLS + (
    "random.random",
    "random.uniform",
    "random.randint",
    "random.randrange",
    "random.getrandbits",
    "random.shuffle",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
)

#: deterministic artifacts: the event queue, content digests, and the
#: canonical JSONL writers
_DET_SINK_TERMINALS: Tuple[str, ...] = (
    "schedule",
    "schedule_at",
    "audit_hash",
    "hmac_digest",
    "content_fingerprint",
    "to_json_line",
    "write_results_jsonl",
)

#: the sanctioned telemetry envelope: RunResult separates volatile
#: wall-clock fields from the canonical artifact in its serializers,
#: so values entering it stop being hazardous to determinism
_DET_SANITIZER_TERMINALS: Tuple[str, ...] = ("RunResult",)

_DET_SPEC = TaintSpec(
    rule_id="det-taint-flow",
    call_sources=call_matcher(
        dotted=_NONDET_SOURCES,
        describe="{name}() is a wall-clock/unseeded-random read",
    ),
    sinks=call_matcher(
        terminals=_DET_SINK_TERMINALS,
        describe="{name}() (deterministic artifact)",
    ),
    sanitizers=call_matcher(terminals=_DET_SANITIZER_TERMINALS),
)


@project_rule(
    id="det-taint-flow",
    family="determinism",
    severity=Severity.ERROR,
    summary="wall-clock/unseeded-random value flows into a "
            "deterministic artifact across function boundaries",
    rationale=(
        "The lexical det-wall-clock rule blesses reads inside the "
        "repro.fleet.clock allowlist because telemetry needs them -- "
        "but a value *returned* by those helpers is still wall-clock "
        "time.  If it reaches sim.schedule(), a content digest, or a "
        "canonical JSONL line through any chain of calls, two runs of "
        "the same seed diverge and the byte-identical-trace property "
        "every golden test pins is gone.  The taint engine follows "
        "the value through assignments, returns and calls, so "
        "laundering through a helper no longer hides the flow."
    ),
    hint=(
        "keep wall-clock values in telemetry-only fields (RunResult's "
        "volatile columns) or derive sim inputs from the seeded DRBG; "
        "run repro lint --explain det-taint-flow for the full path"
    ),
)
def check_det_taint_flow(ctx: ProjectContext) -> Iterable[Finding]:
    this = get_rule("det-taint-flow")
    for hit in run_taint(ctx.index, _DET_SPEC):
        yield ctx.finding(
            this,
            hit.function.path,
            hit.line,
            hit.col,
            f"wall-clock/unseeded-random value reaches "
            f"{hit.sink_desc} in {_display(hit.function)}()",
            trace=hit.trace,
        )


# ---------------------------------------------------------------------------
# crypto-secret-leak
# ---------------------------------------------------------------------------

#: name tokens that mark key material on function entry
_SECRET_TOKENS = {"key", "keys", "secret", "secrets"}
#: extra tokens that are secret inside the crypto package itself
_CRYPTO_ONLY_SECRET_TOKENS = {"seed", "d"}  # d: ECDSA private scalar
#: tokens that mark a name as *about* a secret, not the secret itself
_SECRET_METADATA_TOKENS = {
    "fingerprint", "fp", "id", "index", "size", "len", "length",
    "count", "name", "names", "scheme", "algorithm", "algo", "type",
    "kind", "time", "times", "public", "pub", "path", "file", "error",
    "request", "cache",
}
#: packages whose key-named parameters are treated as key material
#: (vserver deliberately excluded: its ``key=value`` config-DSL and
#: token-bucket lookup keys are strings, not crypto material -- key
#: material entering vserver still taints via the ra/ attr namespace)
_SECRET_NAME_SCOPES = ("repro/crypto/", "repro/ra/")
_CRYPTO_SCOPE = ("repro/crypto/",)

#: observable surfaces secret material must never reach
_LEAK_SINK_TERMINALS: Tuple[str, ...] = (
    "print", "repr",
    "debug", "info", "warning", "warn", "error", "exception",
    "critical",
    "record", "observe", "inc",
)

#: one-way derivations: their output is safe to expose.  The DRBG
#: integer draws and ECDSA signatures are here because they are
#: one-way functions of the seed/key by construction -- exposing a
#: jitter draw or an (r, s) pair does not expose the material
_LEAK_SANITIZER_TERMINALS: Tuple[str, ...] = (
    "len", "audit_hash", "content_fingerprint", "fingerprint",
    "key_fingerprint", "hmac_digest",
    "randrange", "randbelow", "randint_bits", "uniform",
    "ecdsa_sign", "traversal_order",
)

#: modules whose key-named call results are key material; a resolved
#: prefix requirement keeps ``mapping.keys()``/``cache.project_key()``
#: style helpers elsewhere from masquerading as key factories
_SECRET_CALL_SCOPES = ("repro.crypto.", "repro.ra.", "repro.vserver.")


def _secret_name_sources(
    func: FunctionInfo,
) -> List[Tuple[str, str]]:
    norm = func.path.replace("\\", "/")
    if not any(scope in norm for scope in _SECRET_NAME_SCOPES):
        return []
    secret_tokens = set(_SECRET_TOKENS)
    if any(scope in norm for scope in _CRYPTO_SCOPE):
        secret_tokens |= _CRYPTO_ONLY_SECRET_TOKENS
    out: List[Tuple[str, str]] = []
    for param in func.params:
        tokens = _tokens(param)
        if tokens & secret_tokens and not (
            tokens & _SECRET_METADATA_TOKENS
        ):
            out.append((
                f"param:{param}",
                f"parameter {param!r} carries key material",
            ))
    return out


def _secret_call_sources(
    func: FunctionInfo, call: CallRecord
) -> Optional[str]:
    norm = func.path.replace("\\", "/")
    receiver = call.resolved.rsplit(".", 1)[0] if "." in call.resolved else ""
    if (
        call.terminal == "generate"
        and "drbg" in receiver.lower()
        and any(scope in norm for scope in _CRYPTO_SCOPE)
    ):
        # raw keystream is secret inside the crypto package; the
        # fleet/vserver layers draw from seeded DRBGs for public
        # artifacts (jitter, simulated firmware images)
        return f"{call.resolved or call.terminal}() emits DRBG output"
    if not call.resolved.startswith(_SECRET_CALL_SCOPES):
        return None
    tokens = _tokens(call.terminal)
    if tokens & _SECRET_TOKENS and not (
        tokens & _SECRET_METADATA_TOKENS
    ):
        return (
            f"{call.resolved or call.terminal}() returns key material"
        )
    return None


def _secret_projection(attr: str) -> bool:
    """Does key taint flow through a ``.<attr>`` read?

    Only through secret-named fields: a SimProver/DeviceProfile
    holding a key must not taint ``prover.history`` or
    ``profile.region_map`` -- only ``prover.key`` and friends.
    """
    tokens = _tokens(attr)
    if tokens & _SECRET_METADATA_TOKENS:
        return False
    return bool(
        tokens & (_SECRET_TOKENS | _CRYPTO_ONLY_SECRET_TOKENS)
    )


_LEAK_SPEC = TaintSpec(
    rule_id="crypto-secret-leak",
    call_sources=_secret_call_sources,
    name_sources=_secret_name_sources,
    sinks=call_matcher(
        terminals=_LEAK_SINK_TERMINALS,
        describe="{name}() (observable surface)",
    ),
    sanitizers=call_matcher(terminals=_LEAK_SANITIZER_TERMINALS),
    fstring_sink="an f-string interpolation",
    projection=_secret_projection,
)


@project_rule(
    id="crypto-secret-leak",
    family="crypto",
    severity=Severity.ERROR,
    summary="DRBG/key material reaches a log, metric, trace, repr or "
            "f-string",
    rationale=(
        "The attestation keys and the DRBG internals are the only "
        "secrets in the system: everything else (nonces, digests, "
        "verdicts) is protocol-public.  A key that reaches print(), a "
        "logging call, a metrics/trace exporter or an f-string ends "
        "up in artifacts that leave the trust boundary (CI logs, "
        "JSONL uploads), and the paper's adversary reads every "
        "channel.  One-way derivations (audit_hash, hmac_digest, "
        "key_fingerprint, len) are the sanctioned way to name a key "
        "in diagnostics."
    ),
    hint=(
        "log a fingerprint (key_fingerprint/audit_hash) or length "
        "instead of the material itself; run repro lint --explain "
        "crypto-secret-leak for the full path"
    ),
)
def check_crypto_secret_leak(ctx: ProjectContext) -> Iterable[Finding]:
    this = get_rule("crypto-secret-leak")
    for hit in run_taint(ctx.index, _LEAK_SPEC):
        yield ctx.finding(
            this,
            hit.function.path,
            hit.line,
            hit.col,
            f"key/DRBG material reaches {hit.sink_desc} in "
            f"{_display(hit.function)}()",
            trace=hit.trace,
        )


# ---------------------------------------------------------------------------
# ra-atomic-gap-interproc
# ---------------------------------------------------------------------------

_SCHEDULER_TERMINALS = ("schedule", "schedule_at")
_YIELD_PAYLOADS = ("Atomic", "Compute")


def _schedules(func: FunctionInfo) -> Optional[CallRecord]:
    for call in func.calls:
        if call.terminal in _SCHEDULER_TERMINALS:
            return call
    return None


def _hazard_site(func: FunctionInfo) -> Optional[Tuple[int, str]]:
    """(line, description) of this function's own hazard, if any."""
    call = _schedules(func)
    if call is not None:
        return call.line, f"calls {call.terminal}()"
    if func.bad_yields:
        line, desc = func.bad_yields[0]
        return line, f"yields {desc!r}"
    return None


@project_rule(
    id="ra-atomic-gap-interproc",
    family="atomicity",
    severity=Severity.ERROR,
    summary="callee of a declared-atomic window transitively "
            "schedules work or cedes the CPU",
    rationale=(
        "ra-atomic-gap checks the measurement body itself, but the "
        "Section 2 hazard does not stop at the function boundary: a "
        "helper called between Atomic(True) and Atomic(False) that "
        "reaches sim.schedule(), or a delegated (yield from) "
        "generator that yields anything but Compute()/Atomic(), "
        "reintroduces exactly the interleaving the atomic claim rules "
        "out -- the verifier would accept a digest whose consistency "
        "guarantee no longer holds."
    ),
    hint=(
        "hoist the scheduling/yielding work out of the "
        "Atomic(True)...Atomic(False) window, or pass results out and "
        "schedule after Atomic(False); run repro lint --explain "
        "ra-atomic-gap-interproc for the call chain"
    ),
)
def check_atomic_gap_interproc(
    ctx: ProjectContext,
) -> Iterable[Finding]:
    this = get_rule("ra-atomic-gap-interproc")
    index = ctx.index
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if func.window is None:
            continue
        start, end = func.window
        for call in func.calls:
            if not (start < call.line <= end):
                continue
            if call.terminal in _YIELD_PAYLOADS:
                continue
            if call.terminal in _SCHEDULER_TERMINALS:
                continue  # the lexical ra-atomic-gap already flags it
            callee = index.resolve_call(func, call)
            if callee is None:
                continue
            if call.yield_from:
                # a delegated generator runs inside the window: its
                # own yields and anything its callees schedule count
                chain = index.transitively_calls(
                    callee,
                    lambda f: _hazard_site(f) is not None,
                    plain_only=False,
                )
            else:
                # a plain call runs the callee body (and its callees)
                # but never executes yields in generators it merely
                # instantiates -- only transitive scheduling counts
                chain = index.transitively_calls(
                    callee,
                    lambda f: _schedules(f) is not None,
                    plain_only=True,
                )
            if chain is None:
                continue
            guilty = index.functions[chain[-1]]
            site = _hazard_site(guilty)
            if site is None:  # pragma: no cover -- predicate said yes
                continue
            hazard_line, hazard_desc = site
            trace = [
                f"{func.path}:{call.line}: {_display(func)}(): calls "
                f"{_display(callee)}() inside its "
                f"Atomic(True)...Atomic(False) window "
                f"(lines {start}..{end})"
            ]
            for step_qual in chain[1:]:
                step = index.functions[step_qual]
                trace.append(
                    f"{step.path}:{step.line}: reaches "
                    f"{_display(step)}()"
                )
            trace.append(
                f"{guilty.path}:{hazard_line}: {_display(guilty)}() "
                f"{hazard_desc} -- interleaving re-enters the window"
            )
            yield ctx.finding(
                this,
                func.path,
                call.line,
                call.col,
                f"{_display(callee)}() called inside the atomic "
                f"section of {_display(func)}() reaches "
                f"{_display(guilty)}(), which {hazard_desc}",
                trace=trace,
            )


# ---------------------------------------------------------------------------
# obs-span-leak-interproc
# ---------------------------------------------------------------------------

_BEGIN = "begin_span"
_END = "end_span"


def _direct_opener_call(func: FunctionInfo) -> Optional[CallRecord]:
    for call in func.calls:
        if call.terminal == _BEGIN:
            return call
    return None


def _compute_openers(index) -> Set[str]:
    """Functions whose return value is a begin_span handle -- i.e.
    they transfer span ownership to their caller."""
    openers: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qual in sorted(index.functions):
            if qual in openers:
                continue
            func = index.functions[qual]
            for call in func.calls:
                is_open = call.terminal == _BEGIN
                if not is_open:
                    callee = index.resolve_call(func, call)
                    is_open = (
                        callee is not None and callee.qual in openers
                    )
                if not is_open:
                    continue
                if "ret" in func.reachable_from([call.node]):
                    openers.add(qual)
                    changed = True
                    break
    return openers


def _compute_enders(index) -> Set[str]:
    """Functions that (transitively, via plain calls) pop a span."""
    enders: Set[str] = set()
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if any(call.terminal == _END for call in func.calls):
            enders.add(qual)
    changed = True
    while changed:
        changed = False
        for qual in sorted(index.functions):
            if qual in enders:
                continue
            func = index.functions[qual]
            for call in func.calls:
                callee = index.resolve_call(func, call)
                if callee is not None and callee.qual in enders:
                    enders.add(qual)
                    changed = True
                    break
    return enders


def _begin_site(index, opener_qual: str) -> Optional[Tuple[str, int]]:
    """(path, line) of the underlying begin_span call of an opener."""
    seen: Set[str] = set()
    qual = opener_qual
    while qual not in seen:
        seen.add(qual)
        func = index.functions[qual]
        direct = _direct_opener_call(func)
        if direct is not None:
            return func.path, direct.line
        for call in func.calls:
            callee = index.resolve_call(func, call)
            if callee is not None and callee.qual not in seen:
                qual = callee.qual
                break
        else:
            return None
    return None


@project_rule(
    id="obs-span-leak-interproc",
    family="observability",
    severity=Severity.WARNING,
    summary="caller obtains an open span from a helper and never "
            "ends it",
    rationale=(
        "A helper may legitimately return its begin_span() handle -- "
        "that transfers ownership of the open span to the caller "
        "(the lexical obs-span-leak rule exempts exactly that shape). "
        "But ownership is an obligation: a caller that invokes such "
        "an opener and neither ends a span, stores the handle, nor "
        "re-returns it leaks an open span across the call boundary, "
        "and every later span in the run erroneously nests under it."
    ),
    hint=(
        "call end_span() after the opener returns, re-return the "
        "handle to pass ownership further up, or use add_span() for "
        "retrospective intervals"
    ),
)
def check_span_leak_interproc(
    ctx: ProjectContext,
) -> Iterable[Finding]:
    this = get_rule("obs-span-leak-interproc")
    index = ctx.index
    openers = _compute_openers(index)
    enders = _compute_enders(index)
    for qual in sorted(index.functions):
        func = index.functions[qual]
        if qual in enders:
            continue  # this body (transitively) pops a span: balanced
        for call in func.calls:
            if call.terminal == _BEGIN:
                continue  # direct begins belong to the lexical rule
            callee = index.resolve_call(func, call)
            if callee is None or callee.qual not in openers:
                continue
            reach = func.reachable_from([call.node])
            if "ret" in reach:
                continue  # ownership re-transferred to our caller
            if any(node.startswith("attr:") for node in reach):
                continue  # handle stored for a later callback
            site = _begin_site(index, callee.qual)
            trace = [
                f"{func.path}:{call.line}: {_display(func)}(): calls "
                f"{_display(callee)}(), which returns an open span",
            ]
            if site is not None:
                trace.insert(0, (
                    f"{site[0]}:{site[1]}: the span is begun here "
                    f"and ownership is returned to the caller"
                ))
            trace.append(
                f"{func.path}:{func.line}: {_display(func)}() never "
                f"calls end_span() (directly or transitively), "
                f"stores, or re-returns the handle"
            )
            yield ctx.finding(
                this,
                func.path,
                call.line,
                call.col,
                f"{_display(func)}() receives an open span from "
                f"{_display(callee)}() and never ends it",
                trace=trace,
            )
