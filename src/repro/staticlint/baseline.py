"""Baseline file: accepted pre-existing findings.

The committed baseline (``lint-baseline.json`` at the repo root) lists
fingerprints of findings that predate the linter and are accepted with
a justification.  A finding whose fingerprint appears in the baseline
is reported as *baselined* and does not fail the run; a baselined
entry whose finding no longer occurs is reported as stale so the
baseline only ever shrinks.

Fingerprints hash (rule id, path, offending line text, occurrence
index) -- see :meth:`repro.staticlint.findings.Finding.fingerprint` --
so entries survive edits that merely move code around.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.staticlint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    fingerprint: str
    justification: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Baseline:
    """The parsed baseline file."""

    entries: List[BaselineEntry] = dataclasses.field(default_factory=list)

    @property
    def fingerprints(self) -> frozenset:
        return frozenset(entry.fingerprint for entry in self.entries)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Baseline":
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ConfigurationError(
                f"unsupported baseline version {version!r}"
            )
        entries = [
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                fingerprint=e["fingerprint"],
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries=entries)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule,
                                                 e.fingerprint)
                )
            ],
        }


def load_baseline(path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return Baseline()
    with open(file_path, "r", encoding="utf-8") as handle:
        return Baseline.from_dict(json.load(handle))


def write_baseline(path, findings: Sequence[Finding]) -> Baseline:
    """Accept every current unsuppressed finding into ``path``."""
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule=finding.rule_id,
                path=finding.path,
                fingerprint=finding.fingerprint(),
                justification="TODO: justify or fix",
            )
            for finding in findings
            if not finding.suppressed
        ]
    )
    Path(path).write_text(
        json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return baseline


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Mark baselined findings; return (findings, stale entries)."""
    accepted = baseline.fingerprints
    marked = [
        dataclasses.replace(finding, baselined=True)
        if finding.fingerprint() in accepted and not finding.suppressed
        else finding
        for finding in findings
    ]
    live = {f.fingerprint() for f in findings}
    stale = [e for e in baseline.entries if e.fingerprint not in live]
    return marked, stale
