"""SARIF 2.1.0 reporter (GitHub code scanning ingests this format).

One run, one driver (``repro-lint``), one rule entry per registered
rule, one result per finding.  Suppressed/baselined findings are
emitted with a ``suppressions`` entry instead of being dropped, so
code-scanning shows them as dismissed rather than re-opening them on
every push.  Interprocedural traces are carried as ``codeFlows`` so
the source->sink path renders step by step in the UI.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.staticlint.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_TRACE_LOC_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+):\s*(?P<msg>.*)$")


def _artifact_uri(path: str) -> str:
    """Repo-relative posix URI when possible, else the posix path."""
    posix = Path(path).as_posix()
    cwd = Path.cwd().as_posix().rstrip("/") + "/"
    if posix.startswith(cwd):
        return posix[len(cwd):]
    return posix.lstrip("/") if posix.startswith("/") else posix


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_entry(rule) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": rule.id.replace("-", "_"),
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": rule.hint},
        "defaultConfiguration": {"level": _level(rule.severity)},
        "properties": {
            "family": rule.family,
            "wholeProgram": bool(getattr(rule, "whole_program", False)),
        },
    }


def _location(finding: Finding) -> Dict[str, Any]:
    region: Dict[str, Any] = {
        "startLine": max(1, finding.line),
        "startColumn": max(1, finding.col),
    }
    if finding.line_text:
        region["snippet"] = {"text": finding.line_text}
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": _artifact_uri(finding.path),
                "uriBaseId": "%SRCROOT%",
            },
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> Optional[Dict[str, Any]]:
    """Render the interprocedural trace as one SARIF threadFlow."""
    if not finding.trace:
        return None
    locations: List[Dict[str, Any]] = []
    for step in finding.trace:
        match = _TRACE_LOC_RE.match(step)
        if match is None:
            continue
        locations.append({
            "location": {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(match.group("path")),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": int(match.group("line")),
                    },
                },
                "message": {"text": match.group("msg") or step},
            }
        })
    if not locations:
        return None
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding) -> Dict[str, Any]:
    message = finding.message
    if finding.hint:
        message += f"\nhint: {finding.hint}"
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _level(finding.severity),
        "message": {"text": message},
        "locations": [_location(finding)],
        "partialFingerprints": {
            "reproLintFingerprint": finding.fingerprint(),
        },
    }
    flow = _code_flow(finding)
    if flow is not None:
        result["codeFlows"] = [flow]
    suppressions = []
    if finding.suppressed:
        suppressions.append({
            "kind": "inSource",
            "justification": "inline # repro: allow[...] comment",
        })
    if finding.baselined:
        suppressions.append({
            "kind": "external",
            "justification": "accepted in lint-baseline.json",
        })
    if suppressions:
        result["suppressions"] = suppressions
    return result


def render_sarif(
    findings: Sequence[Finding], rules: Sequence
) -> str:
    """The full SARIF log for one lint run."""
    known = {rule.id for rule in rules}
    rule_entries = [_rule_entry(rule) for rule in rules]
    # findings can reference pseudo-rules (parse-error): synthesize
    for rule_id in sorted({f.rule_id for f in findings} - known):
        rule_entries.append({
            "id": rule_id,
            "name": rule_id.replace("-", "_"),
            "shortDescription": {"text": rule_id},
            "defaultConfiguration": {"level": "error"},
        })
    results = [
        _result(finding)
        for finding in sorted(
            findings,
            key=lambda f: (f.path, f.line, f.col, f.rule_id),
        )
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_entries,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
