"""`repro lint`: determinism & crypto-safety static analysis.

The reproduction rests on contracts nothing else enforces: the DES
engine promises identical traces for identical inputs, the fleet layer
promises canonical JSONL free of volatile fields, the verifiers
promise constant-time tag comparison, and the atomic measurement modes
promise no interleaving between MPU lock and unlock.  This package is
the AST-based analyzer that machine-checks those conventions, in the
spirit of statically-verified RA designs (VRASED, OAT): the security
argument is only as good as the properties the measurement code
provably has.

Rule families (see :mod:`repro.staticlint.determinism`,
:mod:`repro.staticlint.crypto_rules`,
:mod:`repro.staticlint.atomicity`)::

    determinism  det-wall-clock, det-module-random,
                 det-unseeded-random, det-set-iteration,
                 det-mutable-default
    crypto       crypto-digest-eq, crypto-random-module
    atomicity    ra-atomic-gap

Usage::

    repro lint src/                 # self-scan, exit 0 when clean
    repro lint --list-rules         # the catalogue
    repro lint --format json src/   # machine-readable findings

Inline suppression: ``# repro: allow[rule-id]  -- justification``.
Accepted legacy findings live in ``lint-baseline.json``.
"""

from repro.staticlint.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.cli import build_report, main, run_lint
from repro.staticlint.engine import (
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import (
    LintConfig,
    Rule,
    all_rules,
    get_rule,
)
from repro.staticlint.reporters import LintReport, rule_catalogue

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "build_report",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "main",
    "rule_catalogue",
    "run_lint",
    "write_baseline",
    "Severity",
]
