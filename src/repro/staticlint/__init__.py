"""`repro lint`: determinism & crypto-safety static analysis.

The reproduction rests on contracts nothing else enforces: the DES
engine promises identical traces for identical inputs, the fleet layer
promises canonical JSONL free of volatile fields, the verifiers
promise constant-time tag comparison, and the atomic measurement modes
promise no interleaving between MPU lock and unlock.  This package is
the AST-based analyzer that machine-checks those conventions, in the
spirit of statically-verified RA designs (VRASED, OAT): the security
argument is only as good as the properties the measurement code
provably has.

Rule families (see :mod:`repro.staticlint.determinism`,
:mod:`repro.staticlint.crypto_rules`,
:mod:`repro.staticlint.atomicity`,
:mod:`repro.staticlint.taint_rules`)::

    determinism  det-wall-clock, det-module-random,
                 det-unseeded-random, det-set-iteration,
                 det-mutable-default, det-taint-flow*
    crypto       crypto-digest-eq, crypto-random-module,
                 crypto-secret-leak*
    atomicity    ra-atomic-gap, ra-naked-send,
                 ra-atomic-gap-interproc*
    observability  obs-span-leak, obs-span-leak-interproc*
    performance  perf-uncached-digest, perf-unbounded-queue

Rules marked ``*`` are whole-program: they run once over the project
symbol table / call graph / taint engine (:mod:`repro.staticlint.
symbols`, :mod:`repro.staticlint.callgraph`,
:mod:`repro.staticlint.dataflow`) instead of per module, and their
findings carry a source->sink ``trace``.

Usage::

    repro lint src/                 # self-scan, exit 0 when clean
    repro lint --list-rules         # the catalogue
    repro lint --format json src/   # machine-readable findings
    repro lint --format sarif src/  # SARIF 2.1.0 (code scanning)
    repro lint --call-graph src/    # the resolved call graph
    repro lint --explain det-taint-flow src/   # source->sink paths
    repro lint --changed HEAD~1     # only files modified vs. a ref
    repro lint --cache src/         # content-hash incremental runs

Inline suppression: ``# repro: allow[rule-id]  -- justification``.
Accepted legacy findings live in ``lint-baseline.json``.
"""

from repro.staticlint.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.cache import LintCache
from repro.staticlint.callgraph import ProjectIndex
from repro.staticlint.cli import build_report, main, run_lint
from repro.staticlint.dataflow import TaintSpec, run_taint
from repro.staticlint.engine import (
    ProjectAnalysis,
    ProjectContext,
    analyze_paths,
    analyze_project,
    analyze_source,
    iter_python_files,
)
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import (
    LintConfig,
    Rule,
    all_rules,
    get_rule,
    selected_project_rules,
    selected_rules,
)
from repro.staticlint.reporters import LintReport, rule_catalogue
from repro.staticlint.sarif import render_sarif
from repro.staticlint.symbols import (
    FunctionInfo,
    ModuleSummary,
    extract_module_summary,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "FunctionInfo",
    "LintCache",
    "LintConfig",
    "LintReport",
    "ModuleSummary",
    "ProjectAnalysis",
    "ProjectContext",
    "ProjectIndex",
    "Rule",
    "TaintSpec",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "apply_baseline",
    "build_report",
    "extract_module_summary",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "main",
    "render_sarif",
    "rule_catalogue",
    "run_lint",
    "run_taint",
    "selected_project_rules",
    "selected_rules",
    "write_baseline",
    "Severity",
]
