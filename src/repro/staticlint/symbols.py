"""Project symbol table: per-module, per-function analysis summaries.

The lexical rules see one module at a time; the whole-program rules
(:mod:`repro.staticlint.taint_rules`) need a *project* view: which
functions exist, what each one calls, and how values move through each
body.  This module extracts that view as a :class:`ModuleSummary` per
file -- a deliberately abstract, JSON-serializable artifact so the
content-hash cache (:mod:`repro.staticlint.cache`) can persist it and
incremental runs skip re-parsing unchanged modules entirely.

Each function (top-level or method; nested ``def``/``lambda`` bodies
are excluded, matching ``walk_scope``) is summarized as a small
dataflow graph over abstract *nodes*:

``param:<name>``
    a formal parameter;
``local:<name>``
    a local variable;
``attr:<name>``
    an attribute slot.  ``self.<name>`` accesses are namespaced by the
    owning class (``attr:<module>.<Cls>.<name>``) so one class's
    secret field cannot poison every other class's same-named field
    project-wide; attribute access through any other receiver keeps
    the coarse project-global key (``attr:<name>``), which errs toward
    finding leaks rather than missing them;
``call:<i>``
    the value returned by the i-th call in the body;
``proj:<attr>:<base>``
    an attribute *read* off a named base (``profile.key`` ->
    ``proj:key:local:profile``).  The taint engine evaluates it
    lazily: tainted if the ``attr`` slot is tainted anywhere, or if
    the base is tainted *and* the active rule says taint flows
    through a ``.<attr>`` projection -- a container holding one
    secret field must not poison its metadata fields;
``ret``
    the function's return value.

Edges record value flow (assignments, returns, loop targets); call
records carry the resolved callee name plus the nodes feeding each
argument; f-strings are recorded separately because interpolating
secret material is itself a sink for ``crypto-secret-leak``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.staticlint.engine import build_import_map, walk_scope

#: bump when the summary shape changes so stale caches self-invalidate
SUMMARY_VERSION = 2


def module_name(path: str, roots: Sequence[str] = ()) -> str:
    """Dotted module name for ``path``, best-effort.

    Preference order: the path relative to one of the scanned
    ``roots`` (so ``src/repro/fleet/clock.py`` scanned via ``src``
    becomes ``repro.fleet.clock`` and test fixtures under a tmp dir
    get names matching their in-fixture imports); else the part of the
    path from a ``repro`` component onward; else the bare stem.
    """
    posix = Path(path).as_posix()
    parts: Optional[Tuple[str, ...]] = None
    for root in roots:
        root_posix = Path(root).as_posix().rstrip("/")
        if posix.startswith(root_posix + "/"):
            parts = tuple(posix[len(root_posix) + 1:].split("/"))
            break
        if posix == root_posix:
            parts = (Path(posix).name,)
            break
    if parts is None:
        pieces = tuple(posix.split("/"))
        for anchor in ("repro", "src"):
            if anchor in pieces[:-1]:
                index = pieces.index(anchor)
                if anchor == "src":
                    index += 1
                parts = pieces[index:]
                break
        else:
            parts = (pieces[-1],)
    parts = tuple(p for p in parts if p)
    if parts and parts[-1].endswith(".py"):
        parts = parts[:-1] + (parts[-1][:-3],)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


@dataclass
class CallRecord:
    """One call site inside a function body."""

    index: int
    resolved: str  # import-dealiased dotted name ("" if unresolvable)
    terminal: str  # last component of the call target
    recv_self: bool  # True for ``self.method(...)``
    line: int
    col: int
    args: List[List[str]]  # dep nodes per argument (incl. keywords)
    recv: List[str] = field(default_factory=list)  # receiver deps
    yield_from: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "i": self.index, "r": self.resolved, "t": self.terminal,
            "s": self.recv_self, "l": self.line, "c": self.col,
            "a": self.args, "rv": self.recv, "yf": self.yield_from,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallRecord":
        return cls(
            index=data["i"], resolved=data["r"], terminal=data["t"],
            recv_self=data["s"], line=data["l"], col=data["c"],
            args=[list(a) for a in data["a"]],
            recv=list(data["rv"]), yield_from=data["yf"],
        )

    @property
    def node(self) -> str:
        return f"call:{self.index}"


@dataclass
class FunctionInfo:
    """Summary of one function/method body."""

    qual: str  # "<module>.<Class>.<name>" or "<module>.<name>"
    name: str
    cls: str  # owning class name, "" for module-level functions
    module: str
    path: str
    line: int
    params: List[str] = field(default_factory=list)
    edges: List[Tuple[str, str]] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    #: f-string interpolations: (line, col, dep nodes)
    fstrings: List[Tuple[int, int, List[str]]] = field(default_factory=list)
    #: Atomic(True)..Atomic(False) window, (start, end) lines
    window: Optional[Tuple[int, int]] = None
    #: non-Atomic/Compute yields: (line, description)
    bad_yields: List[Tuple[int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qual": self.qual, "name": self.name, "cls": self.cls,
            "module": self.module, "path": self.path, "line": self.line,
            "params": self.params,
            "edges": [list(edge) for edge in self.edges],
            "calls": [call.to_dict() for call in self.calls],
            "fstrings": [[l, c, deps] for l, c, deps in self.fstrings],
            "window": list(self.window) if self.window else None,
            "bad_yields": [list(item) for item in self.bad_yields],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qual=data["qual"], name=data["name"], cls=data["cls"],
            module=data["module"], path=data["path"], line=data["line"],
            params=list(data["params"]),
            edges=[tuple(edge) for edge in data["edges"]],
            calls=[CallRecord.from_dict(c) for c in data["calls"]],
            fstrings=[(l, c, list(d)) for l, c, d in data["fstrings"]],
            window=tuple(data["window"]) if data["window"] else None,
            bad_yields=[tuple(item) for item in data["bad_yields"]],
        )

    # -- flow helpers (used by the whole-program rules) ----------------

    def successors(self) -> Dict[str, Set[str]]:
        adjacency: Dict[str, Set[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, set()).add(dst)
        return adjacency

    def reachable_from(self, starts: Sequence[str]) -> Set[str]:
        """Nodes reachable from ``starts`` along the value-flow edges."""
        adjacency = self.successors()
        seen: Set[str] = set()
        stack = list(starts)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return seen


@dataclass
class ModuleSummary:
    """Everything the whole-program phase keeps about one module."""

    path: str
    module: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "functions": {
                qual: info.to_dict()
                for qual, info in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            functions={
                qual: FunctionInfo.from_dict(info)
                for qual, info in data["functions"].items()
            },
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _atomic_marker(node: ast.AST) -> Optional[bool]:
    """True/False for a ``yield Atomic(True/False)``, else None."""
    value = node.value if isinstance(node, ast.Expr) else node
    if not isinstance(value, ast.Yield):
        return None
    call = value.value
    if (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "Atomic"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, bool)
    ):
        return call.args[0].value
    return None


def _allowed_yield(value: Optional[ast.expr]) -> bool:
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("Atomic", "Compute")
    )


class _FunctionExtractor:
    """Builds one :class:`FunctionInfo` from a function's AST."""

    def __init__(
        self,
        func: ast.AST,
        info: FunctionInfo,
        resolve,
    ) -> None:
        self.func = func
        self.info = info
        self.resolve = resolve
        self.params = set(info.params)
        self.call_index: Dict[int, int] = {}  # id(node) -> call index
        self._edges: Set[Tuple[str, str]] = set()

    def run(self) -> None:
        self._collect_calls()
        self._collect_flow()
        self._collect_atomicity()
        self.info.edges = sorted(self._edges)

    # -- nodes ---------------------------------------------------------

    def _name_node(self, name: str) -> str:
        if name in self.params:
            return f"param:{name}"
        return f"local:{name}"

    def _attr_node(self, node: ast.Attribute) -> str:
        # ``self.x`` is private to the class: key it by the owning
        # class so Verifier's ``self.state`` and an app's unrelated
        # ``self.state`` do not share one project-global taint slot
        if (
            self.info.cls
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"attr:{self.info.module}.{self.info.cls}.{node.attr}"
        return f"attr:{node.attr}"

    def _attr_dep(self, node: ast.Attribute) -> Optional[str]:
        """Dep node for an attribute *read*, projection-aware.

        ``profile.key`` becomes ``proj:key:local:profile``: the engine
        decides per rule whether the base object's taint flows through
        a ``.key`` projection, so a container holding one secret field
        does not poison every metadata field read off it.
        """
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "self" and self.info.cls:
                return self._attr_node(node)  # the class-scoped slot
            return f"proj:{node.attr}:{self._name_node(base.id)}"
        if isinstance(base, ast.Attribute):
            inner = self._attr_dep(base)
            if inner is not None:
                return f"proj:{node.attr}:{inner}"
            return None
        if isinstance(base, ast.Call):
            index = self.call_index.get(id(base))
            if index is not None:
                return f"proj:{node.attr}:call:{index}"
        return None

    def _expr_deps(self, expr: Optional[ast.AST]) -> List[str]:
        """Abstract nodes whose values feed ``expr``.

        Calls are *mediated*: an inner call contributes only its
        ``call:<i>`` node, never the nodes feeding its arguments or
        receiver.  Those flows belong to the taint engine (parameter
        injection, taint-through, sanitizers) -- a blind walk would
        let ``return hmac_digest(key, msg)`` add a direct
        ``param:key -> ret`` edge that bypasses the sanitizer.
        Comparisons yield truth values, which carry no reproducible
        content or secret material, so their operands are skipped too.
        """
        deps: Set[str] = set()
        if expr is None:
            return []

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.Call):
                index = self.call_index.get(id(node))
                if index is not None:
                    deps.add(f"call:{index}")
                return
            if isinstance(node, ast.Compare):
                return
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                deps.add(self._name_node(node.id))
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                dep = self._attr_dep(node)
                if dep is not None:
                    deps.add(dep)
                    return
                deps.add(f"attr:{node.attr}")
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(expr)
        return sorted(deps)

    # -- calls ---------------------------------------------------------

    def _collect_calls(self) -> None:
        delegated: Set[int] = set()
        for node in walk_scope(self.func):
            if isinstance(node, ast.YieldFrom) and isinstance(
                node.value, ast.Call
            ):
                delegated.add(id(node.value))
        records: List[ast.Call] = [
            node for node in walk_scope(self.func)
            if isinstance(node, ast.Call)
        ]
        records.sort(key=lambda call: (call.lineno, call.col_offset))
        for index, call in enumerate(records):
            line, col = call.lineno, call.col_offset
            yield_from = id(call) in delegated
            self.call_index[id(call)] = index
            func = call.func
            recv_self = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            )
            terminal = (
                func.attr if isinstance(func, ast.Attribute)
                else getattr(func, "id", "")
            )
            self.info.calls.append(CallRecord(
                index=index,
                resolved=self.resolve(func),
                terminal=terminal,
                recv_self=recv_self,
                line=line,
                col=col + 1,
                args=[],
                yield_from=yield_from,
            ))

    def _fill_call_args(self) -> None:
        calls_by_index = {record.index: record for record in self.info.calls}
        for node in walk_scope(self.func):
            if not isinstance(node, ast.Call):
                continue
            index = self.call_index.get(id(node))
            if index is None:
                continue
            record = calls_by_index[index]
            record.args = [
                self._expr_deps(arg) for arg in node.args
            ] + [
                self._expr_deps(keyword.value) for keyword in node.keywords
            ]
            if isinstance(node.func, ast.Attribute):
                record.recv = self._expr_deps(node.func.value)

    # -- flow ----------------------------------------------------------

    def _assign_target_nodes(self, target: ast.AST) -> List[str]:
        nodes: List[str] = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                nodes.append(self._name_node(node.id))
            elif isinstance(node, ast.Attribute):
                nodes.append(self._attr_node(node))
        return nodes

    def _add_flow(self, sources: Sequence[str], targets: Sequence[str]) -> None:
        for src in sources:
            for dst in targets:
                if src != dst:
                    self._edges.add((src, dst))

    def _collect_flow(self) -> None:
        self._fill_call_args()
        for node in walk_scope(self.func):
            if isinstance(node, ast.Assign):
                deps = self._expr_deps(node.value)
                for target in node.targets:
                    self._add_flow(deps, self._assign_target_nodes(target))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._add_flow(
                    self._expr_deps(node.value),
                    self._assign_target_nodes(node.target),
                )
            elif isinstance(node, ast.AugAssign):
                self._add_flow(
                    self._expr_deps(node.value),
                    self._assign_target_nodes(node.target),
                )
            elif isinstance(node, ast.Return):
                self._add_flow(self._expr_deps(node.value), ["ret"])
            elif isinstance(node, ast.For):
                self._add_flow(
                    self._expr_deps(node.iter),
                    self._assign_target_nodes(node.target),
                )
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    self._add_flow(
                        self._expr_deps(node.context_expr),
                        self._assign_target_nodes(node.optional_vars),
                    )
            elif isinstance(node, ast.JoinedStr):
                deps = []
                for part in node.values:
                    if isinstance(part, ast.FormattedValue):
                        deps.extend(self._expr_deps(part.value))
                if deps:
                    self.info.fstrings.append(
                        (node.lineno, node.col_offset + 1, sorted(set(deps)))
                    )

    # -- atomicity -----------------------------------------------------

    def _collect_atomicity(self) -> None:
        opens: List[int] = []
        closes: List[int] = []
        for node in walk_scope(self.func):
            if isinstance(node, (ast.Expr, ast.Yield)):
                marker = _atomic_marker(node)
                if marker is True:
                    opens.append(node.lineno)
                    continue
                if marker is False:
                    closes.append(node.lineno)
                    continue
            if isinstance(node, ast.Yield):
                if not _allowed_yield(node.value):
                    desc = ast.unparse(node.value) if node.value else "yield"
                    self.info.bad_yields.append((node.lineno, desc))
        if opens:
            end = max(closes) if closes else getattr(
                self.func, "end_lineno", opens[0]
            )
            self.info.window = (min(opens), end)


def extract_module_summary(
    tree: ast.AST,
    path: str,
    roots: Sequence[str] = (),
    import_map: Optional[Dict[str, str]] = None,
) -> ModuleSummary:
    """Summarize every top-level function and method in ``tree``."""
    mod = module_name(path, roots)
    summary = ModuleSummary(path=path, module=mod)
    import_map = (
        build_import_map(tree) if import_map is None else import_map
    )

    def resolve(node: ast.AST) -> str:
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        root = import_map.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def add_function(func: ast.AST, cls: str) -> None:
        qual = ".".join(p for p in (mod, cls, func.name) if p)
        # drop the implicit receiver (``self``/``cls``) so positional
        # argument -> parameter mapping lines up at call sites
        params = [
            arg.arg
            for arg in (
                list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)
            )
            if arg.arg not in ("self", "cls")
        ]
        info = FunctionInfo(
            qual=qual, name=func.name, cls=cls, module=mod,
            path=path, line=func.lineno, params=params,
        )
        _FunctionExtractor(func, info, resolve).run()
        summary.functions[qual] = info

    body = getattr(tree, "body", [])
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, "")
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(item, node.name)
    return summary
