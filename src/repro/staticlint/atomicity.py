"""Attestation-atomicity rules.

Section 2 of the paper is about exactly one hazard: a measurement that
claims atomicity (SMART's "disable interrupts first") while the code
between taking and releasing the memory locks can still cede the CPU
or enqueue interleaved work.  In the simulation, a measurement body
declares atomicity by yielding ``Atomic(True)`` and ends the section
with ``Atomic(False)``; inside that window the only legitimate yields
are ``Compute(...)`` (simulated instruction time, uninterruptible
while atomic) and the closing ``Atomic(False)`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.staticlint.engine import ModuleContext, walk_scope
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import get_rule, rule

#: yield payloads that keep the atomic claim honest
_ALLOWED_YIELD_CALLS = ("Atomic", "Compute")
#: scheduler entry points that enqueue interleaved events
_SCHEDULER_CALLS = ("schedule", "schedule_at")
#: message kinds that belong to the attestation protocol proper
_ATT_KIND_PREFIX = "att_"


def _atomic_marker(node: ast.AST) -> Optional[bool]:
    """True/False for a ``yield Atomic(True/False)``, else None."""
    if not isinstance(node, (ast.Expr, ast.Yield)):
        return None
    value = node.value if isinstance(node, ast.Expr) else node
    if not isinstance(value, ast.Yield):
        return None
    call = value.value
    if (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "Atomic"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, bool)
    ):
        return call.args[0].value
    return None


def _atomic_window(
    func: ast.AST,
) -> Optional[Tuple[int, int]]:
    """(first Atomic(True) line, last Atomic(False) line or body end)."""
    opens: List[int] = []
    closes: List[int] = []
    for node in walk_scope(func):
        marker = _atomic_marker(node)
        if marker is True:
            opens.append(node.lineno)
        elif marker is False:
            closes.append(node.lineno)
    if not opens:
        return None
    end = max(closes) if closes else getattr(
        func, "end_lineno", opens[0]
    )
    return min(opens), end


@rule(
    id="ra-atomic-gap",
    family="atomicity",
    severity=Severity.ERROR,
    summary="scheduler call or preemptible yield inside a declared-"
            "atomic measurement section",
    rationale=(
        "A measurement that yields Atomic(True) is claiming SMART-style "
        "uninterruptibility between locking and unlocking the attested "
        "region.  Calling sim.schedule()/schedule_at() or yielding "
        "anything but Compute()/Atomic() inside that window reintroduces "
        "the interleaving the claim rules out -- the verifier would "
        "accept a digest whose consistency guarantee silently no longer "
        "holds (the Section 2 hazard)."
    ),
    hint=(
        "move the schedule()/yield outside the Atomic(True)..."
        "Atomic(False) window, or drop the atomic declaration and use a "
        "locking policy that tolerates interruption"
    ),
)
def check_atomic_gap(ctx: ModuleContext) -> Iterable[Finding]:
    this = get_rule("ra-atomic-gap")
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        window = _atomic_window(func)
        if window is None:
            continue
        start, end = window
        for node in walk_scope(func):
            line = getattr(node, "lineno", None)
            if line is None or not (start < line <= end):
                continue
            if isinstance(node, ast.Call):
                func_name = node.func
                attr = (
                    func_name.attr
                    if isinstance(func_name, ast.Attribute)
                    else getattr(func_name, "id", "")
                )
                if attr in _SCHEDULER_CALLS:
                    yield this.finding(
                        ctx, node,
                        f"{attr}() enqueues interleaved work inside "
                        f"the atomic section of {func.name}()",
                    )
            elif isinstance(node, ast.Yield):
                if _atomic_marker(node) is not None:
                    continue
                value = node.value
                allowed = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in _ALLOWED_YIELD_CALLS
                )
                if not allowed:
                    yield this.finding(
                        ctx, node,
                        f"yield inside the atomic section of "
                        f"{func.name}() cedes the CPU",
                    )


@rule(
    id="ra-naked-send",
    family="atomicity",
    severity=Severity.ERROR,
    summary="att_* protocol message sent outside the retry layer",
    rationale=(
        "Attestation exchanges must survive the Section 3.3 "
        "communication adversary: a challenge or report sent with a "
        "bare endpoint.send() bypasses the retransmission/timeout "
        "machinery and the prover's nonce-dedup cache, so one lost "
        "datagram silently kills the exchange and a retransmitted one "
        "double-measures.  All att_* traffic goes through "
        "repro.ra.service (send_report / OnDemandVerifier)."
    ),
    hint=(
        "route the message through repro.ra.service.send_report() or "
        "the OnDemandVerifier retry layer instead of a raw .send()"
    ),
)
def check_naked_send(ctx: ModuleContext) -> Iterable[Finding]:
    if ctx.in_scope(ctx.config.retry_layer_allowlist):
        return
    this = get_rule("ra-naked-send")
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
        ):
            continue
        # kind is positional arg 2 on Endpoint.send(dst, kind, payload)
        # and arg 3 on Channel.send(src, dst, kind, payload); scan all
        # positional string constants so both spellings are caught
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith(_ATT_KIND_PREFIX)
            ):
                yield this.finding(
                    ctx, node,
                    f"raw .send() of {arg.value!r} bypasses the "
                    "retry/dedup layer",
                )
                break
