"""Project call graph over the per-module summaries.

:class:`ProjectIndex` resolves each :class:`~repro.staticlint.symbols.
CallRecord` to the project function it targets (or ``None`` for
stdlib/external calls) and exposes the resulting adjacency as a call
graph.  Resolution is deliberately conservative -- a wrong edge would
let the interprocedural rules report phantom paths -- and tries, in
order:

1. ``self.method(...)`` -> the method on the caller's own class;
2. the import-dealiased dotted name against the full qualname table
   (``from repro.fleet.clock import wall_time; wall_time()`` and
   ``from repro.fleet import clock; clock.wall_time()`` both land on
   ``repro.fleet.clock.wall_time``);
3. the caller's own module (bare ``helper()`` calls and
   ``Class.method`` references);
4. a method-name match on some *unique* project class (``tracker.
   begin_span(...)`` where exactly one class defines ``begin_span``);
   ambiguous names resolve to nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticlint.symbols import CallRecord, FunctionInfo, ModuleSummary


@dataclass
class ProjectIndex:
    """Symbol table + call resolution over every analyzed module."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: method name -> quals of project methods with that name
    methods: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, summaries: Sequence[ModuleSummary]) -> "ProjectIndex":
        index = cls()
        for summary in sorted(summaries, key=lambda s: s.module):
            for qual, info in sorted(summary.functions.items()):
                index.functions[qual] = info
                if info.cls:
                    index.methods.setdefault(info.name, []).append(qual)
        return index

    def resolve_call(
        self, caller: FunctionInfo, call: CallRecord
    ) -> Optional[FunctionInfo]:
        """The project function ``call`` targets, or None if external."""
        if call.recv_self and caller.cls:
            qual = f"{caller.module}.{caller.cls}.{call.terminal}"
            found = self.functions.get(qual)
            if found is not None:
                return found
        resolved = call.resolved
        if resolved:
            found = self.functions.get(resolved)
            if found is not None:
                return found
            found = self.functions.get(f"{caller.module}.{resolved}")
            if found is not None:
                return found
        if call.terminal and "." in resolved:
            candidates = self.methods.get(call.terminal, ())
            if len(candidates) == 1:
                return self.functions[candidates[0]]
        return None

    # -- graph views ---------------------------------------------------

    def edges(self) -> Dict[str, List[Tuple[str, int]]]:
        """caller qual -> sorted [(callee qual, call line), ...]."""
        out: Dict[str, List[Tuple[str, int]]] = {}
        for qual in sorted(self.functions):
            caller = self.functions[qual]
            seen: Set[Tuple[str, int]] = set()
            for call in caller.calls:
                callee = self.resolve_call(caller, call)
                if callee is not None and callee.qual != qual:
                    seen.add((callee.qual, call.line))
            if seen:
                out[qual] = sorted(seen)
        return out

    def callers_of(self) -> Dict[str, List[str]]:
        """callee qual -> sorted caller quals (the reverse graph)."""
        reverse: Dict[str, Set[str]] = {}
        for caller, targets in self.edges().items():
            for callee, _line in targets:
                reverse.setdefault(callee, set()).add(caller)
        return {qual: sorted(callers) for qual, callers in reverse.items()}

    def transitively_calls(
        self, start: FunctionInfo, predicate, plain_only: bool = True
    ) -> Optional[List[str]]:
        """BFS for a callee chain from ``start`` to a function where
        ``predicate(info)`` holds; returns the qual chain or None.

        ``plain_only`` skips ``yield from`` edges: a generator's body
        does not run on a plain call, so its yields/schedules only
        matter when the caller delegates into it.  ``start`` itself is
        tested first (a chain of length one).
        """
        queue: List[Tuple[FunctionInfo, List[str]]] = [(start, [start.qual])]
        visited = {start.qual}
        while queue:
            info, chain = queue.pop(0)
            if predicate(info):
                return chain
            for call in info.calls:
                if plain_only and call.yield_from:
                    continue
                callee = self.resolve_call(info, call)
                if callee is None or callee.qual in visited:
                    continue
                visited.add(callee.qual)
                queue.append((callee, chain + [callee.qual]))
        return None

    def render(self) -> str:
        """Human-readable call graph (the ``--call-graph`` output)."""
        lines: List[str] = []
        edges = self.edges()
        external = 0
        for qual in sorted(self.functions):
            caller = self.functions[qual]
            targets = edges.get(qual, [])
            external += sum(
                1 for call in caller.calls
                if self.resolve_call(caller, call) is None
            )
            if not targets:
                continue
            lines.append(f"{qual}  ({caller.path}:{caller.line})")
            for callee, line in targets:
                lines.append(f"  -> {callee}  (line {line})")
        lines.append(
            f"{len(self.functions)} function(s), "
            f"{sum(len(v) for v in edges.values())} project edge(s), "
            f"{external} external call site(s)"
        )
        return "\n".join(lines)
