"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.fingerprint` is the identity used by the baseline file:
it hashes the rule id, the file path, and the *text* of the offending
line (plus an occurrence index for duplicates on identical lines), so
baselined findings survive unrelated edits that only shift line
numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class Severity(enum.Enum):
    """Per-rule severity: errors fail the build, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = Severity.ERROR
    #: stripped text of the offending source line (baseline identity)
    line_text: str = ""
    #: occurrence index among findings of the same (rule, path, text)
    occurrence: int = 0
    #: True when an inline ``# repro: allow[...]`` covers this finding
    suppressed: bool = field(default=False, compare=False)
    #: True when the committed baseline covers this finding
    baselined: bool = field(default=False, compare=False)
    #: interprocedural source->sink path (whole-program rules only);
    #: excluded from the fingerprint so baselines stay stable
    trace: Tuple[str, ...] = field(default=(), compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        material = "\x1f".join(
            (self.rule_id, self.path, self.line_text, str(self.occurrence))
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "line_text": self.line_text,
            "occurrence": self.occurrence,
            "trace": list(self.trace),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (the analysis cache round-trip)."""
        return cls(
            rule_id=data["rule"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            hint=data.get("hint", ""),
            severity=Severity(data["severity"]),
            line_text=data.get("line_text", ""),
            occurrence=data.get("occurrence", 0),
            suppressed=data.get("suppressed", False),
            baselined=data.get("baselined", False),
            trace=tuple(data.get("trace", ())),
        )

    def render(self) -> str:
        text = (
            f"{self.location}: [{self.rule_id}] "
            f"{self.severity}: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
