"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.fingerprint` is the identity used by the baseline file:
it hashes the rule id, the file path, and the *text* of the offending
line (plus an occurrence index for duplicates on identical lines), so
baselined findings survive unrelated edits that only shift line
numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """Per-rule severity: errors fail the build, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    severity: Severity = Severity.ERROR
    #: stripped text of the offending source line (baseline identity)
    line_text: str = ""
    #: occurrence index among findings of the same (rule, path, text)
    occurrence: int = 0
    #: True when an inline ``# repro: allow[...]`` covers this finding
    suppressed: bool = field(default=False, compare=False)
    #: True when the committed baseline covers this finding
    baselined: bool = field(default=False, compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        material = "\x1f".join(
            (self.rule_id, self.path, self.line_text, str(self.occurrence))
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        text = (
            f"{self.location}: [{self.rule_id}] "
            f"{self.severity}: {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
