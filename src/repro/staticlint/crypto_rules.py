"""Crypto-safety rules.

The verifier compares MACs with ``constant_time_equal`` (RFC 2104
practice: an early-exit ``==`` leaks the first differing byte's
position through timing, letting a network adversary forge tags byte
by byte).  Key and nonce material must come from the HMAC-DRBG, both
for reproducibility and because SMARM/SeED *derive* their secrets from
keyed PRFs.  These rules keep both conventions from regressing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticlint.engine import ModuleContext
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import get_rule, rule

#: identifier tokens that mark a value as secret-derived material
SENSITIVE_TOKENS = frozenset(
    ("digest", "tag", "mac", "hmac", "sig", "signature", "checksum")
)
#: tokens that mark a name as metadata *about* such material, not the
#: material itself (digest_size, tag_input, mac_time, ...)
METADATA_TOKENS = frozenset(
    ("size", "len", "length", "count", "name", "names", "time", "times",
     "ops", "input", "scheme", "algorithm", "algo", "type", "kind",
     "cost", "costs")
)


def _name_tokens(name: str) -> frozenset:
    return frozenset(part for part in name.lower().split("_") if part)


def _sensitive_name(name: str) -> bool:
    tokens = _name_tokens(name)
    return bool(tokens & SENSITIVE_TOKENS) and not (
        tokens & METADATA_TOKENS
    )


def _sensitive_expr(node: ast.expr) -> str:
    """Why an expression looks like digest material ('' = it doesn't)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "digest", "hexdigest"
        ):
            return f"{func.attr}() result"
        if isinstance(func, ast.Name) and _sensitive_name(func.id):
            return f"{func.id}() result"
        if isinstance(func, ast.Attribute) and _sensitive_name(func.attr):
            return f"{func.attr}() result"
        return ""
    if isinstance(node, ast.Attribute) and _sensitive_name(node.attr):
        return node.attr
    if isinstance(node, ast.Name) and _sensitive_name(node.id):
        return node.id
    return ""


def _benign_operand(node: ast.expr) -> bool:
    """Comparisons against these never need constant time."""
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None or isinstance(value, (bool, int, float, str)):
            return True
        if isinstance(value, bytes) and value == b"":
            return True  # emptiness test, not a tag check
    return False


@rule(
    id="crypto-digest-eq",
    family="crypto",
    severity=Severity.ERROR,
    summary="non-constant-time digest/tag/MAC comparison",
    rationale=(
        "Python's == on bytes exits at the first mismatch; comparing a "
        "received tag that way leaks the match-prefix length through "
        "response timing, the classic remote MAC-forgery oracle.  The "
        "reproduction's verifiers model real verifier code, so they "
        "follow real-verifier rules."
    ),
    hint=(
        "compare with repro.crypto.hmac.constant_time_equal(a, b) "
        "(ints: encode both sides with .to_bytes() first)"
    ),
)
def check_digest_eq(ctx: ModuleContext) -> Iterable[Finding]:
    this = get_rule("crypto-digest-eq")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        if any(_benign_operand(op) for op in operands):
            continue
        for operand in operands:
            why = _sensitive_expr(operand)
            if why:
                yield this.finding(
                    ctx, node,
                    f"==/!= comparison involving {why} is not "
                    "constant-time",
                )
                break


@rule(
    id="crypto-random-module",
    family="crypto",
    severity=Severity.ERROR,
    summary="random module used inside crypto/",
    rationale=(
        "The crypto package's randomness contract is the HMAC-DRBG "
        "(SP 800-90A): a Mersenne-Twister stream is predictable from "
        "624 outputs and is not acceptable even in simulation code "
        "that generates keys, nonces or prime witnesses."
    ),
    hint="draw bytes/ints from repro.crypto.drbg.HmacDrbg instead",
)
def check_crypto_random(ctx: ModuleContext) -> Iterable[Finding]:
    if not ctx.in_scope(ctx.config.crypto_scope):
        return
    this = get_rule("crypto-random-module")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield this.finding(
                        ctx, node,
                        "crypto/ must not import the random module",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                yield this.finding(
                    ctx, node,
                    "crypto/ must not import from the random module",
                )
