"""Determinism rules.

The DES engine's contract (``repro.sim.engine``) is that two runs with
the same inputs produce identical traces, and the fleet layer's
resume/parity guarantees require canonical JSONL free of volatile
fields.  These rules machine-check the coding conventions that contract
rests on: no ambient wall clocks, no ambient randomness, no
hash-order-dependent iteration in scheduling paths, no mutable default
arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.staticlint.engine import ModuleContext
from repro.staticlint.findings import Finding, Severity
from repro.staticlint.registry import get_rule, rule

#: dotted suffixes that read a wall/CPU clock
WALL_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.thread_time",
    "time.localtime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: module-level ``random`` functions that mutate the hidden global RNG
_RANDOM_CONSTRUCTORS = ("Random", "SystemRandom")


def _dotted_matches(name: str, suffixes) -> str:
    """The matching suffix when ``name`` ends with one of them."""
    for suffix in suffixes:
        if name == suffix or name.endswith("." + suffix):
            return suffix
    return ""


@rule(
    id="det-wall-clock",
    family="determinism",
    severity=Severity.ERROR,
    summary="wall-clock read outside the telemetry allowlist",
    rationale=(
        "Simulation components must consume repro.sim.engine.Simulator's "
        "clock; an ambient time.time()/datetime.now() read makes traces "
        "and canonical JSONL differ across runs and machines, breaking "
        "the fleet layer's serial/parallel parity and resume guarantees."
    ),
    hint=(
        "use sim.now inside the simulation, or route telemetry through "
        "repro.fleet.clock (the allowlisted wall-clock module)"
    ),
)
def check_wall_clock(ctx: ModuleContext) -> Iterable[Finding]:
    if ctx.is_telemetry_module():
        return
    this = get_rule("det-wall-clock")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        matched = _dotted_matches(resolved, WALL_CLOCK_CALLS)
        if matched:
            yield this.finding(
                ctx, node, f"call to {matched}() reads the wall clock"
            )


@rule(
    id="det-module-random",
    family="determinism",
    severity=Severity.ERROR,
    summary="module-level random.* call (hidden global RNG)",
    rationale=(
        "Components in sim/, ra/, malware/, apps/ and swarm/ must take "
        "an explicit random.Random or HMAC-DRBG so experiments replay "
        "from a seed; random.random()/random.choice() consume the "
        "process-global generator, whose state depends on import order "
        "and whatever ran before."
    ),
    hint=(
        "accept an explicit random.Random(seed) (or "
        "repro.crypto.drbg.HmacDrbg) parameter and call methods on it"
    ),
)
def check_module_random(ctx: ModuleContext) -> Iterable[Finding]:
    if not ctx.in_scope(ctx.config.seeded_random_scope):
        return
    this = get_rule("det-module-random")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if not resolved.startswith("random."):
            continue
        tail = resolved.split(".", 1)[1]
        if tail in _RANDOM_CONSTRUCTORS:
            continue  # constructors are det-unseeded-random's business
        yield this.finding(
            ctx, node,
            f"module-level {resolved}() uses the hidden global RNG",
        )


@rule(
    id="det-unseeded-random",
    family="determinism",
    severity=Severity.ERROR,
    summary="unseeded random.Random() / any random.SystemRandom()",
    rationale=(
        "random.Random() with no seed initializes from OS entropy, and "
        "SystemRandom always does -- either one makes a simulation "
        "component unreplayable, defeating the engine's identical-trace "
        "guarantee."
    ),
    hint=(
        "pass an explicit seed: random.Random(seed); derive per-object "
        "seeds from stable inputs (names, block indices)"
    ),
)
def check_unseeded_random(ctx: ModuleContext) -> Iterable[Finding]:
    if not ctx.in_scope(ctx.config.seeded_random_scope):
        return
    this = get_rule("det-unseeded-random")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved == "random.SystemRandom":
            yield this.finding(
                ctx, node,
                "random.SystemRandom draws OS entropy on every call",
            )
        elif resolved == "random.Random" and not (
            node.args or node.keywords
        ):
            yield this.finding(
                ctx, node,
                "random.Random() without a seed draws OS entropy",
            )


@rule(
    id="det-set-iteration",
    family="determinism",
    severity=Severity.WARNING,
    summary="iteration over a bare set in an event-scheduling path",
    rationale=(
        "Set iteration order follows hash seeding and insertion "
        "history; iterating a bare set while scheduling events makes "
        "the event sequence -- and therefore the trace -- depend on "
        "interpreter state rather than on the inputs."
    ),
    hint="iterate sorted(the_set) (or a list/tuple) for a stable order",
)
def check_set_iteration(ctx: ModuleContext) -> Iterable[Finding]:
    if not ctx.in_scope(ctx.config.scheduling_scope):
        return
    this = get_rule("det-set-iteration")
    for node in ast.walk(ctx.tree):
        iterables: List[ast.expr] = []
        if isinstance(node, ast.For):
            iterables = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables = [gen.iter for gen in node.generators]
        for it in iterables:
            if isinstance(it, ast.Set) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            ):
                yield this.finding(
                    ctx, it,
                    "iterating a bare set has no stable order",
                )


@rule(
    id="det-mutable-default",
    family="determinism",
    severity=Severity.ERROR,
    summary="mutable default argument",
    rationale=(
        "A mutable default is shared across every call, so one run's "
        "state leaks into the next -- cross-run contamination that "
        "shows up as trace divergence between a fresh process and a "
        "warm one (exactly what fleet shard workers are)."
    ),
    hint="default to None and create the list/dict/set inside the body",
)
def check_mutable_default(ctx: ModuleContext) -> Iterable[Finding]:
    this = get_rule("det-mutable-default")
    mutable_calls: Set[str] = {"list", "dict", "set", "bytearray"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_calls
            )
            if bad:
                yield this.finding(
                    ctx, default,
                    f"mutable default argument in {node.name}() is "
                    "shared across calls",
                )
