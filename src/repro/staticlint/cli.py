"""The ``repro lint`` entry point.

Kept separate from :mod:`repro.cli` so the analyzer is importable and
scriptable (``run_lint`` is what the tests and CI drive) while the
top-level CLI stays a thin argument shim.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.staticlint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.cache import DEFAULT_CACHE_NAME
from repro.staticlint.engine import analyze_project, iter_python_files
from repro.staticlint.registry import LintConfig, all_rules
from repro.staticlint.reporters import LintReport, rule_catalogue


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="report format",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "baseline file of accepted findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings and stale baseline entries also fail the run",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--call-graph", action="store_true",
        help="print the whole-program call graph and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE_OR_FINGERPRINT",
        help=(
            "print the source->sink path for matching findings "
            "(a rule id or a fingerprint prefix)"
        ),
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None,
        metavar="GIT_REF",
        help=(
            "lint only files modified vs. a git ref (default HEAD) "
            "plus untracked files; intersected with the given paths"
        ),
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_NAME, default=None,
        metavar="PATH",
        help=(
            "cache per-module analysis by content hash "
            f"(default path: ./{DEFAULT_CACHE_NAME})"
        ),
    )


def build_report(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline_path: Optional[str] = None,
    strict: bool = False,
    cache_path: Optional[str] = None,
    need_context: bool = False,
) -> LintReport:
    """Analyze ``paths`` (lexical + whole-program rules) and fold in
    the baseline -- the API the self-scan test uses directly.

    ``cache_path`` enables the content-hash analysis cache;
    ``need_context`` materializes the call-graph index on the report
    even when every result came from the cache.
    """
    analysis = analyze_project(
        paths,
        config=config,
        cache_path=cache_path,
        need_context=need_context,
    )
    findings = analysis.findings
    baseline = load_baseline(baseline_path) if baseline_path else None
    if baseline is not None:
        findings, stale = apply_baseline(findings, baseline)
    else:
        stale = []
    return LintReport(
        findings=findings,
        stale_baseline=stale,
        files_checked=len(analysis.files),
        strict=strict,
        context=analysis.context,
        cache_stats=(
            {"hits": analysis.cache_hits, "misses": analysis.cache_misses}
            if cache_path is not None
            else None
        ),
    )


def _default_baseline(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    return str(default) if default.exists() else None


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code.

    Usage errors (unknown rule id, missing path) exit 2 with a
    message on stderr; findings exit 1; a clean run exits 0.
    """
    try:
        return _run_lint(args)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2


def _changed_files(ref: str, paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` modified vs. ``ref`` or untracked."""
    changed = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard",
         "--", "*.py"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError) as exc:
            raise ConfigurationError(f"--changed needs git: {exc}")
        if proc.returncode != 0:
            raise ConfigurationError(
                f"--changed: {' '.join(cmd)} failed: "
                + proc.stderr.strip()
            )
        for name in proc.stdout.splitlines():
            name = name.strip()
            if name:
                changed.add(Path(name).resolve())
    return [
        str(path)
        for path in iter_python_files(paths)
        if path.resolve() in changed
    ]


def _explain(report: LintReport, token: str) -> None:
    matched = [
        f for f in report.findings
        if f.rule_id == token or f.fingerprint().startswith(token)
    ]
    if not matched:
        print(f"no finding matches {token!r}")
        return
    for finding in sorted(
        matched, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    ):
        print(finding.render())
        if finding.suppressed:
            print("    (suppressed in source)")
        if finding.baselined:
            print("    (accepted in the baseline)")
        if finding.trace:
            print("    path:")
            for index, step in enumerate(finding.trace, start=1):
                print(f"      {index}. {step}")
        else:
            print("    (lexical finding: no interprocedural path)")


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(rule_catalogue(all_rules()))
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise ConfigurationError(
            "no such path(s): " + ", ".join(missing)
        )

    select = None
    if args.select:
        select = tuple(
            token.strip() for token in args.select.split(",")
            if token.strip()
        )
    config = LintConfig(select=select)

    paths = list(args.paths)
    if args.changed is not None:
        paths = _changed_files(args.changed, paths)
        if not paths:
            print(
                f"no python files changed vs. {args.changed}; "
                "nothing to lint"
            )
            return 0

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        report = build_report(
            paths, config=config, cache_path=args.cache
        )
        accepted = write_baseline(
            target,
            [f for f in report.findings if not f.suppressed],
        )
        print(
            f"baselined {len(accepted.entries)} finding(s) into {target}"
        )
        return 0

    report = build_report(
        paths,
        config=config,
        baseline_path=_default_baseline(args),
        strict=args.strict,
        cache_path=args.cache,
        need_context=args.call_graph,
    )
    if args.call_graph:
        print(report.context.index.render())
        return 0
    if args.explain is not None:
        _explain(report, args.explain)
        return report.exit_code
    print(report.render(args.format))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & crypto-safety analyzer for the "
                    "simulation stack",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
