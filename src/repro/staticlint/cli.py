"""The ``repro lint`` entry point.

Kept separate from :mod:`repro.cli` so the analyzer is importable and
scriptable (``run_lint`` is what the tests and CI drive) while the
top-level CLI stays a thin argument shim.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.staticlint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.engine import analyze_source, iter_python_files
from repro.staticlint.registry import LintConfig, all_rules, selected_rules
from repro.staticlint.reporters import LintReport, rule_catalogue


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "baseline file of accepted findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings and stale baseline entries also fail the run",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def build_report(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline_path: Optional[str] = None,
    strict: bool = False,
) -> LintReport:
    """Analyze ``paths`` and fold in the baseline -- the API the
    self-scan test uses directly."""
    config = config or LintConfig()
    selected_rules(config)  # fail fast on unknown --select ids
    files = iter_python_files(paths)
    findings = []
    for path in files:
        findings.extend(
            analyze_source(
                path.read_text(encoding="utf-8"),
                path=str(path),
                config=config,
            )
        )
    baseline = load_baseline(baseline_path) if baseline_path else None
    if baseline is not None:
        findings, stale = apply_baseline(findings, baseline)
    else:
        stale = []
    return LintReport(
        findings=findings,
        stale_baseline=stale,
        files_checked=len(files),
        strict=strict,
    )


def _default_baseline(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    return str(default) if default.exists() else None


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code.

    Usage errors (unknown rule id, missing path) exit 2 with a
    message on stderr; findings exit 1; a clean run exits 0.
    """
    try:
        return _run_lint(args)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(rule_catalogue(all_rules()))
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise ConfigurationError(
            "no such path(s): " + ", ".join(missing)
        )

    select = None
    if args.select:
        select = tuple(
            token.strip() for token in args.select.split(",")
            if token.strip()
        )
    config = LintConfig(select=select)

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        report = build_report(args.paths, config=config)
        accepted = write_baseline(
            target,
            [f for f in report.findings if not f.suppressed],
        )
        print(
            f"baselined {len(accepted.entries)} finding(s) into {target}"
        )
        return 0

    report = build_report(
        args.paths,
        config=config,
        baseline_path=_default_baseline(args),
        strict=args.strict,
    )
    print(report.render(args.format))
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & crypto-safety analyzer for the "
                    "simulation stack",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
