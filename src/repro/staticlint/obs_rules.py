"""Observability rules.

The span tracker (:mod:`repro.obs.spans`) keeps a nesting stack:
``begin_span`` pushes, ``end_span`` pops.  A function body that begins
more spans than it ends leaks open spans -- every later span in the
same simulation nests under the leaked parent, and the Chrome trace
exporter has to clamp the leak to the end of the run with a
``truncated`` marker.  The converse (more ends than begins) closes a
span some *other* call site still considers open.  Spans whose
endpoints legitimately live in different callbacks (a network delivery,
a deferred lock release) must use the retrospective
``add_span(name, t_start, t_end)`` form instead, which never touches
the stack -- so inside any single function body the begin/end calls
are expected to balance.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.staticlint.engine import ModuleContext, walk_scope
from repro.staticlint.findings import Severity
from repro.staticlint.registry import get_rule, rule

_BEGIN = "begin_span"
_END = "end_span"


def _span_calls(func: ast.AST, attr: str) -> List[ast.Call]:
    """``.begin_span(...)``/``.end_span(...)`` calls in one body."""
    calls = []
    for node in walk_scope(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
        ):
            calls.append(node)
    calls.sort(key=lambda call: (call.lineno, call.col_offset))
    return calls


def _transferred_begins(func: ast.AST) -> List[ast.Call]:
    """Begin calls whose handle the function *returns* -- ownership
    moves to the caller, so the local body legitimately never ends
    them (obs-span-leak-interproc polices the caller instead)."""
    returned_names = set()
    returned_call_ids = set()
    for node in walk_scope(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if isinstance(node.value, ast.Name):
            returned_names.add(node.value.id)
        elif isinstance(node.value, ast.Call):
            returned_call_ids.add(id(node.value))
    transferred = []
    for node in walk_scope(func):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            call = node.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == _BEGIN
                and any(
                    isinstance(target, ast.Name)
                    and target.id in returned_names
                    for target in node.targets
                )
            ):
                transferred.append(call)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == _BEGIN
                and id(node) in returned_call_ids
            ):
                transferred.append(node)
    return transferred


@rule(
    id="obs-span-leak",
    family="observability",
    severity=Severity.WARNING,
    summary="begin_span/end_span imbalance within one function body",
    rationale=(
        "begin_span() pushes onto the tracker's nesting stack and "
        "end_span() pops; a body that begins more spans than it ends "
        "leaks an open span that every later span erroneously nests "
        "under (the exporter clamps it with a 'truncated' marker), "
        "while surplus end_span() calls close a span another call "
        "site still holds.  Cross-callback intervals belong to the "
        "retrospective add_span() form, which never touches the stack."
    ),
    hint=(
        "end every span begun in the same function body, or switch to "
        "add_span(name, t_start, t_end) for intervals whose endpoints "
        "live in different callbacks"
    ),
)
def check_span_leak(ctx: ModuleContext) -> Iterable:
    this = get_rule("obs-span-leak")
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        begins = _span_calls(func, _BEGIN)
        ends = _span_calls(func, _END)
        transferred = {id(call) for call in _transferred_begins(func)}
        begins = [call for call in begins if id(call) not in transferred]
        if len(begins) == len(ends):
            continue
        if len(begins) > len(ends):
            # anchor on the begin calls past the last matched one
            for call in begins[len(ends):]:
                yield this.finding(
                    ctx, call,
                    f"{func.name}() begins {len(begins)} span(s) but "
                    f"ends only {len(ends)} -- this span leaks open",
                )
        else:
            for call in ends[len(begins):]:
                yield this.finding(
                    ctx, call,
                    f"{func.name}() ends {len(ends)} span(s) but "
                    f"begins only {len(begins)} -- this pop closes a "
                    f"span owned elsewhere",
                )


# ---------------------------------------------------------------------------
# obs-ctx-drop: replies that lose the incoming TraceContext
# ---------------------------------------------------------------------------

#: parameter names that mark a function as a message handler
_MESSAGE_PARAMS = ("message", "msg")

#: positional-arg counts at which ``ctx`` would already be covered
#: (Endpoint.send(dst, kind, payload, ctx) / send_report(endpoint,
#: dst, report, kind, ctx))
_CTX_POSITION = {"send": 4, "send_report": 5}


def _handler_params(func: ast.AST) -> bool:
    args = getattr(func, "args", None)
    if args is None:
        return False
    names = [a.arg for a in args.args]
    names.extend(a.arg for a in args.kwonlyargs)
    names.extend(a.arg for a in args.posonlyargs)
    return any(name in _MESSAGE_PARAMS for name in names)


@rule(
    id="obs-ctx-drop",
    family="observability",
    severity=Severity.WARNING,
    summary="message handler sends a reply without forwarding ctx",
    rationale=(
        "a TraceContext rides out-of-band on every Message so one "
        "attestation exchange folds into one causal timeline; a "
        "handler that receives a message and replies (or forwards) "
        "without passing ctx= severs the trace at that hop -- the "
        "verifier-side spans land in a different (or no) trace and "
        "the exchange can no longer be followed end-to-end in the "
        "Perfetto export or resolved from a histogram exemplar"
    ),
    hint=(
        "thread the incoming context through the send: "
        "endpoint.send(dst, kind, payload, ctx=message.ctx) or "
        "send_report(..., ctx=message.ctx); initiating sends that "
        "genuinely start a fresh exchange should mint a new "
        "TraceContext instead (add '# repro: allow[obs-ctx-drop]' "
        "when the send is deliberately untraced)"
    ),
)
def check_ctx_drop(ctx: ModuleContext) -> Iterable:
    this = get_rule("obs-ctx-drop")
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _handler_params(func):
            continue
        for node in walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                continue
            if name not in _CTX_POSITION:
                continue
            if any(kw.arg == "ctx" for kw in node.keywords):
                continue
            if len(node.args) >= _CTX_POSITION[name]:
                continue
            yield this.finding(
                ctx, node,
                f"{func.name}() handles a message but calls {name}() "
                "without ctx= -- the incoming TraceContext is dropped "
                "and the exchange's causal timeline breaks here",
            )
