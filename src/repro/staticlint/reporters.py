"""Text and JSON reporters plus the run verdict.

The exit-code policy lives here so the CLI and tests share it:

* exit 0 -- no live errors (suppressed/baselined findings are fine,
  warnings are fine unless ``--strict``);
* exit 1 -- at least one live error finding (or warning under strict);
* exit 2 -- usage/configuration problems (raised upstream).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.staticlint.baseline import BaselineEntry
from repro.staticlint.findings import Finding, Severity


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    stale_baseline: List[BaselineEntry]
    files_checked: int
    strict: bool = False
    #: the whole-program view (summaries + call-graph index) when it
    #: was materialized -- drives --call-graph and --explain
    context: Optional[object] = field(default=None, compare=False)
    #: analysis-cache hit/miss counters when a cache was active
    cache_stats: Optional[Dict[str, int]] = field(
        default=None, compare=False
    )

    # -- verdict --------------------------------------------------------

    @property
    def live(self) -> List[Finding]:
        """Findings that count: not suppressed, not baselined."""
        return [
            f for f in self.findings
            if not f.suppressed and not f.baselined
        ]

    @property
    def failed(self) -> bool:
        blocking = (
            (Severity.ERROR, Severity.WARNING)
            if self.strict
            else (Severity.ERROR,)
        )
        if any(f.severity in blocking for f in self.live):
            return True
        return self.strict and bool(self.stale_baseline)

    @property
    def exit_code(self) -> int:
        return 1 if self.failed else 0

    def counts(self) -> Dict[str, int]:
        live = self.live
        return {
            "files": self.files_checked,
            "errors": sum(
                1 for f in live if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in live if f.severity is Severity.WARNING
            ),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "stale_baseline": len(self.stale_baseline),
        }

    # -- rendering ------------------------------------------------------

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        ):
            if finding.suppressed or finding.baselined:
                continue
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}: stale baseline entry for "
                f"[{entry.rule}] ({entry.fingerprint}); remove it from "
                "the baseline"
            )
        counts = self.counts()
        lines.append(
            f"checked {counts['files']} file(s): "
            f"{counts['errors']} error(s), "
            f"{counts['warnings']} warning(s), "
            f"{counts['suppressed']} suppressed, "
            f"{counts['baselined']} baselined"
            + (
                f", {counts['stale_baseline']} stale baseline entr"
                + ("y" if counts["stale_baseline"] == 1 else "ies")
                if counts["stale_baseline"]
                else ""
            )
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "counts": self.counts(),
                "exit_code": self.exit_code,
                "findings": [
                    f.to_dict()
                    for f in sorted(
                        self.findings,
                        key=lambda f: (f.path, f.line, f.col, f.rule_id),
                    )
                ],
                "stale_baseline": [
                    e.to_dict() for e in self.stale_baseline
                ],
            },
            indent=2,
            sort_keys=True,
        )

    def render_sarif(self) -> str:
        from repro.staticlint.registry import all_rules
        from repro.staticlint.sarif import render_sarif

        return render_sarif(self.findings, all_rules())

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return self.render_json()
        if fmt == "sarif":
            return self.render_sarif()
        return self.render_text()


def rule_catalogue(rules: Sequence) -> str:
    """The ``--list-rules`` table."""
    lines = []
    family = None
    for entry in rules:
        if entry.family != family:
            family = entry.family
            lines.append(f"{family} rules:")
        lines.append(
            f"  {entry.id:<22} {entry.severity}: {entry.summary}"
        )
    return "\n".join(lines)
