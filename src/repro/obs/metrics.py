"""Sim-time metrics: counters, gauges and histograms with exporters.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instrument mutations stamp the *simulation* clock (bound by the
simulator), never a wall clock, so two runs of the same scenario
produce byte-identical snapshots -- which is what lets the fleet
executor fold them into deterministic run artifacts and assert
serial/parallel parity.

Exporters:

* :meth:`MetricsRegistry.snapshot` -- nested dict, sorted keys;
* :meth:`MetricsRegistry.snapshot_flat` -- ``{name: float}`` for
  :attr:`repro.fleet.telemetry.RunResult.telemetry`;
* :meth:`MetricsRegistry.to_jsonl` -- one JSON object per sample line;
* :func:`to_prometheus_text` -- the Prometheus text exposition format
  (metric names are sanitized ``a.b.c`` -> ``a_b_c``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

TimeFn = Callable[[], float]

#: default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works: observations above the last bound land in +Inf)
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "updated_at", "_clock")

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str],
                 clock: TimeFn) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at = 0.0
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount
        self.updated_at = self._clock()

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value, "updated_at": self.updated_at}


class Gauge:
    """A value that can go up and down (deadline slack, queue depth)."""

    __slots__ = ("name", "labels", "value", "updated_at", "_clock")

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str],
                 clock: TimeFn) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at = 0.0
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated_at = self._clock()

    def add(self, amount: float) -> None:
        self.value += amount
        self.updated_at = self._clock()

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value, "updated_at": self.updated_at}


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    Memory is bounded by the bucket count, so per-block observations in
    million-run campaigns stay cheap.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "sum",
        "min", "max", "updated_at", "_clock", "_exemplars",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        clock: TimeFn,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updated_at = 0.0
        self._clock = clock
        # bucket index -> (value, trace_id, observed_at); lazily
        # allocated so untraced histograms pay nothing.
        self._exemplars: Optional[Dict[int, Tuple[float, str, float]]] = None

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        value = float(value)
        # first bound >= value, or the trailing +Inf slot -- bisect is
        # the C-speed version of the linear "value <= bound" scan
        index = bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updated_at = self._clock()
        if exemplar is not None:
            # Keep the *slowest* observation per bucket: exemplars
            # exist to answer "which exchange is my p99", so within a
            # bucket the worst case is the interesting trace.
            if self._exemplars is None:
                self._exemplars = {}
            current = self._exemplars.get(index)
            if current is None or value >= current[0]:
                self._exemplars[index] = (value, exemplar, self.updated_at)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Linear interpolation inside the containing bucket (the
        Prometheus ``histogram_quantile`` convention), clamped to the
        exact observed ``[min, max]`` so degenerate single-bucket
        distributions stay honest.  Returns 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.bucket_counts):
            if not bucket:
                continue
            previous = cumulative
            cumulative += bucket
            if cumulative < rank:
                continue
            if i == len(self.bounds):
                # +Inf bucket: no finite upper bound to interpolate to
                return self.max
            lower = self.bounds[i - 1] if i else 0.0
            upper = self.bounds[i]
            estimate = lower + (upper - lower) * (
                (rank - previous) / bucket
            )
            return min(max(estimate, self.min), self.max)
        return self.max

    def sample(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])):
                    cumulative
                for i, cumulative in enumerate(self._cumulative())
            },
            "updated_at": self.updated_at,
        }

    def _cumulative(self) -> List[int]:
        total = 0
        out = []
        for bucket in self.bucket_counts:
            total += bucket
            out.append(total)
        return out

    # -- exemplars ------------------------------------------------------
    #
    # Exemplars bind a latency observation back to the trace_id of the
    # exchange that produced it (OpenMetrics-style).  They are kept out
    # of sample()/snapshot_flat()/the Prometheus text so every golden
    # artifact stays byte-identical; consumers opt in via exemplars().

    def exemplars(self) -> List[Dict[str, Any]]:
        """Per-bucket exemplars, ascending by bucket bound."""
        if not self._exemplars:
            return []
        out = []
        for index in sorted(self._exemplars):
            value, trace_id, at = self._exemplars[index]
            bound = (
                "+Inf" if index == len(self.bounds)
                else repr(self.bounds[index])
            )
            out.append({
                "bucket": bound,
                "value": value,
                "trace_id": trace_id,
                "observed_at": at,
            })
        return out

    def exemplar_for_quantile(self, q: float) -> Optional[Dict[str, Any]]:
        """The exemplar nearest the bucket containing the q-quantile.

        Answers "show me a p99 exchange": finds the bucket the
        quantile rank lands in, then the closest bucket at-or-above it
        that holds an exemplar (falling back downward), so a sparse
        exemplar set still resolves.  ``None`` when no exemplars exist.
        """
        if not self._exemplars or not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be in [0, 1]")
        rank = q * self.count
        cumulative = 0
        target = len(self.bounds)
        for i, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if bucket and cumulative >= rank:
                target = i
                break
        indices = sorted(self._exemplars)
        at_or_above = [i for i in indices if i >= target]
        chosen = at_or_above[0] if at_or_above else indices[-1]
        value, trace_id, at = self._exemplars[chosen]
        bound = (
            "+Inf" if chosen == len(self.bounds)
            else repr(self.bounds[chosen])
        )
        return {
            "bucket": bound,
            "value": value,
            "trace_id": trace_id,
            "observed_at": at,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    The same ``(name, labels)`` pair always returns the same instrument
    object, so call sites can re-resolve cheaply or cache the handle.
    """

    enabled = True

    def __init__(self, clock: Optional[TimeFn] = None) -> None:
        self.clock: TimeFn = clock if clock is not None else (lambda: 0.0)
        self._instruments: Dict[Tuple[str, Tuple], Any] = {}
        self._help: Dict[str, str] = {}

    # -- instrument factories ------------------------------------------

    def _get(self, cls, name: str, help_text: str,
             labels: Dict[str, str], **kwargs: Any):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, self.clock, **kwargs)
            self._instruments[key] = instrument
            if help_text:
                self._help.setdefault(name, help_text)
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help_text: str = "",
                **labels: str) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            Histogram, name, help_text, labels, buckets=buckets
        )

    # -- introspection --------------------------------------------------

    def instruments(self) -> List[Any]:
        """All instruments in deterministic (name, labels) order."""
        return [
            self._instruments[key] for key in sorted(self._instruments)
        ]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def __len__(self) -> int:
        return len(self._instruments)

    # -- exporters ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Nested deterministic snapshot of every instrument."""
        out: Dict[str, Any] = {}
        for instrument in self.instruments():
            entry = {
                "kind": instrument.kind,
                "labels": dict(sorted(instrument.labels.items())),
            }
            entry.update(instrument.sample())
            out[_qualified(instrument)] = entry
        return out

    def snapshot_flat(self) -> Dict[str, float]:
        """Flat ``{name: number}`` projection for run telemetry.

        Counters and gauges export their value; histograms flatten to
        ``<name>.count`` / ``<name>.sum`` so aggregation stays a plain
        numeric fold.
        """
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            name = _qualified(instrument)
            if instrument.kind == "histogram":
                out[f"{name}.count"] = float(instrument.count)
                out[f"{name}.sum"] = instrument.sum
            else:
                out[name] = instrument.value
        return out

    def to_jsonl(self, path: Any) -> int:
        """One JSON object per instrument line; returns the line count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for name, entry in sorted(self.snapshot().items()):
                record = {"metric": name}
                record.update(entry)
                handle.write(
                    json.dumps(record, sort_keys=True,
                               separators=(",", ":"))
                )
                handle.write("\n")
                count += 1
        return count


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    kind = "null"
    name = ""
    labels: Dict[str, str] = {}
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float,
                exemplar: Optional[str] = None) -> None:
        pass

    def exemplars(self) -> List[Dict[str, Any]]:
        return []

    def exemplar_for_quantile(self, q: float) -> Optional[Dict[str, Any]]:
        return None

    def sample(self) -> Dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: hands out shared no-op instruments."""

    enabled = False

    __slots__ = ()

    def counter(self, name, help_text="", **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS,
                  **labels):
        return _NULL_INSTRUMENT

    def instruments(self):
        return []

    def snapshot(self):
        return {}

    def snapshot_flat(self):
        return {}

    def to_jsonl(self, path) -> int:
        return 0

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullMetricsRegistry()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _qualified(instrument: Any) -> str:
    if not instrument.labels:
        return instrument.name
    labels = ",".join(
        f"{k}={v}" for k, v in sorted(instrument.labels.items())
    )
    return f"{instrument.name}{{{labels}}}"


def prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{prom_name(k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text format."""
    lines: List[str] = []
    seen_headers = set()
    for instrument in registry.instruments():
        name = prom_name(instrument.name)
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = registry.help_for(instrument.name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            header_kind = (
                "counter" if instrument.kind == "counter"
                else "gauge" if instrument.kind == "gauge"
                else "histogram"
            )
            lines.append(f"# TYPE {name} {header_kind}")
        labels = _prom_labels(instrument.labels)
        if instrument.kind == "histogram":
            cumulative = 0
            for i, bucket in enumerate(instrument.bucket_counts):
                cumulative += bucket
                bound = (
                    "+Inf" if i == len(instrument.bounds)
                    else _fmt(instrument.bounds[i])
                )
                merged = dict(instrument.labels)
                merged["le"] = bound
                lines.append(
                    f"{name}_bucket{_prom_labels(merged)} {cumulative}"
                )
            lines.append(f"{name}_sum{labels} {_fmt(instrument.sum)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            lines.append(f"{name}{labels} {_fmt(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
