"""Causal trace context for attestation exchanges.

One attestation exchange -- challenge out, measurement on the prover,
report back, verdict on the verifier -- crosses several processes and
at least two network hops.  The spans each layer records are real but
disconnected: nothing ties the prover's ``ra.measurement`` interval to
the verifier's ``ra.round_trip`` that caused it.  A
:class:`TraceContext` is the thread that ties them: the initiator mints
one per exchange, every message carries it *out-of-band* (a field on
:class:`repro.sim.network.Message`, never part of the MAC'd protocol
payload -- golden protocol bytes stay byte-identical), and every span
recorded on behalf of the exchange stamps ``trace_id`` into its args so
exporters and the fleet reducer can reassemble the causal timeline.

Trace ids are *deterministic*: they are content hashes of the minting
site's stable coordinates (mechanism, device, nonce/counter), not
random draws, so two runs of the same seeded scenario produce identical
ids and the golden causal-timeline file is diffable byte-for-byte.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

__all__ = ["TraceContext", "mint_trace_id"]


def mint_trace_id(*parts: Any) -> str:
    """Deterministic 16-hex-digit trace id from stable coordinates.

    ``parts`` should uniquely identify the exchange within one run
    (e.g. ``("ondemand", device_name, nonce_hex)``).  Bytes parts are
    hex-encoded first so the join is unambiguous.
    """
    tokens = []
    for part in parts:
        if isinstance(part, (bytes, bytearray)):
            tokens.append(bytes(part).hex())
        else:
            tokens.append(str(part))
    digest = hashlib.sha256("\x1f".join(tokens).encode("utf-8")).hexdigest()
    return digest[:16]


class TraceContext:
    """Identity of one causal exchange, carried alongside messages.

    ``trace_id`` names the exchange; ``parent_span_id`` (optional)
    points at the span that caused the current hop, letting exporters
    draw arrows; ``baggage`` is a small immutable mapping of
    exchange-scoped annotations (mechanism name, attempt counter).
    Instances are immutable -- derive hop-local children with
    :meth:`child` instead of mutating.
    """

    __slots__ = ("trace_id", "parent_span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        parent_span_id: Optional[int] = None,
        baggage: Optional[Dict[str, Any]] = None,
    ) -> None:
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "parent_span_id", parent_span_id)
        object.__setattr__(
            self, "baggage",
            tuple(sorted(baggage.items())) if baggage else (),
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("TraceContext is immutable")

    # -- constructors ---------------------------------------------------

    @classmethod
    def mint(cls, *parts: Any, **baggage: Any) -> "TraceContext":
        """Mint a fresh context from stable exchange coordinates."""
        return cls(mint_trace_id(*parts), baggage=baggage or None)

    def child(self, parent_span_id: Optional[int] = None,
              **extra: Any) -> "TraceContext":
        """Same trace, new causal parent and/or extra baggage."""
        merged = dict(self.baggage)
        merged.update(extra)
        return TraceContext(
            self.trace_id,
            parent_span_id=(
                parent_span_id if parent_span_id is not None
                else self.parent_span_id
            ),
            baggage=merged or None,
        )

    # -- accessors ------------------------------------------------------

    @property
    def short(self) -> str:
        """First 8 hex digits -- enough for log lines."""
        return self.trace_id[:8]

    def baggage_dict(self) -> Dict[str, Any]:
        return dict(self.baggage)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        if self.baggage:
            out["baggage"] = dict(self.baggage)
        return out

    # -- dunder ---------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.parent_span_id == other.parent_span_id
            and self.baggage == other.baggage
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.parent_span_id, self.baggage))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r})"
