"""Sim-time SLO engine: declarative objectives with burn-rate alerts.

The paper's tension is a *budget* problem -- attestation steals time
from safety-critical duty cycles -- and budgets are what SLOs speak.
An :class:`SLObjective` declares what fraction of events must be good
(fire-alarm deadline hit-rate, exchange latency under a bound, vserver
queue wait, availability floor); the :class:`SLOEngine` samples the
run's :class:`~repro.obs.metrics.MetricsRegistry` on a fixed *sim-time*
cadence, evaluates each objective over two rolling windows (the
Google-SRE multi-window pattern: a short window for responsiveness, a
long one to suppress blips), and fires a burn-rate alert when **both**
windows burn error budget faster than the objective's threshold.

Everything is deterministic: sampling happens at scheduled simulation
instants, sources are sim-time metrics (or registered probes reading
sim-state like :class:`~repro.sim.task.TaskStats`), and alerts are
recorded as instantaneous first-class spans (category ``slo``) so they
land in the same causal timeline as the exchanges that caused them.
Attaching an engine is strictly opt-in -- default runs schedule no
ticks and their golden artifacts stay byte-identical.

Objective sources
-----------------

``ratio``
    ``good`` / ``total`` counter names; instruments are summed across
    label sets (so per-mechanism counters fold naturally).
``latency``
    a histogram name plus a threshold: good events are observations
    ``<=`` the largest bucket bound not exceeding the threshold
    (bucket-resolution, exactly the Prometheus convention).
``probe``
    a named callable registered via :meth:`SLOEngine.register_probe`
    returning a cumulative ``(good, total)`` pair -- the bridge to
    state the metrics registry does not carry, e.g. task deadline
    accounting.

DSL
---

Objectives can be declared as a comma-separated string (the fleet
``RunSpec.slo`` axis)::

    latency:ra.round_trip.latency<0.5@0.99
    ratio:vserver.verified/vserver.admitted@0.95!1/5
    probe:deadline@0.999
    firealarm              (a preset name expands to clauses)

``@target`` is the good-fraction objective; the optional
``!short/long`` suffix overrides the rolling windows (sim seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "SLObjective",
    "SLOEngine",
    "SLO_PRESETS",
    "parse_objectives",
]

#: default multi-window burn-rate alert threshold: alert when error
#: budget burns at >= 2x the sustainable rate in BOTH windows
DEFAULT_BURN_THRESHOLD = 2.0


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over a rolling sim-time window."""

    name: str
    kind: str  # "ratio" | "latency" | "probe"
    target: float
    #: ratio: good counter name; latency: histogram name; probe: probe name
    source: str
    #: ratio only: the total counter name
    total_source: str = ""
    #: latency only: good means observation <= threshold (seconds)
    threshold: float = 0.0
    short_window: float = 1.0
    long_window: float = 5.0
    burn_threshold: float = DEFAULT_BURN_THRESHOLD

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "latency", "probe"):
            raise ConfigurationError(
                f"unknown SLO kind {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target!r}"
            )
        if self.kind == "ratio" and not self.total_source:
            raise ConfigurationError(
                f"ratio objective {self.name!r} needs a total counter"
            )
        if self.kind == "latency" and self.threshold <= 0:
            raise ConfigurationError(
                f"latency objective {self.name!r} needs a threshold > 0"
            )
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ConfigurationError(
                "windows must satisfy 0 < short <= long"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn threshold must be > 0")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "source": self.source,
            "short_window": self.short_window,
            "long_window": self.long_window,
            "burn_threshold": self.burn_threshold,
        }
        if self.total_source:
            out["total_source"] = self.total_source
        if self.threshold:
            out["threshold"] = self.threshold
        return out


@dataclass
class _ObjectiveState:
    """Mutable evaluation state for one objective."""

    samples: List[Tuple[float, float, float]] = field(default_factory=list)
    firing: bool = False
    alert_count: int = 0
    worst_burn_short: float = 0.0
    worst_burn_long: float = 0.0
    last_good: float = 0.0
    last_total: float = 0.0


class SLOEngine:
    """Evaluates objectives on a sim-time cadence; records alerts.

    Parameters
    ----------
    obs:
        The run's :class:`~repro.obs.core.Observability`; sources are
        read from ``obs.metrics`` and alerts recorded via ``obs.spans``.
    objectives:
        The declarative objectives to evaluate.
    interval:
        Sampling cadence in sim seconds; defaults to a third of the
        shortest short-window so each window holds >= 3 samples.
    """

    def __init__(
        self,
        obs: Any,
        objectives: Tuple[SLObjective, ...],
        interval: Optional[float] = None,
    ) -> None:
        if not objectives:
            raise ConfigurationError("SLOEngine needs >= 1 objective")
        self.obs = obs
        self.objectives = tuple(objectives)
        if interval is None:
            interval = min(o.short_window for o in self.objectives) / 3.0
        if interval <= 0:
            raise ConfigurationError("interval must be > 0")
        self.interval = interval
        self.alerts: List[Dict[str, Any]] = []
        self._probes: Dict[str, Callable[[], Tuple[float, float]]] = {}
        self._state: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState() for o in self.objectives
        }
        self._sim: Any = None
        self._until: float = 0.0

    # -- wiring ---------------------------------------------------------

    def register_probe(
        self, name: str, fn: Callable[[], Tuple[float, float]]
    ) -> None:
        """Register a cumulative ``(good, total)`` source callable."""
        self._probes[name] = fn

    def attach(self, sim: Any, until: float) -> "SLOEngine":
        """Schedule periodic evaluation ticks on ``sim`` up to ``until``.

        The tick chain is an explicit opt-in event source: never wire
        an engine into a run whose golden event sequence matters.
        """
        self._sim = sim
        self._until = until
        sim.schedule(self.interval, self._tick)
        return self

    # -- sources --------------------------------------------------------

    def _instruments_named(self, name: str) -> List[Any]:
        return [
            inst for inst in self.obs.metrics.instruments()
            if inst.name == name
        ]

    def _read(self, objective: SLObjective) -> Tuple[float, float]:
        """Cumulative (good, total) for one objective, summed across
        label sets."""
        if objective.kind == "probe":
            probe = self._probes.get(objective.source)
            if probe is None:
                return (0.0, 0.0)
            good, total = probe()
            return (float(good), float(total))
        if objective.kind == "ratio":
            good = sum(
                inst.value
                for inst in self._instruments_named(objective.source)
                if inst.kind == "counter"
            )
            total = sum(
                inst.value
                for inst in self._instruments_named(objective.total_source)
                if inst.kind == "counter"
            )
            return (good, total)
        # latency: good = observations <= the bucket covering threshold
        good = total = 0.0
        for inst in self._instruments_named(objective.source):
            if inst.kind != "histogram":
                continue
            cumulative = 0
            covered = 0
            for i, bucket in enumerate(inst.bucket_counts):
                cumulative += bucket
                if (
                    i < len(inst.bounds)
                    and inst.bounds[i] <= objective.threshold
                ):
                    covered = cumulative
            good += covered
            total += inst.count
        return (good, total)

    # -- evaluation -----------------------------------------------------

    def _window_rate(
        self,
        samples: List[Tuple[float, float, float]],
        now: float,
        window: float,
    ) -> Tuple[float, float]:
        """(error_rate, total_delta) over [now - window, now]."""
        if not samples:
            return (0.0, 0.0)
        cutoff = now - window
        # baseline = newest sample at or before the window start; the
        # implicit (0, 0, 0) origin covers windows older than the run
        base_good = base_total = 0.0
        for at, good, total in samples:
            if at <= cutoff:
                base_good, base_total = good, total
            else:
                break
        good_now, total_now = samples[-1][1], samples[-1][2]
        delta_total = total_now - base_total
        if delta_total <= 0:
            return (0.0, 0.0)
        delta_good = good_now - base_good
        error_rate = max(0.0, 1.0 - delta_good / delta_total)
        return (error_rate, delta_total)

    def _tick(self) -> None:
        sim = self._sim
        now = sim.now
        for objective in self.objectives:
            state = self._state[objective.name]
            good, total = self._read(objective)
            state.last_good, state.last_total = good, total
            state.samples.append((now, good, total))
            # retire samples older than the long window (keep one
            # baseline sample at-or-before the cutoff)
            cutoff = now - objective.long_window
            while (
                len(state.samples) > 1 and state.samples[1][0] <= cutoff
            ):
                state.samples.pop(0)
            budget = 1.0 - objective.target
            err_short, n_short = self._window_rate(
                state.samples, now, objective.short_window
            )
            err_long, n_long = self._window_rate(
                state.samples, now, objective.long_window
            )
            burn_short = err_short / budget
            burn_long = err_long / budget
            if burn_short > state.worst_burn_short:
                state.worst_burn_short = burn_short
            if burn_long > state.worst_burn_long:
                state.worst_burn_long = burn_long
            should_fire = (
                n_short > 0
                and n_long > 0
                and burn_short >= objective.burn_threshold
                and burn_long >= objective.burn_threshold
            )
            if should_fire and not state.firing:
                state.firing = True
                state.alert_count += 1
                self._record_alert(
                    objective, now, "firing", burn_short, burn_long
                )
            elif state.firing and not should_fire:
                state.firing = False
                self._record_alert(
                    objective, now, "resolved", burn_short, burn_long
                )
        if now + self.interval <= self._until:
            sim.schedule(self.interval, self._tick)

    def _record_alert(
        self,
        objective: SLObjective,
        now: float,
        transition: str,
        burn_short: float,
        burn_long: float,
    ) -> None:
        alert = {
            "objective": objective.name,
            "at": round(now, 9),
            "transition": transition,
            "burn_short": round(burn_short, 6),
            "burn_long": round(burn_long, 6),
        }
        self.alerts.append(alert)
        if self.obs.enabled:
            # Instantaneous first-class span event: alerts live on the
            # same timeline as the exchanges that burned the budget.
            self.obs.spans.add_span(
                f"slo.alert.{objective.name}", now, now,
                category="slo", transition=transition,
                burn_short=round(burn_short, 6),
                burn_long=round(burn_long, 6),
                target=objective.target,
            )

    # -- reporting ------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Deterministic fold of the evaluation state, for RunResult."""
        objectives: Dict[str, Any] = {}
        for objective in self.objectives:
            state = self._state[objective.name]
            compliance = (
                state.last_good / state.last_total
                if state.last_total else 1.0
            )
            objectives[objective.name] = {
                "kind": objective.kind,
                "target": objective.target,
                "good": state.last_good,
                "total": state.last_total,
                "compliance": round(compliance, 9),
                "met": compliance >= objective.target,
                "alerts": state.alert_count,
                "firing": state.firing,
                "worst_burn_short": round(state.worst_burn_short, 6),
                "worst_burn_long": round(state.worst_burn_long, 6),
            }
        return {
            "interval": self.interval,
            "objectives": objectives,
            "alerts": list(self.alerts),
        }


# ---------------------------------------------------------------------------
# DSL + presets
# ---------------------------------------------------------------------------

#: named objective bundles; preset names are valid DSL clauses
SLO_PRESETS: Dict[str, str] = {
    # the paper's headline budget: alarms must reach the actuator
    "firealarm": (
        "latency:app.alarm.latency<0.25@0.99,"
        "probe:deadline@0.99"
    ),
    # challenge-to-verdict latency for on-demand exchanges
    "exchange": "latency:ra.round_trip.latency<0.5@0.99",
    # served-verifier health: queue wait + availability floor
    "vserver": (
        "latency:vserver.stage.queue<0.5@0.95!1/5,"
        "ratio:vserver.verified/vserver.admitted@0.9!1/5"
    ),
}


def _parse_windows(clause: str) -> Tuple[str, float, float]:
    short_window, long_window = 1.0, 5.0
    if "!" in clause:
        clause, _, windows = clause.partition("!")
        try:
            short_text, _, long_text = windows.partition("/")
            short_window = float(short_text)
            long_window = float(long_text) if long_text else short_window * 5
        except ValueError as exc:
            raise ConfigurationError(
                f"bad SLO window spec {windows!r}"
            ) from exc
    return clause, short_window, long_window


def _parse_clause(clause: str) -> SLObjective:
    clause, short_window, long_window = _parse_windows(clause)
    body, _, target_text = clause.partition("@")
    if not target_text:
        raise ConfigurationError(
            f"SLO clause {clause!r} is missing its @target"
        )
    try:
        target = float(target_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad SLO target {target_text!r}"
        ) from exc
    kind, _, spec = body.partition(":")
    if not spec:
        raise ConfigurationError(
            f"SLO clause {clause!r} needs kind:source"
        )
    if kind == "latency":
        source, sep, threshold_text = spec.partition("<")
        if not sep:
            raise ConfigurationError(
                f"latency clause {clause!r} needs source<threshold"
            )
        try:
            threshold = float(threshold_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad latency threshold {threshold_text!r}"
            ) from exc
        return SLObjective(
            name=source, kind="latency", target=target, source=source,
            threshold=threshold, short_window=short_window,
            long_window=long_window,
        )
    if kind == "ratio":
        good, sep, total = spec.partition("/")
        if not sep or not total:
            raise ConfigurationError(
                f"ratio clause {clause!r} needs good/total"
            )
        return SLObjective(
            name=good, kind="ratio", target=target, source=good,
            total_source=total, short_window=short_window,
            long_window=long_window,
        )
    if kind == "probe":
        return SLObjective(
            name=spec, kind="probe", target=target, source=spec,
            short_window=short_window, long_window=long_window,
        )
    raise ConfigurationError(f"unknown SLO kind {kind!r}")


def parse_objectives(text: str) -> Tuple[SLObjective, ...]:
    """Parse a DSL string (or preset name) into objectives.

    Raises :class:`~repro.errors.ConfigurationError` on junk, so it
    doubles as the ``RunSpec.slo`` axis validator.
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("empty SLO spec")
    objectives: List[SLObjective] = []
    seen = set()
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        if clause in SLO_PRESETS:
            expanded = parse_objectives(SLO_PRESETS[clause])
            for objective in expanded:
                if objective.name not in seen:
                    seen.add(objective.name)
                    objectives.append(objective)
            continue
        objective = _parse_clause(clause)
        if objective.name in seen:
            raise ConfigurationError(
                f"duplicate SLO objective {objective.name!r}"
            )
        seen.add(objective.name)
        objectives.append(objective)
    if not objectives:
        raise ConfigurationError(f"SLO spec {text!r} declares nothing")
    return tuple(objectives)
