"""Event-loop profiling: attribute events and sim-time to callback sites.

The simulator's hot loop is ``step()``: pop the next ``(time, seq,
callback)`` and fire it.  :class:`EventLoopProfiler` hooks that loop
and charges each fired event to its *callback site* -- the function's
``module.qualname`` -- accumulating

* how many events the site fired,
* how much simulation time advanced into the site's events (the gap
  between the previous ``now`` and the event's timestamp), and
* optionally how much wall time the callbacks consumed, when a wall
  clock is injected (callers must pass one from
  :mod:`repro.fleet.clock`; the profiler itself never reads a clock,
  keeping the determinism lint clean).

Sim-time attribution is deterministic: identical runs produce
identical tables.  Wall-time columns are diagnostic only and excluded
from any artifact that must be byte-stable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

TimeFn = Callable[[], float]


def callback_site(callback: Callable[..., Any]) -> str:
    """Stable ``module.qualname`` label for an event callback."""
    func = callback
    # functools.partial and bound-method wrappers: unwrap to the code
    # that actually runs, so e.g. every CPU resume attributes to the
    # scheduler method, not to N distinct partial objects.
    func = getattr(func, "func", func)
    func = getattr(func, "__func__", func)
    module = getattr(func, "__module__", None) or "<unknown>"
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        qualname = type(callback).__name__
    return f"{module}.{qualname}"


class SiteStats:
    """Accumulated cost of one callback site."""

    __slots__ = ("site", "events", "sim_time", "wall_time")

    def __init__(self, site: str) -> None:
        self.site = site
        self.events = 0
        self.sim_time = 0.0
        self.wall_time = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "events": self.events,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
        }


class EventLoopProfiler:
    """Per-site event accounting, driven by the simulator's step loop.

    The simulator calls :meth:`record` once per fired event with the
    callback object and how far ``now`` advanced to reach it.  When a
    ``wall_clock`` callable is supplied the callback's wall duration is
    measured too (bracketed by the simulator around the call).
    """

    enabled = True

    def __init__(self, wall_clock: Optional[TimeFn] = None) -> None:
        self.sites: Dict[str, SiteStats] = {}
        self.total_events = 0
        self.total_sim_time = 0.0
        self.wall_clock = wall_clock

    # -- recording ------------------------------------------------------

    def record(
        self,
        callback: Callable[..., Any],
        sim_advanced: float,
        wall_elapsed: float = 0.0,
    ) -> None:
        site = callback_site(callback)
        stats = self.sites.get(site)
        if stats is None:
            stats = SiteStats(site)
            self.sites[site] = stats
        stats.events += 1
        stats.sim_time += sim_advanced
        stats.wall_time += wall_elapsed
        self.total_events += 1
        self.total_sim_time += sim_advanced

    # -- reporting ------------------------------------------------------

    def hotspots(
        self, by: str = "events", limit: Optional[int] = None
    ) -> List[SiteStats]:
        """Sites sorted by the given column, heaviest first.

        Ties break on the site name so the order is deterministic.
        """
        key: Callable[[SiteStats], Tuple]
        if by == "events":
            key = lambda s: (-s.events, s.site)  # noqa: E731
        elif by == "sim_time":
            key = lambda s: (-s.sim_time, s.site)  # noqa: E731
        elif by == "wall_time":
            key = lambda s: (-s.wall_time, s.site)  # noqa: E731
        else:
            raise ValueError(f"unknown sort column {by!r}")
        ranked = sorted(self.sites.values(), key=key)
        return ranked[:limit] if limit is not None else ranked

    def render(
        self, by: str = "events", limit: Optional[int] = 20
    ) -> str:
        """Fixed-width hot-spot table for terminal output."""
        rows = self.hotspots(by=by, limit=limit)
        include_wall = self.wall_clock is not None
        header = (
            f"{'events':>10}  {'ev%':>6}  {'sim_time':>12}  {'sim%':>6}"
        )
        if include_wall:
            header += f"  {'wall_ms':>10}"
        header += "  site"
        lines = [header, "-" * len(header)]
        for stats in rows:
            ev_share = (
                100.0 * stats.events / self.total_events
                if self.total_events else 0.0
            )
            sim_share = (
                100.0 * stats.sim_time / self.total_sim_time
                if self.total_sim_time else 0.0
            )
            line = (
                f"{stats.events:>10}  {ev_share:>5.1f}%  "
                f"{stats.sim_time:>12.6f}  {sim_share:>5.1f}%"
            )
            if include_wall:
                line += f"  {stats.wall_time * 1e3:>10.3f}"
            line += f"  {stats.site}"
            lines.append(line)
        lines.append("-" * len(header))
        lines.append(
            f"{self.total_events:>10}  100.0%  "
            f"{self.total_sim_time:>12.6f}  100.0%"
            + (f"  {'':>10}" if include_wall else "")
            + "  TOTAL"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_events": self.total_events,
            "total_sim_time": self.total_sim_time,
            "sites": [
                s.to_dict() for s in self.hotspots(by="events")
            ],
        }


class NullProfiler:
    """Disabled profiler; the simulator skips the bracketing entirely."""

    enabled = False

    __slots__ = ()

    wall_clock = None
    total_events = 0
    total_sim_time = 0.0

    def record(self, callback, sim_advanced, wall_elapsed=0.0) -> None:
        pass

    def hotspots(self, by="events", limit=None):
        return []

    def render(self, by="events", limit=20) -> str:
        return "(profiling disabled)"

    def to_dict(self) -> Dict[str, Any]:
        return {"total_events": 0, "total_sim_time": 0.0, "sites": []}


NULL_PROFILER = NullProfiler()
