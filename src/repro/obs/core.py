"""The observability façade: one object carrying spans + metrics + profiler.

Everything downstream of the simulator reaches instrumentation through
``sim.obs`` -- an :class:`Observability` bundle or the shared
:data:`NULL_OBS`.  The null bundle's members are the per-layer null
objects, so instrumented code never branches on "is obs on?" for
correctness, only (optionally) for speed in hot loops.

Construction idiom::

    obs = Observability.enabled()          # spans + metrics
    obs = Observability.enabled(profile=wall_clock_fn)   # + profiler
    sim = Simulator(obs=obs)               # binds obs.clock to sim.now

The simulator binds the sim clock into the bundle at construction
(:meth:`Observability.bind_clock`), after which every span endpoint
and metric update is stamped in simulation time.  Nothing here ever
reads a wall clock; profiling wall-time is an *injected* callable the
caller must source from :mod:`repro.fleet.clock`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.profiler import NULL_PROFILER, EventLoopProfiler, NullProfiler
from repro.obs.spans import NULL_TRACKER, NullSpanTracker, SpanTracker

TimeFn = Callable[[], float]


class Observability:
    """Bundle of span tracker, metrics registry and profiler."""

    enabled = True

    def __init__(
        self,
        spans: Optional[SpanTracker] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[EventLoopProfiler] = None,
    ) -> None:
        self.spans = spans if spans is not None else NULL_TRACKER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @classmethod
    def enabled(
        cls,
        spans: bool = True,
        metrics: bool = True,
        profile: Optional[TimeFn] = None,
        profile_events: bool = False,
    ) -> "Observability":
        """Build a live bundle.

        ``profile`` turns on the event-loop profiler with the given
        wall clock (pass :func:`repro.fleet.clock.perf_time`);
        ``profile_events`` enables it in sim-time-only mode, which
        stays fully deterministic.
        """
        return cls(
            spans=SpanTracker() if spans else None,
            metrics=MetricsRegistry() if metrics else None,
            profiler=(
                EventLoopProfiler(wall_clock=profile)
                if (profile is not None or profile_events)
                else None
            ),
        )

    def bind_clock(self, clock: TimeFn) -> None:
        """Point span and metric timestamps at the simulation clock.

        Called by :class:`repro.sim.engine.Simulator` when the bundle
        is attached; spans/metrics recorded before binding are stamped
        at 0.0.
        """
        if isinstance(self.spans, SpanTracker):
            self.spans.clock = clock
        if isinstance(self.metrics, MetricsRegistry):
            self.metrics.clock = clock


class NullObservability:
    """The default: all three members are the shared null objects."""

    enabled = False

    __slots__ = ()

    spans: NullSpanTracker = NULL_TRACKER
    metrics: NullMetricsRegistry = NULL_REGISTRY
    profiler: NullProfiler = NULL_PROFILER

    def bind_clock(self, clock: TimeFn) -> None:
        pass


#: the shared disabled bundle -- what ``Simulator()`` attaches by default
NULL_OBS = NullObservability()
