"""Causal exchange reports: per-trace timelines and exemplar tables.

One attestation exchange -- an on-demand round trip, an ERASMUS
collection, a SeED push, or a served-verifier submission -- is stitched
together by the :class:`~repro.obs.tracectx.TraceContext` minted at its
initiation and propagated out-of-band on every message.  Each span a
participant records carries the exchange's ``trace_id`` in its args;
this module is the read side, turning a raw span capture into:

* :func:`exchange_records` -- one row per *completed* exchange (the
  terminal span names in :data:`EXCHANGE_SPAN_NAMES`), with latency
  and trace id, the feed for the cross-shard
  :class:`~repro.fleet.telemetry.ExchangeSketch` reducer;
* :func:`causal_timeline` -- the canonical JSONL projection of every
  traced span, sorted by (trace, time, name) with span ids stripped,
  so serial and batched executions of the same scenario produce
  byte-identical timelines (the golden-diffed artifact);
* :func:`exemplar_table` -- every histogram's latency->trace_id
  exemplars, resolving "which exchange is my p99" to a concrete trace.

Nothing here imports :mod:`repro.fleet`; the fleet executor composes
these primitives into ``RunResult.trace_summary``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: terminal span names -- the one span per exchange whose duration IS
#: the exchange latency and whose args carry the verdict
EXCHANGE_SPAN_NAMES = (
    "ra.round_trip",
    "erasmus.collection",
    "seed.push",
    "vserver.exchange",
)


def _canon(value: Any) -> Any:
    """Canonical JSON-safe projection of a span arg."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    return str(value)


def traced_spans(spans: Iterable[Any]) -> List[Any]:
    """Every span carrying a ``trace_id`` arg."""
    return [span for span in spans if span.args.get("trace_id")]


def trace_ids(spans: Iterable[Any]) -> List[str]:
    """Distinct trace ids present in a capture, sorted."""
    return sorted({span.args["trace_id"] for span in traced_spans(spans)})


def exchange_records(spans: Iterable[Any]) -> List[Dict[str, Any]]:
    """One row per completed exchange, ordered by (start, trace, name).

    Only finished terminal spans count: an exchange still in flight at
    the horizon has no latency to report (it shows up in the timeline,
    not in the sketch).
    """
    rows: List[Dict[str, Any]] = []
    for span in spans:
        if span.name not in EXCHANGE_SPAN_NAMES:
            continue
        trace_id = span.args.get("trace_id")
        if not trace_id or span.end is None:
            continue
        rows.append({
            "trace_id": trace_id,
            "name": span.name,
            "device": str(span.args.get("device", "")),
            "verdict": str(span.args.get("verdict", "")),
            "start": span.start,
            "end": span.end,
            "latency": span.end - span.start,
        })
    rows.sort(key=lambda r: (r["start"], r["trace_id"], r["name"]))
    return rows


def causal_timeline(
    spans: Iterable[Any], trace_id: Optional[str] = None
) -> List[str]:
    """Canonical JSONL lines for every traced span.

    Span ids and parent links are deliberately dropped: they encode
    *recording order*, which differs between serial and batched drains
    of the same logical schedule.  What remains -- trace, name,
    category, interval, args -- is the causal content, so two
    executions that are causally identical diff empty.
    """
    rows = []
    for span in spans:
        tid = span.args.get("trace_id")
        if not tid or (trace_id is not None and tid != trace_id):
            continue
        args = {
            key: _canon(value)
            for key, value in sorted(span.args.items())
            if key != "trace_id"
        }
        rows.append({
            "trace": tid,
            "name": span.name,
            "category": span.category,
            "start": round(span.start, 9),
            "end": round(span.end, 9) if span.end is not None else None,
            "args": args,
        })
    rows.sort(key=lambda r: (
        r["trace"],
        r["start"],
        r["end"] is None,
        r["end"] if r["end"] is not None else 0.0,
        r["name"],
    ))
    return [
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in rows
    ]


def exemplar_table(metrics: Any) -> Dict[str, List[Dict[str, Any]]]:
    """``{histogram name: exemplars}`` for every exemplar-bearing
    histogram in a registry (empty histograms are omitted)."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for instrument in metrics.instruments():
        if getattr(instrument, "kind", "") != "histogram":
            continue
        exemplars = instrument.exemplars()
        if exemplars:
            name = instrument.name
            if instrument.labels:
                labels = ",".join(
                    f"{k}={v}"
                    for k, v in sorted(instrument.labels.items())
                )
                name = f"{name}{{{labels}}}"
            out[name] = exemplars
    return out


def resolve_quantile(
    metrics: Any, name: str, q: float = 0.99
) -> Optional[Dict[str, Any]]:
    """Resolve histogram ``name``'s q-quantile to an exemplar (the
    first labeled variant wins when the base name is ambiguous)."""
    for instrument in metrics.instruments():
        if getattr(instrument, "kind", "") != "histogram":
            continue
        if instrument.name != name:
            continue
        exemplar = instrument.exemplar_for_quantile(q)
        if exemplar is not None:
            return exemplar
    return None
