"""Observability: spans, sim-time metrics, event-loop profiling.

See :mod:`repro.obs.core` for the façade and docs/observability.md for
the span model and exporter formats.
"""

from repro.obs.chrome import chrome_trace_events, write_chrome_trace
from repro.obs.core import NULL_OBS, NullObservability, Observability
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    to_prometheus_text,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    EventLoopProfiler,
    NullProfiler,
    SiteStats,
    callback_site,
)
from repro.obs.slo import (
    SLO_PRESETS,
    SLOEngine,
    SLObjective,
    parse_objectives,
)
from repro.obs.spans import NULL_TRACKER, NullSpanTracker, Span, SpanTracker
from repro.obs.tracectx import TraceContext, mint_trace_id

__all__ = [
    "NULL_OBS",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TRACKER",
    "DEFAULT_BUCKETS",
    "Counter",
    "EventLoopProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullObservability",
    "NullProfiler",
    "NullSpanTracker",
    "Observability",
    "SLO_PRESETS",
    "SLOEngine",
    "SLObjective",
    "Span",
    "SpanTracker",
    "SiteStats",
    "TraceContext",
    "mint_trace_id",
    "parse_objectives",
    "callback_site",
    "chrome_trace_events",
    "to_prometheus_text",
    "write_chrome_trace",
]
