"""CLI entry points: ``repro obs`` and ``repro profile``.

``repro obs export-trace`` replays one fleet run with full span
tracking and writes a Chrome trace-event JSON that opens directly in
https://ui.perfetto.dev (or ``chrome://tracing``); ``--by-exchange``
regroups the tracks so each traced attestation exchange gets its own
lane.  ``repro obs export-metrics`` writes the same run's sim-time
metric snapshot as Prometheus text or JSONL.  ``repro obs report``
replays runs with causal tracing enabled and folds them into the
cross-shard exchange summary (terminal table or JSON artifact), with
optional SLO evaluation via ``--slo``.  ``repro obs timeline`` emits
the canonical causal-timeline JSONL for a served-verifier scenario --
the artifact CI diffs against its golden copy.  ``repro profile``
replays one or more runs of a campaign under the event-loop profiler
and prints the hot-spot table -- the quantitative answer to "which
mechanism burns the event loop".

Wall-clock readings for the profiler come from
:func:`repro.fleet.clock.perf_time`, the repository's only allowlisted
wall-clock source, so everything here stays clean under ``repro lint``.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List

from repro.obs.chrome import write_chrome_trace
from repro.obs.core import Observability
from repro.obs.metrics import to_prometheus_text
from repro.obs.profiler import EventLoopProfiler
from repro.obs.report import causal_timeline, resolve_quantile


def _campaign_specs(args: argparse.Namespace) -> List:
    from repro.fleet import canned_campaign

    campaign = canned_campaign(args.campaign, seed_count=args.seeds)
    return campaign.plan()


def _pick_spec(args: argparse.Namespace):
    specs = _campaign_specs(args)
    if not 0 <= args.index < len(specs):
        raise SystemExit(
            f"--index {args.index} out of range; campaign "
            f"{args.campaign!r} plans {len(specs)} runs"
        )
    return specs[args.index]


# ---------------------------------------------------------------------------
# repro obs
# ---------------------------------------------------------------------------


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_command", required=True)

    def add_run_selection(p: argparse.ArgumentParser) -> None:
        p.add_argument("--campaign", default="locking",
                       help="canned campaign name (qoa, matrix, locking)")
        p.add_argument("--seeds", type=int, default=1,
                       help="seed count for the campaign plan")
        p.add_argument("--index", type=int, default=0,
                       help="which planned run to replay")

    trace = sub.add_parser(
        "export-trace",
        help="replay one run and write a Perfetto/Chrome trace JSON",
    )
    add_run_selection(trace)
    trace.add_argument("--out", default="trace.json",
                       help="output path (default trace.json)")
    trace.add_argument("--by-exchange", action="store_true",
                       help="one Perfetto track per traced exchange")

    metrics = sub.add_parser(
        "export-metrics",
        help="replay one run and export its sim-time metrics",
    )
    add_run_selection(metrics)
    metrics.add_argument("--out", default="metrics.prom",
                         help="output path (default metrics.prom)")
    metrics.add_argument("--format", default="prometheus",
                         choices=["prometheus", "jsonl"])

    report = sub.add_parser(
        "report",
        help="replay runs with causal tracing and fold the exchange "
             "summary (terminal or JSON)",
    )
    report.add_argument("--campaign", default="locking",
                        help="canned campaign name (qoa, matrix, locking)")
    report.add_argument("--seeds", type=int, default=1,
                        help="seed count for the campaign plan")
    report.add_argument("--runs", type=int, default=2,
                        help="replay the first N planned runs")
    report.add_argument("--slo", default="",
                        help="SLO DSL / preset evaluated per run "
                             "(e.g. firealarm)")
    report.add_argument("--format", default="terminal",
                        choices=["terminal", "json"])
    report.add_argument("--out", default="",
                        help="also write the JSON summary to this path")

    timeline = sub.add_parser(
        "timeline",
        help="emit the canonical causal-timeline JSONL for a served-"
             "verifier scenario (the golden-diffed artifact)",
    )
    timeline.add_argument("--service", default="smoke",
                          help="ServiceConfig DSL (default: smoke preset)")
    timeline.add_argument("--batch", default="",
                          choices=["", "on", "off"],
                          help="override the preset's epoch batching")
    timeline.add_argument("--out", default="",
                          help="write the JSONL here instead of stdout")


def _render_report(data: Dict[str, Any]) -> str:
    sketch = data["exchanges"]
    lines = [
        f"obs report: campaign {data['campaign']!r}, "
        f"{len(data['runs'])} run(s), {data['traces']} traced exchange(s)",
    ]
    if sketch["count"]:
        lines.append(
            f"exchange latency: count={sketch['count']} "
            f"mean={sketch['sum'] / sketch['count']:.4f}s "
            f"min={sketch['min']:.4f}s max={sketch['max']:.4f}s"
        )
        lines.append("slowest exchanges:")
        for latency, trace_id, label in sketch["top"]:
            lines.append(
                f"  {latency:8.4f}s  {label:<20} trace={trace_id}"
            )
    for row in data["p99_exemplars"]:
        lines.append(
            f"p99 exemplar: {row['metric']} -> trace {row['trace_id']} "
            f"({row['value']:.4f}s in bucket <= {row['bucket']})"
        )
    for entry in data["runs"]:
        slo = entry.get("slo")
        if not slo:
            continue
        for name, objective in sorted(slo["objectives"].items()):
            status = "met" if objective["met"] else "VIOLATED"
            lines.append(
                f"slo {entry['run_id']} {name}: "
                f"{objective['compliance']:.2%} vs target "
                f"{objective['target']:.2%} [{status}] "
                f"alerts={objective['alerts']}"
            )
    return "\n".join(lines)


#: histograms the report resolves p99 exemplars from, when populated
_EXEMPLAR_METRICS = (
    "ra.round_trip.latency",
    "erasmus.collection.latency",
    "app.alarm.latency",
    "vserver.stage.total",
)


def _run_report(args: argparse.Namespace) -> str:
    from repro.fleet import canned_campaign
    from repro.fleet.executor import execute_run
    from repro.fleet.telemetry import ExchangeSketch

    campaign = canned_campaign(args.campaign, seed_count=args.seeds)
    specs = campaign.plan()[: max(1, args.runs)]
    if args.slo:
        specs = [spec.with_overrides(slo=args.slo) for spec in specs]

    sketch = ExchangeSketch()
    traces = 0
    runs: List[Dict[str, Any]] = []
    exemplar_rows: List[Dict[str, Any]] = []
    for spec in specs:
        obs = Observability.enabled()
        result = execute_run(spec, obs=obs)
        summary = result.trace_summary
        traces += int(summary.get("traces", 0))
        exchanges = summary.get("exchanges")
        if exchanges:
            sketch.merge(ExchangeSketch.from_dict(exchanges))
        entry: Dict[str, Any] = {
            "run_id": result.run_id,
            "mechanism": spec.mechanism,
            "traces": summary.get("traces", 0),
            "spans": summary.get("spans", 0),
        }
        if result.slo:
            entry["slo"] = result.slo
        runs.append(entry)
        for metric in _EXEMPLAR_METRICS:
            hit = resolve_quantile(obs.metrics, metric, 0.99)
            if hit is not None:
                exemplar_rows.append(
                    {"run_id": result.run_id, "metric": metric, **hit}
                )

    data = {
        "campaign": args.campaign,
        "runs": runs,
        "traces": traces,
        "exchanges": sketch.to_dict(),
        "p99_exemplars": exemplar_rows,
    }
    if args.format == "json":
        rendered = json.dumps(data, indent=2, sort_keys=True)
    else:
        rendered = _render_report(data)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        rendered += f"\nwrote {args.out}"
    return rendered


def _run_timeline(args: argparse.Namespace) -> str:
    import dataclasses

    from repro.scenario import Scenario
    from repro.vserver.service import ServiceConfig

    config = ServiceConfig.parse(args.service)
    if args.batch:
        config = dataclasses.replace(config, batch=args.batch == "on")
    obs = Observability.enabled()
    scenario = Scenario.build(service=config, obs=obs)
    scenario.sim.run(until=config.horizon)
    lines = causal_timeline(obs.spans)
    body = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(body)
        return (
            f"causal timeline: {len(lines)} traced-span line(s) from "
            f"{len(obs.spans)} spans\nwrote {args.out}"
        )
    return body.rstrip("\n")


def run_obs(args: argparse.Namespace) -> str:
    if args.obs_command == "report":
        return _run_report(args)
    if args.obs_command == "timeline":
        return _run_timeline(args)

    from repro.fleet.executor import execute_run

    spec = _pick_spec(args)
    obs = Observability.enabled()
    result = execute_run(spec, obs=obs)

    if args.obs_command == "export-trace":
        events = write_chrome_trace(
            args.out, obs.spans, by_exchange=args.by_exchange
        )
        return (
            f"run {result.run_id} ({spec.mechanism} vs {spec.adversary}): "
            f"{len(obs.spans)} spans -> {events} trace events\n"
            f"wrote {args.out}; open it at https://ui.perfetto.dev"
        )

    # export-metrics
    if args.format == "jsonl":
        count = obs.metrics.to_jsonl(args.out)
        what = f"{count} metric lines"
    else:
        text = to_prometheus_text(obs.metrics)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        what = f"{len(obs.metrics)} instruments"
    return (
        f"run {result.run_id} ({spec.mechanism} vs {spec.adversary}): "
        f"{what}\nwrote {args.out}"
    )


# ---------------------------------------------------------------------------
# repro profile
# ---------------------------------------------------------------------------


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", default="qoa",
                        help="canned campaign name (qoa, matrix, locking)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="seed count for the campaign plan")
    parser.add_argument("--runs", type=int, default=4,
                        help="profile the first N planned runs")
    parser.add_argument("--by", default="events",
                        choices=["events", "sim_time", "wall_time"],
                        help="hot-spot sort column")
    parser.add_argument("--top", type=int, default=20,
                        help="rows in the hot-spot table")
    parser.add_argument("--no-wall", action="store_true",
                        help="sim-time-only profiling (fully deterministic)")


def run_profile(args: argparse.Namespace) -> str:
    from repro.fleet.clock import perf_time
    from repro.fleet.executor import execute_run

    specs = _campaign_specs(args)[: max(1, args.runs)]
    wall = None if args.no_wall else perf_time
    profiler = EventLoopProfiler(wall_clock=wall)
    obs = Observability(profiler=profiler)
    for spec in specs:
        execute_run(spec, obs=obs)
    mechanisms = sorted({spec.mechanism for spec in specs})
    lines = [
        f"profiled {len(specs)} run(s) of campaign {args.campaign!r} "
        f"({', '.join(mechanisms)}): {profiler.total_events} events, "
        f"{profiler.total_sim_time:.3f} sim-seconds",
        "",
        profiler.render(by=args.by, limit=args.top),
    ]
    return "\n".join(lines)
