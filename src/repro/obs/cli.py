"""CLI entry points: ``repro obs`` and ``repro profile``.

``repro obs export-trace`` replays one fleet run with full span
tracking and writes a Chrome trace-event JSON that opens directly in
https://ui.perfetto.dev (or ``chrome://tracing``).  ``repro obs
export-metrics`` writes the same run's sim-time metric snapshot as
Prometheus text or JSONL.  ``repro profile`` replays one or more runs
of a campaign under the event-loop profiler and prints the hot-spot
table -- the quantitative answer to "which mechanism burns the event
loop".

Wall-clock readings for the profiler come from
:func:`repro.fleet.clock.perf_time`, the repository's only allowlisted
wall-clock source, so everything here stays clean under ``repro lint``.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.obs.chrome import write_chrome_trace
from repro.obs.core import Observability
from repro.obs.metrics import to_prometheus_text
from repro.obs.profiler import EventLoopProfiler


def _campaign_specs(args: argparse.Namespace) -> List:
    from repro.fleet import canned_campaign

    campaign = canned_campaign(args.campaign, seed_count=args.seeds)
    return campaign.plan()


def _pick_spec(args: argparse.Namespace):
    specs = _campaign_specs(args)
    if not 0 <= args.index < len(specs):
        raise SystemExit(
            f"--index {args.index} out of range; campaign "
            f"{args.campaign!r} plans {len(specs)} runs"
        )
    return specs[args.index]


# ---------------------------------------------------------------------------
# repro obs
# ---------------------------------------------------------------------------


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_command", required=True)

    def add_run_selection(p: argparse.ArgumentParser) -> None:
        p.add_argument("--campaign", default="locking",
                       help="canned campaign name (qoa, matrix, locking)")
        p.add_argument("--seeds", type=int, default=1,
                       help="seed count for the campaign plan")
        p.add_argument("--index", type=int, default=0,
                       help="which planned run to replay")

    trace = sub.add_parser(
        "export-trace",
        help="replay one run and write a Perfetto/Chrome trace JSON",
    )
    add_run_selection(trace)
    trace.add_argument("--out", default="trace.json",
                       help="output path (default trace.json)")

    metrics = sub.add_parser(
        "export-metrics",
        help="replay one run and export its sim-time metrics",
    )
    add_run_selection(metrics)
    metrics.add_argument("--out", default="metrics.prom",
                         help="output path (default metrics.prom)")
    metrics.add_argument("--format", default="prometheus",
                         choices=["prometheus", "jsonl"])


def run_obs(args: argparse.Namespace) -> str:
    from repro.fleet.executor import execute_run

    spec = _pick_spec(args)
    obs = Observability.enabled()
    result = execute_run(spec, obs=obs)

    if args.obs_command == "export-trace":
        events = write_chrome_trace(args.out, obs.spans)
        return (
            f"run {result.run_id} ({spec.mechanism} vs {spec.adversary}): "
            f"{len(obs.spans)} spans -> {events} trace events\n"
            f"wrote {args.out}; open it at https://ui.perfetto.dev"
        )

    # export-metrics
    if args.format == "jsonl":
        count = obs.metrics.to_jsonl(args.out)
        what = f"{count} metric lines"
    else:
        text = to_prometheus_text(obs.metrics)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        what = f"{len(obs.metrics)} instruments"
    return (
        f"run {result.run_id} ({spec.mechanism} vs {spec.adversary}): "
        f"{what}\nwrote {args.out}"
    )


# ---------------------------------------------------------------------------
# repro profile
# ---------------------------------------------------------------------------


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", default="qoa",
                        help="canned campaign name (qoa, matrix, locking)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="seed count for the campaign plan")
    parser.add_argument("--runs", type=int, default=4,
                        help="profile the first N planned runs")
    parser.add_argument("--by", default="events",
                        choices=["events", "sim_time", "wall_time"],
                        help="hot-spot sort column")
    parser.add_argument("--top", type=int, default=20,
                        help="rows in the hot-spot table")
    parser.add_argument("--no-wall", action="store_true",
                        help="sim-time-only profiling (fully deterministic)")


def run_profile(args: argparse.Namespace) -> str:
    from repro.fleet.clock import perf_time
    from repro.fleet.executor import execute_run

    specs = _campaign_specs(args)[: max(1, args.runs)]
    wall = None if args.no_wall else perf_time
    profiler = EventLoopProfiler(wall_clock=wall)
    obs = Observability(profiler=profiler)
    for spec in specs:
        execute_run(spec, obs=obs)
    mechanisms = sorted({spec.mechanism for spec in specs})
    lines = [
        f"profiled {len(specs)} run(s) of campaign {args.campaign!r} "
        f"({', '.join(mechanisms)}): {profiler.total_events} events, "
        f"{profiler.total_sim_time:.3f} sim-seconds",
        "",
        profiler.render(by=args.by, limit=args.top),
    ]
    return "\n".join(lines)
