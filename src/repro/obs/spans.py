"""Nested sim-time spans: the interval layer over the flat trace.

The paper's figures are all *intervals*: a measurement window [t_s,
t_e], a lock-hold window [t_s, t_r], a verifier round trip, an
infection lifetime.  :class:`SpanTracker` records such intervals as
first-class objects with ids and parent links, so any simulation can
be folded into a hierarchy (attestation round > measurement > block)
and exported to a trace viewer (:mod:`repro.obs.chrome`).

Two recording styles, matching how the intervals arise in the code:

* ``begin_span`` / ``end_span`` -- stack-nested, for intervals opened
  and closed in the same process body (a measurement run, a request
  dispatch).  The static analyzer's ``obs-span-leak`` rule checks that
  a function body balances these calls.
* ``add_span`` -- retrospective, for intervals whose endpoints live in
  different callbacks (a network delivery, a lock released by a timer,
  fire-to-alarm latency).  The start time is carried by the caller.

All times are *simulation* seconds; the tracker never reads a wall
clock, so span sets are deterministic and diffable across runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: signature of the sim-time source bound by the simulator
TimeFn = Callable[[], float]


class Span:
    """One named interval in simulation time."""

    __slots__ = (
        "span_id", "parent_id", "name", "category", "start", "end", "args",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start: float,
        end: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.args = args or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in sim seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "args": dict(sorted(self.args.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tail = f"end={self.end:.6f}" if self.end is not None else "open"
        return (
            f"<Span #{self.span_id} {self.name!r} "
            f"start={self.start:.6f} {tail}>"
        )


class SpanTracker:
    """Records :class:`Span` objects with stack-based parent links.

    ``clock`` supplies the current simulation time; the simulator binds
    it at construction (see :meth:`repro.obs.core.Observability.bind`).
    """

    enabled = True

    def __init__(self, clock: Optional[TimeFn] = None) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.clock: TimeFn = clock if clock is not None else (lambda: 0.0)

    # -- recording ------------------------------------------------------

    def begin_span(self, name: str, category: str = "", **args: Any) -> Span:
        """Open a span at the current sim time, nested under the
        innermost still-open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self._next_id, parent, name, category, self.clock(), None, args
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **args: Any) -> Span:
        """Close ``span`` at the current sim time.  Out-of-order ends
        are tolerated (extended lock releases outlive the measurement
        that took them); idempotent on an already-closed span."""
        if span.end is None:
            span.end = self.clock()
        if args:
            span.args.update(args)
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        return span

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Record a completed interval retrospectively (endpoints were
        observed in different callbacks)."""
        parent_id = parent.span_id if parent is not None else None
        span = Span(
            self._next_id, parent_id, name, category, start, end, args
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- queries --------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended, outermost first."""
        return list(self._stack)

    def find(
        self, name: Optional[str] = None, category: Optional[str] = None
    ) -> List[Span]:
        """All recorded spans matching the given name/category."""
        return [
            span
            for span in self.spans
            if (name is None or span.name == name)
            and (category is None or span.category == category)
        ]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)


class NullSpanTracker:
    """The zero-cost disabled tracker: every call is a no-op.

    A single shared dummy span is handed back so instrumented code can
    unconditionally ``end_span`` what it began.
    """

    enabled = False

    __slots__ = ()

    _NULL_SPAN = Span(0, None, "", "", 0.0, 0.0)

    def begin_span(self, name: str, category: str = "", **args: Any) -> Span:
        return self._NULL_SPAN

    def end_span(self, span: Span, **args: Any) -> Span:
        return span

    def add_span(self, name, start, end, category="", parent=None,
                 **args: Any) -> Span:
        return self._NULL_SPAN

    def open_spans(self) -> List[Span]:
        return []

    def find(self, name=None, category=None) -> List[Span]:
        return []

    def children_of(self, span: Span) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())


#: the shared disabled tracker
NULL_TRACKER = NullSpanTracker()
