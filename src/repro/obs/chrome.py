"""Chrome trace-event export: open a simulation in Perfetto.

Maps an observability capture onto the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev:

* every finished :class:`~repro.obs.spans.Span` becomes a complete
  ``"X"`` event (``ts``/``dur`` in microseconds of *sim* time);
* still-open spans are clamped to the capture end so a crashed or
  truncated run still renders;
* flat :class:`~repro.sim.trace.Trace` records become ``"i"`` instant
  events, so the classic timeline markers (``mp.start``, ``infect``,
  ``alarm``) appear alongside the nested windows.

Tracks: ``pid`` is always 1 (one simulated world); ``tid`` groups by
the span's category root (``ra.measurement`` -> ``ra``), with instant
records on their own ``trace`` track.  Thread-name metadata events
label the tracks in the viewer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.spans import Span, SpanTracker

_PID = 1

#: fixed track order: known category roots first, then alphabetical
_TRACK_ORDER = ("sim", "ra", "net", "app", "fleet")


def _track_name(span: Span, by_exchange: bool = False) -> str:
    if by_exchange:
        trace_id = span.args.get("trace_id")
        if trace_id:
            return f"xchg:{trace_id}"
    category = span.category or "sim"
    return category.split(".", 1)[0]


def _tid_map(names: List[str]) -> Dict[str, int]:
    known = [n for n in _TRACK_ORDER if n in names]
    extra = sorted(n for n in names if n not in _TRACK_ORDER)
    return {name: i + 1 for i, name in enumerate(known + extra)}


def _micros(seconds: float) -> float:
    # Perfetto wants microseconds; round to a tenth of a ns so float
    # noise does not leak into the JSON.
    return round(seconds * 1e6, 4)


def chrome_trace_events(
    spans: SpanTracker,
    trace: Optional[Any] = None,
    clamp_end: Optional[float] = None,
    by_exchange: bool = False,
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list for a capture.

    ``trace`` is an optional :class:`repro.sim.trace.Trace` whose flat
    records become instant events.  ``clamp_end`` closes still-open
    spans at the given sim time (defaults to the latest timestamp seen
    in the capture).  ``by_exchange`` regroups tracks causally: every
    span carrying a ``trace_id`` lands on its exchange's own
    ``xchg:<trace_id>`` track (sorted after the category tracks), so
    one attestation exchange reads as one horizontal lane in Perfetto.
    The default stays byte-identical to the historical category layout.
    """
    if clamp_end is None:
        clamp_end = 0.0
        for span in spans:
            clamp_end = max(clamp_end, span.start, span.end or 0.0)
        if trace is not None:
            for rec in trace:
                clamp_end = max(clamp_end, rec.time)

    track_names = sorted({_track_name(s, by_exchange) for s in spans})
    if trace is not None and len(trace):
        track_names.append("trace")
    tids = _tid_map(track_names)

    events: List[Dict[str, Any]] = []
    for name, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append({
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": name},
        })

    for span in spans:
        end = span.end if span.end is not None else clamp_end
        args = {k: _arg(v) for k, v in sorted(span.args.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end is None:
            args["truncated"] = True
        events.append({
            "ph": "X",
            "pid": _PID,
            "tid": tids[_track_name(span, by_exchange)],
            "name": span.name,
            "cat": span.category or "sim",
            "ts": _micros(span.start),
            "dur": _micros(max(0.0, end - span.start)),
            "args": args,
        })

    if trace is not None:
        trace_tid = tids.get("trace")
        for rec in trace:
            events.append({
                "ph": "i",
                "pid": _PID,
                "tid": trace_tid,
                "name": rec.kind,
                "cat": "trace",
                "ts": _micros(rec.time),
                "s": "t",
                "args": {
                    "source": rec.source,
                    **{k: _arg(v) for k, v in sorted(rec.data.items())},
                },
            })

    return events


def _arg(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    return str(value)


def write_chrome_trace(
    path: Any,
    spans: SpanTracker,
    trace: Optional[Any] = None,
    clamp_end: Optional[float] = None,
    by_exchange: bool = False,
) -> int:
    """Write a Perfetto-loadable JSON file; returns the event count."""
    events = chrome_trace_events(spans, trace, clamp_end, by_exchange)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit": "sim-us"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return len(events)
