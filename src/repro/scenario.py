"""One-factory scenario wiring: ``Scenario.build(...)``.

Every experiment in this repo wires the same stack -- simulator,
device, channel, verifier enrollment, workload, malware, attestation
mechanism, and (optionally) a fault plan with its retry policy --
and the wiring *order* matters: it fixes the simulator's event
sequence numbers, which the fleet's byte-identical golden artifacts
pin down.  :meth:`Scenario.build` is that order, written once:

    sim -> device (+layout) -> channel -> attach -> enroll
        -> workload -> malware -> mechanism -> faults

Callers get back a :class:`Scenario` holding every constructed piece
plus convenience methods for the common follow-ups::

    sc = Scenario.build(mechanism="smart", malware="transient",
                        faults="loss=0.3@0:30;reset@6",
                        workload="firealarm",
                        retry=RetryPolicy(timeout=0.5))
    sc.schedule_request(at=2.0)
    sc.run(until=40.0)
    print(sc.outcomes.render())

``experiments.py`` and the fleet executor route through this factory;
hand-wiring the stack elsewhere is reserved for tests that probe a
single layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.apps.firealarm import FireAlarmApp
from repro.apps.workloads import WriterWorkload
from repro.core.tradeoff import (
    ScenarioConfig,
    standard_mechanisms,
)
from repro.errors import ConfigurationError
from repro.malware.relocating import SelfRelocatingMalware
from repro.malware.transient import TransientMalware
from repro.ra.erasmus import CollectorVerifier, ErasmusService
from repro.ra.measurement import MeasurementConfig
from repro.ra.seed import SeedMonitor, SeedService
from repro.ra.service import AttestationService, OnDemandVerifier
from repro.ra.verifier import Verifier
from repro.perf.digest_cache import DigestCache
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.outcome import OutcomeReport
from repro.resilience.retry import RetryPolicy
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel

#: mechanisms Scenario.build accepts, beyond standard_mechanisms()
EXTRA_MECHANISMS = ("none", "seed")


@dataclass
class Scenario:
    """Everything ``build`` wired together, ready to run."""

    mechanism: str
    sim: Simulator
    device: Device
    channel: Optional[Channel]
    verifier: Verifier
    config: ScenarioConfig
    service: Any = None
    driver: Optional[OnDemandVerifier] = None
    collector: Optional[CollectorVerifier] = None
    seed_service: Optional[SeedService] = None
    seed_monitor: Optional[SeedMonitor] = None
    app: Optional[FireAlarmApp] = None
    tasks: List[Any] = field(default_factory=list)
    malware: Any = None
    retry: Optional[RetryPolicy] = None
    outcomes: Optional[OutcomeReport] = None
    fault_plan: Optional[FaultPlan] = None
    injector: Optional[FaultInjector] = None
    rounds: int = 1
    digest_cache: Optional[DigestCache] = None

    # -- conveniences ------------------------------------------------------

    def schedule_request(
        self,
        at: float,
        rounds: Optional[int] = None,
        on_result: Optional[Callable[[Any], None]] = None,
    ) -> None:
        """Schedule one on-demand attestation request at sim time
        ``at`` (mechanism must be on-demand)."""
        if self.driver is None:
            raise ConfigurationError(
                f"mechanism {self.mechanism!r} takes no on-demand requests"
            )
        self.sim.schedule_at(
            at, self.driver.request, self.device.name,
            self.rounds if rounds is None else rounds, on_result,
        )

    def schedule_collections(self, period: float, count: int) -> None:
        """Schedule periodic ERASMUS collections (T_C)."""
        if self.collector is None:
            raise ConfigurationError(
                f"mechanism {self.mechanism!r} has no collector"
            )
        self.collector.collect_every(self.device.name, period, count)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (default horizon: the config's)."""
        return self.sim.run(
            until=self.config.horizon if until is None else until
        )

    # -- the factory -------------------------------------------------------

    @classmethod
    def build_service(
        cls,
        config: Optional[Any] = None,
        *,
        obs: Optional[Any] = None,
        **overrides: Any,
    ) -> Any:
        """Back-compat alias for ``build(service=...)``.

        Kept thin so existing callers keep working; new code should
        call :meth:`build` with the ``service=`` parameter.
        """
        return cls.build(
            service=config if config is not None else "smoke",
            obs=obs,
            service_options=overrides or None,
        )

    @classmethod
    def _build_service(
        cls,
        service: Any,
        obs: Optional[Any],
        overrides: Dict[str, Any],
    ) -> Any:
        import dataclasses as _dataclasses

        from repro.vserver.service import (
            ServiceConfig,
            build_service_scenario,
        )

        if service is True:
            built = ServiceConfig.parse("smoke")
        elif isinstance(service, str):
            built = ServiceConfig.parse(service)
        elif isinstance(service, ServiceConfig):
            built = service
        else:
            raise ConfigurationError(
                "service must be a ServiceConfig, preset/DSL string, "
                "or True for the smoke preset"
            )
        if overrides:
            built = _dataclasses.replace(built, **overrides)
        return build_service_scenario(built, obs=obs)

    @classmethod
    def build(
        cls,
        mechanism: str = "smart",
        malware: str = "none",
        faults: Optional[Any] = None,
        workload: Optional[str] = None,
        *,
        config: Optional[ScenarioConfig] = None,
        seed: int = 7,
        retry: Optional[RetryPolicy] = None,
        outcomes: Optional[OutcomeReport] = None,
        sim: Optional[Simulator] = None,
        obs: Optional[Any] = None,
        trace: Optional[Any] = None,
        network: bool = True,
        latency: float = 0.002,
        layout: Optional[str] = "standard",
        code_fraction: float = 0.5,
        measurement_config: Optional[MeasurementConfig] = None,
        signing: Optional[Any] = None,
        fault_seed: Optional[bytes] = None,
        malware_options: Optional[Dict[str, Any]] = None,
        seed_options: Optional[Dict[str, Any]] = None,
        workload_options: Optional[Dict[str, Any]] = None,
        digest_cache: Any = None,
        service: Optional[Any] = None,
        service_options: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Wire one complete scenario; see the module docstring for the
        canonical order.  ``faults`` accepts a :class:`FaultPlan` or the
        DSL string form; ``mechanism`` is any ``standard_mechanisms()``
        key plus ``"none"`` and ``"seed"``.  ``digest_cache`` accepts a
        :class:`~repro.perf.digest_cache.DigestCache`, ``True`` for a
        default-sized one, or ``None``/``False`` (the default) for the
        seed-identical uncached path; sim-time is identical either way
        (docs/performance.md).

        ``service`` switches to the population-scale served-verifier
        stack (the ``vserver`` layer): pass a
        :class:`~repro.vserver.service.ServiceConfig`, a preset/DSL
        string (``"smoke"``, ``"preset=storm1k;batch=off"``), or
        ``True`` for the smoke preset, plus ``service_options`` to
        replace individual config fields.  That form returns a
        :class:`~repro.vserver.service.ServiceScenario` (a population
        has no single device/channel), accepts only ``obs=`` from the
        single-device parameter set, and rejects the rest.
        """
        if service is not None:
            single_device_args = {
                "mechanism": mechanism != "smart",
                "malware": malware != "none",
                "faults": faults is not None,
                "workload": workload is not None,
                "config": config is not None,
                "seed": seed != 7,
                "retry": retry is not None,
                "outcomes": outcomes is not None,
                "sim": sim is not None,
                "trace": trace is not None,
                "network": network is not True,
                "latency": latency != 0.002,
                "layout": layout != "standard",
                "code_fraction": code_fraction != 0.5,
                "measurement_config": measurement_config is not None,
                "signing": signing is not None,
                "fault_seed": fault_seed is not None,
                "malware_options": malware_options is not None,
                "seed_options": seed_options is not None,
                "workload_options": workload_options is not None,
                "digest_cache": digest_cache not in (None, False),
            }
            passed = sorted(k for k, v in single_device_args.items() if v)
            if passed:
                raise ConfigurationError(
                    "service= builds the population-scale vserver stack "
                    "and takes only obs=/service_options=; incompatible "
                    f"argument(s): {', '.join(passed)}"
                )
            return cls._build_service(service, obs, service_options or {})
        if service_options:
            raise ConfigurationError("service_options= requires service=")
        config = config or ScenarioConfig()
        setups = standard_mechanisms()
        if mechanism not in setups and mechanism not in EXTRA_MECHANISMS:
            raise ConfigurationError(f"unknown mechanism {mechanism!r}")

        # fault plan + degradation ledger (both inert when unused)
        plan: Optional[FaultPlan] = None
        if isinstance(faults, FaultPlan):
            plan = faults
        elif isinstance(faults, str):
            plan = FaultPlan.parse(
                faults,
                seed=fault_seed or f"scenario-{seed}".encode(),
            )
            if plan.empty:
                plan = None
        elif faults is not None:
            raise ConfigurationError(
                "faults must be a FaultPlan or DSL string"
            )
        if outcomes is None and (retry is not None or plan is not None):
            outcomes = OutcomeReport()

        if digest_cache is True:
            digest_cache = DigestCache()
        elif digest_cache is False:
            digest_cache = None

        # sim -> device (+layout) -> channel -> attach -> enroll
        if sim is None:
            sim = Simulator(obs=obs) if obs is not None else Simulator()
        device = Device(
            sim,
            block_count=config.block_count,
            block_size=config.block_size,
            sim_block_size=config.sim_block_size,
            seed=seed,
            digest_cache=digest_cache,
            **({"trace": trace} if trace is not None else {}),
        )
        if layout == "standard":
            device.standard_layout(code_fraction=code_fraction)
        elif layout is not None:
            raise ConfigurationError(f"unknown layout {layout!r}")
        channel = None
        if network:
            channel = Channel(sim, latency=latency, trace=device.trace)
            device.attach_network(channel)
        verifier = Verifier(sim)
        verifier.enroll(device, signing=signing)

        scenario = cls(
            mechanism=mechanism,
            sim=sim,
            device=device,
            channel=channel,
            verifier=verifier,
            config=config,
            retry=retry,
            outcomes=outcomes,
            fault_plan=plan,
            digest_cache=digest_cache,
        )

        # workload -> malware -> mechanism
        cls._install_workload(scenario, workload, workload_options or {})
        scenario.malware = cls._install_malware(
            device, malware, config, malware_options or {}
        )
        cls._install_mechanism(
            scenario, setups, measurement_config, seed_options or {}
        )

        # faults last: the injector filters a fully-wired channel, and
        # reset/drift events land after every service's own start events
        if plan is not None and not plan.empty:
            scenario.injector = plan.install(
                channel=channel, device=device, outcomes=outcomes
            )
        return scenario

    # -- wiring helpers ----------------------------------------------------

    @staticmethod
    def _install_workload(
        scenario: "Scenario", workload: Optional[str],
        options: Dict[str, Any],
    ) -> None:
        config = scenario.config
        device = scenario.device
        if workload is None or workload == "none":
            return
        if workload == "firealarm":
            app = FireAlarmApp(
                device,
                period=options.get("period", config.task_period),
                sample_wcet=options.get("wcet", config.task_wcet),
                priority=options.get("priority", config.task_priority),
                data_block=options.get(
                    "data_block", device.memory.regions["data"].end - 1
                ),
            )
            scenario.app = app
            scenario.tasks.append(app.task)
            return
        if workload == "writers":
            built = WriterWorkload(
                device,
                task_count=options.get("tasks", 4),
                period=options.get("period", config.task_period),
                wcet=options.get("wcet", config.task_wcet),
                priority=options.get("priority", config.task_priority),
            ).build()
            scenario.tasks.extend(built.tasks)
            return
        raise ConfigurationError(f"unknown workload {workload!r}")

    @staticmethod
    def _install_malware(
        device: Device, malware: str, config: ScenarioConfig,
        options: Dict[str, Any],
    ) -> Any:
        if malware == "none":
            return None
        block = options.get("block", config.malware_block)
        infect_at = options.get("infect_at", config.infect_at)
        if malware == "transient":
            dwell = options.get("dwell", 0.0)
            explicit_dwell = dwell > 0
            return TransientMalware(
                device,
                target_block=block,
                infect_at=infect_at,
                leave_at=infect_at + dwell if explicit_dwell else None,
                reactive=not explicit_dwell,
                reappear=not explicit_dwell,
            )
        if malware == "relocating":
            return SelfRelocatingMalware(
                device,
                target_block=block,
                infect_at=infect_at,
                strategy=options.get("strategy", "to-measured"),
                rng_seed=options.get("rng_seed", 99),
            )
        raise ConfigurationError(f"unknown malware {malware!r}")

    @classmethod
    def _install_mechanism(
        cls, scenario: "Scenario", setups: Dict[str, Any],
        measurement_config: Optional[MeasurementConfig],
        seed_options: Dict[str, Any],
    ) -> None:
        mechanism = scenario.mechanism
        if mechanism == "none":
            return
        device = scenario.device
        config = scenario.config
        if scenario.channel is None:
            raise ConfigurationError(
                f"mechanism {mechanism!r} needs network=True"
            )
        if mechanism == "seed":
            cls._install_seed(scenario, measurement_config, seed_options)
            return
        setup = setups[mechanism]
        if measurement_config is None:
            scenario.service = setup.build(device, config)
        elif setup.kind == "on-demand":
            scenario.service = AttestationService(
                device, measurement_config, mechanism=mechanism
            )
        else:
            scenario.service = ErasmusService(
                device, period=config.erasmus_period,
                config=measurement_config,
            )
        if setup.kind == "on-demand":
            scenario.rounds = setup.rounds
            scenario.driver = OnDemandVerifier(
                scenario.verifier, scenario.channel,
                retry=scenario.retry, outcomes=scenario.outcomes,
            )
            scenario.service.install()
        else:  # self-measurement (ERASMUS)
            scenario.collector = CollectorVerifier(
                scenario.verifier, scenario.channel, retry=scenario.retry
            )
            scenario.service.start()

    @staticmethod
    def _install_seed(
        scenario: "Scenario",
        measurement_config: Optional[MeasurementConfig],
        options: Dict[str, Any],
    ) -> None:
        device = scenario.device
        config = scenario.config
        shared = options.get("shared")
        if shared is None:
            shared = hashlib.sha256(
                f"scenario-seed-{device.name}".encode()
            ).digest()[:16]
        min_gap = options.get("min_gap", 0.5 * config.erasmus_period)
        max_gap = options.get("max_gap", 1.5 * config.erasmus_period)
        triggers = options.get(
            "trigger_count",
            max(1, int(config.horizon / config.erasmus_period)),
        )
        mp_config = measurement_config
        if mp_config is None:
            mp_config = MeasurementConfig(
                algorithm=config.algorithm,
                order="sequential",
                atomic=False,
                priority=config.mp_priority,
                normalize_mutable=True,
            )
        scenario.seed_service = SeedService(
            device,
            shared,
            min_gap=min_gap,
            max_gap=max_gap,
            trigger_count=triggers,
            config=mp_config,
            serve_fetch=options.get("serve_fetch", False),
        )
        scenario.seed_monitor = SeedMonitor(
            scenario.verifier, scenario.channel, device.name, shared,
            min_gap=min_gap, max_gap=max_gap, trigger_count=triggers,
            catch_up=options.get("catch_up", False),
        )
        scenario.seed_service.start()
        scenario.service = scenario.seed_service
