"""Figure 2 curve properties: anchors, crossovers, slopes.

Everything the paper *says about* Figure 2 is a checkable property of
the calibrated timing model:

* "about 0.9 sec to measure just 100MB" and "2GB ... nearly 14 sec"
  (the two anchors);
* "for input sizes over 1MB, MP takes longer than 0.01sec, and the
  cost of most signature algorithms become comparatively
  insignificant" (the crossover region);
* hash curves are straight lines of slope 1 on a log-log plot above
  the fixed-cost knee; signature curves are flat until hashing takes
  over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.timing import (
    HASH_NAMES,
    SIGNATURE_NAMES,
    OdroidXU4Model,
    TimingModel,
    figure2_sizes,
)
from repro.units import GiB, MiB, format_size, format_time


@dataclass(frozen=True)
class Anchor:
    """One in-text claim about Figure 2."""

    description: str
    observed: float
    expected: float
    tolerance: float  # relative

    @property
    def holds(self) -> bool:
        if self.expected == 0:
            return self.observed == 0
        return abs(self.observed - self.expected) / self.expected <= (
            self.tolerance
        )


def anchor_report(model: Optional[TimingModel] = None) -> List[Anchor]:
    """Check the Section 2.4 in-text numbers against the model."""
    model = model or OdroidXU4Model()
    best_hash = min(
        HASH_NAMES, key=lambda name: model.hash_time(name, GiB)
    )
    return [
        Anchor(
            "hashing 100 MB takes about 0.9 s (SHA-256)",
            observed=model.hash_time("sha256", 100 * 10**6),
            expected=0.9,
            tolerance=0.15,
        ),
        Anchor(
            "hashing all 2 GB of RAM takes nearly 14 s (fastest hash)",
            observed=model.hash_time(best_hash, 2 * GiB),
            expected=14.0,
            tolerance=0.15,
        ),
        Anchor(
            "MP over 1 MB takes longer than 0.01 s",
            observed=model.hash_time("sha256", MiB),
            expected=0.0094,
            tolerance=0.25,
        ),
        Anchor(
            "the 1 GB fire-alarm measurement runs approximately 7 s",
            observed=model.hash_time(best_hash, GiB),
            expected=7.0,
            tolerance=0.15,
        ),
    ]


def crossover_table(
    model: Optional[TimingModel] = None,
) -> Dict[Tuple[str, str], float]:
    """Input size where hashing overtakes each signature's fixed cost.

    The paper: "for any signature algorithm, there is a point at which
    the cost of hashing exceeds that of signing."
    """
    model = model or OdroidXU4Model()
    table: Dict[Tuple[str, str], float] = {}
    for hash_name in HASH_NAMES:
        for signature in SIGNATURE_NAMES:
            table[(hash_name, signature)] = model.crossover_size(
                hash_name, signature
            )
    return table


def sweep_series(
    model: Optional[TimingModel] = None,
    sizes: Optional[List[int]] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """All ten Figure 2 curves as (size, seconds) series."""
    model = model or OdroidXU4Model()
    sizes = sizes if sizes is not None else figure2_sizes()
    series: Dict[str, List[Tuple[int, float]]] = {}
    for hash_name in HASH_NAMES:
        series[hash_name] = model.sweep(sizes, hash_algorithm=hash_name)
    for signature in SIGNATURE_NAMES:
        series[signature] = model.sweep(
            sizes, hash_algorithm="sha256", signature=signature
        )
    return series


def loglog_slope(series: List[Tuple[int, float]],
                 low: int, high: int) -> float:
    """Log-log slope of a curve between two sizes (1.0 = linear)."""
    import math

    def value_at(target: int) -> float:
        best = min(series, key=lambda point: abs(point[0] - target))
        return best[1]

    t_low, t_high = value_at(low), value_at(high)
    return math.log(t_high / t_low) / math.log(high / low)


def render_series(series: Dict[str, List[Tuple[int, float]]],
                  sizes: Optional[List[int]] = None) -> str:
    """Figure 2 as an aligned text table (sizes down, algorithms across)."""
    names = list(series)
    if sizes is None:
        sizes = [point[0] for point in series[names[0]]]
    header = f"{'size':>10} " + " ".join(f"{name:>10}" for name in names)
    lines = [header, "-" * len(header)]
    for index, size in enumerate(sizes):
        cells = []
        for name in names:
            cells.append(f"{format_time(series[name][index][1]):>10}")
        lines.append(f"{format_size(size):>10} " + " ".join(cells))
    return "\n".join(lines)
