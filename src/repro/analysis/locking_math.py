"""Expected write-delay models for the locking mechanisms (Section 3.1).

A writer that targets block ``b`` at a uniformly random instant inside
the measurement window ``[t_s, t_e]`` is delayed until ``b`` unlocks.
With a sequential traversal of ``n`` equal blocks each taking ``d``
seconds (total ``T = n*d``), block ``b`` (0-indexed, in traversal
order) is:

* **All-Lock**: locked for the whole window -- expected residual delay
  ``T/2`` regardless of ``b`` (and ``t_r - arrival`` for the extended
  variant);
* **Dec-Lock**: locked during ``[t_s, t_s + (b+1) d]`` -- early blocks
  free up quickly, late blocks wait;
* **Inc-Lock**: locked during ``[t_s + b d, t_e]`` -- *late* blocks are
  locked briefly, which is why Inc-Lock should "end ... with blocks
  that require high availability";
* **No-Lock / SMARM**: never locked, zero delay.

These close forms calibrate the locking ablation bench and are checked
against simulation in the tests.
"""

from __future__ import annotations

from repro.errors import ParameterError


def _validate(n_blocks: int, block_position: int, block_time: float) -> None:
    if n_blocks < 1:
        raise ParameterError("need at least one block")
    if not 0 <= block_position < n_blocks:
        raise ParameterError("block_position out of range")
    if block_time <= 0:
        raise ParameterError("block_time must be positive")


def lock_exposure(policy: str, n_blocks: int, block_position: int,
                  block_time: float) -> float:
    """Seconds block ``block_position`` spends locked during one
    measurement under ``policy``."""
    _validate(n_blocks, block_position, block_time)
    total = n_blocks * block_time
    if policy == "no-lock":
        return 0.0
    if policy == "all-lock":
        return total
    if policy == "dec-lock":
        return (block_position + 1) * block_time
    if policy == "inc-lock":
        return total - block_position * block_time
    raise ParameterError(f"unknown policy {policy!r}")


def expected_block_delay(policy: str, n_blocks: int, block_position: int,
                         block_time: float) -> float:
    """Expected wait of a write arriving uniformly inside [t_s, t_e].

    For a block locked during a sub-interval of length ``L`` inside a
    window of length ``T``, a uniform arrival lands inside the locked
    interval with probability ``L/T`` and then waits for the remaining
    lock time, uniform over [0, L]: expected delay = L^2 / (2 T).
    """
    _validate(n_blocks, block_position, block_time)
    total = n_blocks * block_time
    locked = lock_exposure(policy, n_blocks, block_position, block_time)
    return locked * locked / (2.0 * total)


def mean_delay_over_blocks(policy: str, n_blocks: int,
                           block_time: float) -> float:
    """Expected write delay averaged over a uniformly chosen block."""
    return sum(
        expected_block_delay(policy, n_blocks, position, block_time)
        for position in range(n_blocks)
    ) / n_blocks
