"""Closed forms for Quality of Attestation (Section 3.3, Figure 5).

Transient malware resides for ``dwell`` seconds; the prover
self-measures every ``T_M``; the verifier collects every ``T_C``.
Measurements are treated as instants (their duration is much smaller
than T_M in the regimes of interest; the simulator version relaxes
this).  Infection phase is uniform over the measurement period.
"""

from __future__ import annotations

from repro.errors import ParameterError


def detection_probability(dwell: float, t_m: float) -> float:
    """P(at least one measurement instant lands inside the residency).

    With measurements at ``k * T_M`` and a uniformly random infection
    phase, the residency interval of length ``dwell`` covers a grid
    point with probability ``min(1, dwell / T_M)``.
    """
    if dwell < 0:
        raise ParameterError("dwell must be non-negative")
    if t_m <= 0:
        raise ParameterError("T_M must be positive")
    return min(1.0, dwell / t_m)


def worst_detection_latency(t_m: float, t_c: float) -> float:
    """Worst case from infection start to verifier awareness.

    The first covering measurement can be up to T_M after infection
    start, and the collection conveying it up to T_C after that.
    """
    if t_m <= 0 or t_c <= 0:
        raise ParameterError("periods must be positive")
    return t_m + t_c


def expected_detection_latency(dwell: float, t_m: float,
                               t_c: float) -> float:
    """Expected infection-start-to-detection latency, *conditioned on
    detection*, for uniform phase.

    The covering measurement happens, in expectation, half a period
    after infection start when ``dwell >= T_M`` (the first grid point
    inside the interval is uniform over [0, T_M)); for shorter dwells
    the conditional offset is uniform over [0, dwell).  Collections add
    an independent uniform [0, T_C) wait.
    """
    if t_m <= 0 or t_c <= 0:
        raise ParameterError("periods must be positive")
    if dwell < 0:
        raise ParameterError("dwell must be non-negative")
    measurement_offset = min(dwell, t_m) / 2.0
    return measurement_offset + t_c / 2.0


def undetected_window_fraction(dwell: float, t_m: float) -> float:
    """Fraction of infections that fit entirely between measurements
    (Figure 5's 'Infection 1')."""
    return 1.0 - detection_probability(dwell, t_m)


def required_t_m(dwell: float, target_probability: float) -> float:
    """Largest T_M whose detection probability for ``dwell`` meets the
    target -- how the defender sizes the self-measurement period."""
    if not 0 < target_probability <= 1:
        raise ParameterError("target_probability must be in (0, 1]")
    if dwell <= 0:
        raise ParameterError("dwell must be positive")
    return dwell / target_probability
