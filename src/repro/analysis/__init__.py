"""Closed-form models the simulations are checked against.

* :mod:`repro.analysis.smarm_math` -- SMARM escape probabilities;
* :mod:`repro.analysis.qoa_math` -- transient-malware detection vs
  (T_M, dwell) and detection-latency distributions;
* :mod:`repro.analysis.locking_math` -- expected write-block delays
  under each locking policy;
* :mod:`repro.analysis.fig2_model` -- Figure 2 curve properties
  (crossovers, anchor points, log-log slopes).
"""

from repro.analysis.smarm_math import (
    single_round_escape,
    single_round_escape_limit,
    rounds_for_confidence,
    multi_round_escape,
)
from repro.analysis.qoa_math import (
    detection_probability,
    expected_detection_latency,
    worst_detection_latency,
)
from repro.analysis.locking_math import (
    expected_block_delay,
    lock_exposure,
)
from repro.analysis.fig2_model import (
    crossover_table,
    anchor_report,
    sweep_series,
)

__all__ = [
    "single_round_escape",
    "single_round_escape_limit",
    "rounds_for_confidence",
    "multi_round_escape",
    "detection_probability",
    "expected_detection_latency",
    "worst_detection_latency",
    "expected_block_delay",
    "lock_exposure",
    "crossover_table",
    "anchor_report",
    "sweep_series",
]
