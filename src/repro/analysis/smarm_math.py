"""SMARM escape probability, in closed form (Section 3.2, after [7]).

The game: memory has ``n`` blocks, measured once each in a secret
uniform order.  Malware occupies one block; before each block
measurement it may relocate.  With the uniform strategy (relocate to a
uniformly random block, the optimum established in [7] when only the
progress count is observable), each of the ``n`` block measurements
independently misses the malware with probability ``(n-1)/n``, so

    P(escape one measurement) = ((n-1)/n)^n  ->  e^-1  ~  0.368.

``k`` independent measurements multiply:

    P(escape k measurements) = (((n-1)/n)^n)^k  ~  e^-k,

hence the paper's "after 13 checks that probability is below 10^-6"
(e^-13 ~ 2.3e-6 with the limit value; the exact finite-n probability
for the block counts of real devices crosses 1e-6 at 13-14 rounds --
the benchmark prints the exact table).
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def single_round_escape(n_blocks: int, moves_per_block: int = 1) -> float:
    """Exact escape probability of the uniform strategy for ``n`` blocks.

    ``moves_per_block`` > 1 does not help the malware (each extra move
    re-randomizes an already-uniform position), so the value is
    independent of it; the parameter exists to mirror the simulation's
    signature and is validated by tests.
    """
    if n_blocks < 2:
        raise ParameterError("need at least 2 blocks for the game")
    if moves_per_block < 1:
        raise ParameterError("malware must move at least once per block")
    return ((n_blocks - 1) / n_blocks) ** n_blocks


def single_round_escape_limit() -> float:
    """The n -> infinity limit, e^-1."""
    return math.exp(-1.0)


def multi_round_escape(n_blocks: int, rounds: int) -> float:
    """Escape probability across ``rounds`` independent measurements."""
    if rounds < 0:
        raise ParameterError("rounds must be non-negative")
    return single_round_escape(n_blocks) ** rounds


def rounds_for_confidence(
    n_blocks: int, target_escape: float = 1e-6
) -> int:
    """Smallest round count whose residual escape probability is below
    ``target_escape``.

    For the e^-1 limit and 1e-6 this is ceil(6 ln 10) = 14; for finite
    n it is slightly smaller because ((n-1)/n)^n < e^-1.
    """
    if not 0 < target_escape < 1:
        raise ParameterError("target_escape must be in (0, 1)")
    per_round = single_round_escape(n_blocks)
    return math.ceil(math.log(target_escape) / math.log(per_round))


def stay_put_escape(n_blocks: int) -> float:
    """Escape probability of the 'stay' strategy: zero -- a full
    traversal always covers the resident block."""
    if n_blocks < 1:
        raise ParameterError("need at least 1 block")
    return 0.0


def move_once_escape(n_blocks: int) -> float:
    """Escape probability when malware relocates exactly once during
    the whole measurement, at a uniformly random boundary, to a
    uniformly random block.

    The move happens after ``j`` of ``n`` blocks are measured
    (j uniform on 0..n-1).  The original block survives the first j
    measurements of a uniform permutation with probability (n-j)/n;
    the uniform destination then escapes the remaining n-j
    measurements only if it lands among the already-measured j blocks,
    probability j/n.  Averaging over j:

        P = (1/n) * sum_{j=0}^{n-1} [(n-j)/n] * (j/n)

    which tends to 1/6 for large n -- strictly worse than the uniform
    per-block strategy's e^-1, illustrating why [7]'s optimal malware
    moves every block.  Validated by Monte-Carlo in
    :func:`repro.ra.smarm.move_once_escape_probability`.
    """
    if n_blocks < 2:
        raise ParameterError("need at least 2 blocks")
    n = n_blocks
    total = 0.0
    for j in range(n):
        survive_until_move = (n - j) / n
        land_safe = j / n
        total += survive_until_move * land_safe
    return total / n
