"""Telemetry clock: the one allowlisted wall-clock source.

Everything simulated must consume :attr:`repro.sim.engine.Simulator.now`
so traces replay identically from a seed.  Wall-clock time is still
legitimate *telemetry* -- shard wall-clock in the execution report,
``created_at`` in the campaign manifest -- but those reads are volatile
by definition and must never leak into canonical (deterministic)
artifacts.  Funnelling every such read through this module keeps the
boundary auditable: ``repro lint``'s ``det-wall-clock`` rule allows
wall-clock calls *only here* (see ``LintConfig.telemetry_allowlist``),
so a stray ``time.time()`` anywhere else in the stack is a lint error.

Call sites take an injectable ``clock: Callable[[], float]`` defaulting
to these functions, which keeps wall-clock-dependent code testable with
a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable

#: signature of an injectable clock
ClockFn = Callable[[], float]


def wall_time() -> float:
    """Seconds since the epoch -- manifest timestamps only."""
    return time.time()


def perf_time() -> float:
    """Monotonic high-resolution counter -- wall-clock telemetry only."""
    return time.perf_counter()


def monotonic_time() -> float:
    """Monotonic counter for wall-clock deadlines (spool polling,
    worker idle timeouts) -- never for anything that lands in
    canonical artifacts."""
    return time.monotonic()
