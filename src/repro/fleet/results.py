"""Campaign artifacts and aggregation.

One executed campaign lands on disk as::

    <out>/<campaign-name>/
        runs.jsonl      # one deterministic RunResult per line
        manifest.json   # machine-readable campaign manifest
        summary.json    # per-mechanism aggregate numbers
        summary.txt     # the same table, human-readable

``runs.jsonl`` holds only the deterministic projection of each result
(no wall clocks, no worker ids), so serial and parallel executions of
the same plan produce byte-identical files and artifacts diff cleanly
across machines.  The manifest carries the volatile side: wall-clock,
mode, worker count, status histogram.

The aggregator folds results into per-``(mechanism, adversary)``
summaries: detection rate and latency percentiles, deadline-miss
rates, QoA detection probabilities, measurement durations.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.campaign import CampaignSpec, RunSpec
from repro.fleet.clock import ClockFn, wall_time
from repro.fleet.telemetry import ExchangeSketch, RunResult, ValueSketch

MANIFEST_VERSION = 1


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); no numpy."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------


def write_results_jsonl(path: Any, results: Iterable[RunResult]) -> int:
    """Write deterministic JSONL; returns the number of lines.

    The whole file is serialized in memory and written with a single
    buffered ``write`` -- thousands of per-line syscalls were a
    measurable share of large-campaign artifact time, and one join
    produces the identical bytes.
    """
    lines = [result.to_json_line() for result in results]
    body = "\n".join(lines) + "\n" if lines else ""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return len(lines)


def read_results_jsonl(path: Any) -> List[RunResult]:
    results = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                results.append(RunResult.from_json_line(line))
    return results


def pending_specs(
    specs: Sequence[RunSpec], done: Iterable[RunResult]
) -> List[RunSpec]:
    """The subset of ``specs`` with no successful result yet -- the
    resume set.  Failed/timed-out runs are retried on resume."""
    finished = {result.run_id for result in done if result.ok}
    return [spec for spec in specs if spec.run_id not in finished]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class GroupSummary:
    """Aggregates over one (mechanism, adversary) cell.

    Every field is a bounded, merge-able partial: counters, running
    sums, and :class:`ValueSketch` distributions.  No per-run list is
    retained, so a cell's footprint is independent of how many runs
    fold into it, and two cells built from disjoint shard streams
    combine exactly via :meth:`merge`.
    """

    mechanism: str
    adversary: str
    runs: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    detected: int = 0
    #: bounded distribution of detection latencies across ok runs
    detection_latency: ValueSketch = field(default_factory=ValueSketch)
    #: running sum/count of per-run deadline-miss rates
    miss_rate_sum: float = 0.0
    miss_rate_count: int = 0
    worst_response: float = 0.0
    write_faults: int = 0
    #: running sum/count + bounded distribution of MP durations
    mp_duration: ValueSketch = field(default_factory=ValueSketch)
    #: running sum/count of QoA detection probabilities
    detection_probability_sum: float = 0.0
    detection_probability_count: int = 0
    #: summed sim-time metric snapshots (repro.obs) across ok runs
    telemetry_totals: Dict[str, float] = field(default_factory=dict)
    #: merged per-shard exchange sketches (span-enabled runs only);
    #: None until the first run contributes one, so default campaigns
    #: serialize exactly their historical summaries
    exchange_sketch: Optional[ExchangeSketch] = None
    #: distinct traces observed across contributing runs
    traces: int = 0
    #: SLO burn-rate alerts fired across contributing runs
    slo_alerts: int = 0
    #: runs whose SLO summary reported an unmet objective
    slo_violations: int = 0
    #: runs served from the incremental artifact cache; volatile, so
    #: excluded from the serialized summary (see :meth:`to_dict`)
    cache_hits: int = 0

    def fold(self, result: RunResult) -> None:
        """Fold one run's telemetry into this cell (streaming unit)."""
        self.runs += 1
        if result.status == "error":
            self.errors += 1
            return
        if result.status == "timeout":
            self.timeouts += 1
            return
        self.ok += 1
        if result.cache_hit:
            self.cache_hits += 1
        if result.detected:
            self.detected += 1
        if result.detection_latency is not None:
            self.detection_latency.observe(result.detection_latency)
        if result.availability is not None:
            self.miss_rate_sum += result.miss_rate
            self.miss_rate_count += 1
            self.worst_response = max(
                self.worst_response,
                result.availability.get("worst_response", 0.0),
            )
            self.write_faults += result.availability.get("write_faults", 0)
        if result.measurements:
            self.mp_duration.observe(result.mp_duration)
        probability = result.qoa.get("detection_probability")
        if probability is not None:
            self.detection_probability_sum += probability
            self.detection_probability_count += 1
        for name, value in result.telemetry.items():
            self.telemetry_totals[name] = (
                self.telemetry_totals.get(name, 0.0) + value
            )
        self.fold_trace_summary(result.trace_summary)
        self.fold_slo(result.slo)

    def merge(self, other: "GroupSummary") -> "GroupSummary":
        """Combine another cell's partials into this one.

        Associative and commutative up to float-addition rounding, so
        per-shard partial summaries reduce in any arrival order.
        """
        self.runs += other.runs
        self.ok += other.ok
        self.errors += other.errors
        self.timeouts += other.timeouts
        self.detected += other.detected
        self.detection_latency.merge(other.detection_latency)
        self.miss_rate_sum += other.miss_rate_sum
        self.miss_rate_count += other.miss_rate_count
        self.worst_response = max(self.worst_response, other.worst_response)
        self.write_faults += other.write_faults
        self.mp_duration.merge(other.mp_duration)
        self.detection_probability_sum += other.detection_probability_sum
        self.detection_probability_count += other.detection_probability_count
        for name, value in other.telemetry_totals.items():
            self.telemetry_totals[name] = (
                self.telemetry_totals.get(name, 0.0) + value
            )
        if other.exchange_sketch is not None:
            if self.exchange_sketch is None:
                self.exchange_sketch = ExchangeSketch.from_dict(
                    other.exchange_sketch.to_dict()
                )
            else:
                self.exchange_sketch.merge(other.exchange_sketch)
        self.traces += other.traces
        self.slo_alerts += other.slo_alerts
        self.slo_violations += other.slo_violations
        self.cache_hits += other.cache_hits
        return self

    def fold_trace_summary(self, summary: Dict[str, Any]) -> None:
        """Merge one run's ``trace_summary`` without rehydrating spans."""
        if not summary:
            return
        self.traces += int(summary.get("traces", 0))
        exchanges = summary.get("exchanges")
        if exchanges:
            sketch = ExchangeSketch.from_dict(exchanges)
            if self.exchange_sketch is None:
                self.exchange_sketch = sketch
            else:
                self.exchange_sketch.merge(sketch)

    def fold_slo(self, slo: Dict[str, Any]) -> None:
        if not slo:
            return
        self.slo_alerts += sum(
            1 for alert in slo.get("alerts", ())
            if alert.get("transition") == "firing"
        )
        if any(
            not objective.get("met", True)
            for objective in slo.get("objectives", {}).values()
        ):
            self.slo_violations += 1

    @property
    def detection_rate(self) -> float:
        return self.detected / self.ok if self.ok else 0.0

    @property
    def mean_miss_rate(self) -> float:
        if not self.miss_rate_count:
            return 0.0
        return self.miss_rate_sum / self.miss_rate_count

    @property
    def mean_mp_duration(self) -> float:
        return self.mp_duration.mean

    @property
    def mean_detection_probability(self) -> float:
        if not self.detection_probability_count:
            return 0.0
        return self.detection_probability_sum / self.detection_probability_count

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.detection_latency.count:
            return {}
        return {
            f"p{q}": self.detection_latency.quantile(q / 100.0)
            for q in (50, 90, 99)
        }

    def to_dict(self) -> Dict[str, Any]:
        # built explicitly (not via asdict) because the sketches
        # serialize through their own canonical form; optional keys
        # appear only when traced/SLO runs contributed, so untraced
        # campaigns keep their historical summary shape.  cache_hits
        # is volatile (depends on what happened to be in the artifact
        # cache), so a full run and an incremental re-run serialize
        # identical summaries.
        data: Dict[str, Any] = {
            "mechanism": self.mechanism,
            "adversary": self.adversary,
            "runs": self.runs,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "detected": self.detected,
            "worst_response": self.worst_response,
            "write_faults": self.write_faults,
        }
        for optional, value in (
            ("traces", self.traces),
            ("slo_alerts", self.slo_alerts),
            ("slo_violations", self.slo_violations),
        ):
            if value:
                data[optional] = value
        if self.exchange_sketch is not None and self.exchange_sketch.count:
            data["exchanges"] = self.exchange_sketch.to_dict()
        if self.detection_latency.count:
            data["detection_latency"] = self.detection_latency.to_dict()
        data["detection_rate"] = self.detection_rate
        data["mean_miss_rate"] = self.mean_miss_rate
        data["latency_percentiles"] = self.latency_percentiles()
        data["telemetry_totals"] = dict(
            sorted(self.telemetry_totals.items())
        )
        data["mean_mp_duration"] = self.mean_mp_duration
        return data


@dataclass
class CampaignSummary:
    """All group summaries for one campaign's results."""

    campaign: str
    groups: Dict[Tuple[str, str], GroupSummary]
    total_runs: int

    def group(self, mechanism: str, adversary: str) -> GroupSummary:
        return self.groups[(mechanism, adversary)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total_runs": self.total_runs,
            "groups": [
                self.groups[key].to_dict() for key in sorted(self.groups)
            ],
        }

    def render(self) -> str:
        header = (
            f"{'mechanism':<10} {'adversary':<11} {'runs':>5} {'ok':>4} "
            f"{'err':>4} {'t/o':>4} {'detect':>7} {'lat p50':>9} "
            f"{'lat p90':>9} {'miss%':>7} {'mp[s]':>8}"
        )
        lines = [f"campaign {self.campaign}: {self.total_runs} runs",
                 header, "-" * len(header)]
        for key in sorted(self.groups):
            g = self.groups[key]
            pcts = g.latency_percentiles()
            p50 = f"{pcts['p50']:9.3f}" if pcts else "        -"
            p90 = f"{pcts['p90']:9.3f}" if pcts else "        -"
            mp = (
                f"{g.mean_mp_duration:8.3f}"
                if g.mp_duration.count
                else "       -"
            )
            lines.append(
                f"{g.mechanism:<10} {g.adversary:<11} {g.runs:>5} "
                f"{g.ok:>4} {g.errors:>4} {g.timeouts:>4} "
                f"{g.detection_rate:>6.0%} {p50} {p90} "
                f"{g.mean_miss_rate:>6.1%} {mp}"
            )
        return "\n".join(lines)


class StreamingAggregator:
    """Memory-bounded reducer over a stream of :class:`RunResult`.

    The *reduce* stage of the campaign pipeline: results fold one at a
    time into per-(mechanism, adversary) :class:`GroupSummary` cells
    and a status histogram; nothing per-run is retained, so peak
    memory is a function of cell count, never run count.  Whole
    aggregators combine via :meth:`merge` -- the unit of cross-shard
    (or cross-host) reduction.

    :func:`summarize` is this class applied to an in-RAM batch, which
    is what makes the streaming and batch paths byte-identical when
    fed the same result order.
    """

    def __init__(self, campaign: str = "") -> None:
        self.campaign = campaign
        self.total = 0
        self.groups: Dict[Tuple[str, str], GroupSummary] = {}
        self.status_counts: Dict[str, int] = {}

    def add(self, result: RunResult) -> None:
        self.total += 1
        self.status_counts[result.status] = (
            self.status_counts.get(result.status, 0) + 1
        )
        mechanism = str(result.spec.get("mechanism", "?"))
        adversary = str(result.spec.get("adversary", "?"))
        self.campaign = self.campaign or str(result.spec.get("campaign", ""))
        key = (mechanism, adversary)
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupSummary(mechanism, adversary)
        group.fold(result)

    def merge(self, other: "StreamingAggregator") -> "StreamingAggregator":
        self.total += other.total
        self.campaign = self.campaign or other.campaign
        for status, count in other.status_counts.items():
            self.status_counts[status] = (
                self.status_counts.get(status, 0) + count
            )
        for key, group in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = mine = GroupSummary(key[0], key[1])
            mine.merge(group)
        return self

    def summary(self) -> CampaignSummary:
        return CampaignSummary(
            campaign=self.campaign,
            groups=self.groups,
            total_runs=self.total,
        )


def summarize(
    results: Iterable[RunResult], campaign: str = ""
) -> CampaignSummary:
    """Fold run results into per-(mechanism, adversary) summaries."""
    aggregator = StreamingAggregator(campaign)
    for result in results:
        aggregator.add(result)
    return aggregator.summary()


# ---------------------------------------------------------------------------
# Manifest + artifact layout
# ---------------------------------------------------------------------------


@dataclass
class CampaignManifest:
    """Machine-readable record of one campaign execution."""

    version: int
    campaign: str
    spec_hash: str
    run_count: int
    status_counts: Dict[str, int]
    mode: str
    workers: int
    shard_count: int
    degraded_shards: int
    wall_clock: float
    created_at: float
    artifacts: Dict[str, str]
    #: fingerprint of the ``repro`` source tree that produced the
    #: results -- the incremental cache refuses to reuse artifacts
    #: written by different code (``""`` on manifests that predate it)
    code_fingerprint: str = ""
    #: how many of ``run_count`` were served from the artifact cache
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignManifest":
        # Tolerant of both older manifests (missing the newer optional
        # fields) and newer ones (unknown keys are dropped), so mixed
        # artifact directories stay readable.
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ArtifactPaths:
    root: Path
    runs: Path
    manifest: Path
    summary_json: Path
    summary_txt: Path


def artifact_paths(out_dir: Any, campaign_name: str) -> ArtifactPaths:
    root = Path(out_dir) / campaign_name
    return ArtifactPaths(
        root=root,
        runs=root / "runs.jsonl",
        manifest=root / "manifest.json",
        summary_json=root / "summary.json",
        summary_txt=root / "summary.txt",
    )


def write_artifacts(
    out_dir: Any,
    campaign_spec: CampaignSpec,
    results: Sequence[RunResult],
    execution: Optional[Any] = None,
    clock: Optional[ClockFn] = None,
    code_fingerprint: Optional[str] = None,
) -> ArtifactPaths:
    """Write the full artifact set for one executed campaign.

    ``execution`` is an :class:`~repro.fleet.executor.ExecutionReport`
    (or None when summarizing pre-existing results); only the manifest
    consumes it.  ``clock`` overrides the telemetry wall clock that
    stamps the manifest's ``created_at`` (tests inject a fixed one;
    the stamp is volatile and never part of canonical artifacts).
    ``code_fingerprint`` identifies the source tree that produced the
    results; when ``None`` it is computed here, so *every* artifact
    directory is eligible for a later ``--incremental`` pass, not only
    ones written by an incremental run.
    """
    paths = artifact_paths(out_dir, campaign_spec.name)
    paths.root.mkdir(parents=True, exist_ok=True)

    ordered = sorted(results, key=lambda r: r.run_id)
    write_results_jsonl(paths.runs, ordered)

    summary = summarize(ordered, campaign=campaign_spec.name)
    paths.summary_txt.write_text(summary.render() + "\n", encoding="utf-8")
    paths.summary_json.write_text(
        json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    if code_fingerprint is None:
        from repro.fleet.store import source_fingerprint

        code_fingerprint = source_fingerprint()

    status_counts: Dict[str, int] = {}
    for result in ordered:
        status_counts[result.status] = status_counts.get(result.status, 0) + 1
    manifest = CampaignManifest(
        version=MANIFEST_VERSION,
        campaign=campaign_spec.name,
        spec_hash=campaign_spec.spec_hash,
        run_count=len(ordered),
        status_counts=status_counts,
        mode=getattr(execution, "mode", "external"),
        workers=getattr(execution, "workers", 0),
        shard_count=getattr(execution, "shard_count", 0),
        degraded_shards=getattr(execution, "degraded_shards", 0),
        wall_clock=getattr(execution, "wall_clock", 0.0),
        created_at=(clock or wall_time)(),
        artifacts={
            "runs": paths.runs.name,
            "summary_json": paths.summary_json.name,
            "summary_txt": paths.summary_txt.name,
        },
        code_fingerprint=code_fingerprint,
        cache_hits=sum(1 for result in ordered if result.cache_hit),
    )
    paths.manifest.write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return paths


def read_manifest(path: Any) -> CampaignManifest:
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignManifest.from_dict(json.load(handle))
