"""Campaign artifacts and aggregation.

One executed campaign lands on disk as::

    <out>/<campaign-name>/
        runs.jsonl      # one deterministic RunResult per line
        manifest.json   # machine-readable campaign manifest
        summary.json    # per-mechanism aggregate numbers
        summary.txt     # the same table, human-readable

``runs.jsonl`` holds only the deterministic projection of each result
(no wall clocks, no worker ids), so serial and parallel executions of
the same plan produce byte-identical files and artifacts diff cleanly
across machines.  The manifest carries the volatile side: wall-clock,
mode, worker count, status histogram.

The aggregator folds results into per-``(mechanism, adversary)``
summaries: detection rate and latency percentiles, deadline-miss
rates, QoA detection probabilities, measurement durations.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.campaign import CampaignSpec, RunSpec
from repro.fleet.clock import ClockFn, wall_time
from repro.fleet.telemetry import ExchangeSketch, RunResult

MANIFEST_VERSION = 1


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); no numpy."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------


def write_results_jsonl(path: Any, results: Iterable[RunResult]) -> int:
    """Write deterministic JSONL; returns the number of lines.

    The whole file is serialized in memory and written with a single
    buffered ``write`` -- thousands of per-line syscalls were a
    measurable share of large-campaign artifact time, and one join
    produces the identical bytes.
    """
    lines = [result.to_json_line() for result in results]
    body = "\n".join(lines) + "\n" if lines else ""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return len(lines)


def read_results_jsonl(path: Any) -> List[RunResult]:
    results = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                results.append(RunResult.from_json_line(line))
    return results


def pending_specs(
    specs: Sequence[RunSpec], done: Iterable[RunResult]
) -> List[RunSpec]:
    """The subset of ``specs`` with no successful result yet -- the
    resume set.  Failed/timed-out runs are retried on resume."""
    finished = {result.run_id for result in done if result.ok}
    return [spec for spec in specs if spec.run_id not in finished]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class GroupSummary:
    """Aggregates over one (mechanism, adversary) cell."""

    mechanism: str
    adversary: str
    runs: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    detected: int = 0
    detection_latencies: List[float] = field(default_factory=list)
    miss_rates: List[float] = field(default_factory=list)
    worst_response: float = 0.0
    write_faults: int = 0
    mp_durations: List[float] = field(default_factory=list)
    detection_probabilities: List[float] = field(default_factory=list)
    #: summed sim-time metric snapshots (repro.obs) across ok runs
    telemetry_totals: Dict[str, float] = field(default_factory=dict)
    #: merged per-shard exchange sketches (span-enabled runs only);
    #: None until the first run contributes one, so default campaigns
    #: serialize exactly their historical summaries
    exchange_sketch: Optional[ExchangeSketch] = None
    #: distinct traces observed across contributing runs
    traces: int = 0
    #: SLO burn-rate alerts fired across contributing runs
    slo_alerts: int = 0
    #: runs whose SLO summary reported an unmet objective
    slo_violations: int = 0
    #: runs served from the incremental artifact cache; volatile, so
    #: excluded from the serialized summary (see :meth:`to_dict`)
    cache_hits: int = 0

    def fold_trace_summary(self, summary: Dict[str, Any]) -> None:
        """Merge one run's ``trace_summary`` without rehydrating spans."""
        if not summary:
            return
        self.traces += int(summary.get("traces", 0))
        exchanges = summary.get("exchanges")
        if exchanges:
            sketch = ExchangeSketch.from_dict(exchanges)
            if self.exchange_sketch is None:
                self.exchange_sketch = sketch
            else:
                self.exchange_sketch.merge(sketch)

    def fold_slo(self, slo: Dict[str, Any]) -> None:
        if not slo:
            return
        self.slo_alerts += sum(
            1 for alert in slo.get("alerts", ())
            if alert.get("transition") == "firing"
        )
        if any(
            not objective.get("met", True)
            for objective in slo.get("objectives", {}).values()
        ):
            self.slo_violations += 1

    @property
    def detection_rate(self) -> float:
        return self.detected / self.ok if self.ok else 0.0

    @property
    def mean_miss_rate(self) -> float:
        if not self.miss_rates:
            return 0.0
        return sum(self.miss_rates) / len(self.miss_rates)

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.detection_latencies:
            return {}
        return {
            f"p{q}": percentile(self.detection_latencies, q)
            for q in (50, 90, 99)
        }

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        # the sketch serializes through its own canonical form; keys
        # appear only when traced runs contributed, so untraced
        # campaigns keep their historical summary bytes
        data.pop("exchange_sketch", None)
        for optional in ("traces", "slo_alerts", "slo_violations"):
            if not data.get(optional):
                data.pop(optional, None)
        if self.exchange_sketch is not None and self.exchange_sketch.count:
            data["exchanges"] = self.exchange_sketch.to_dict()
        data["detection_rate"] = self.detection_rate
        data["mean_miss_rate"] = self.mean_miss_rate
        data["latency_percentiles"] = self.latency_percentiles()
        data["telemetry_totals"] = dict(
            sorted(self.telemetry_totals.items())
        )
        data["mean_mp_duration"] = (
            sum(self.mp_durations) / len(self.mp_durations)
            if self.mp_durations
            else 0.0
        )
        # raw per-run lists are bulky; the summary keeps distributions.
        # cache_hits is volatile (depends on what happened to be in the
        # artifact cache), so a full run and an incremental re-run must
        # serialize identical summaries.
        for bulky in ("detection_latencies", "mp_durations",
                      "miss_rates", "detection_probabilities",
                      "cache_hits"):
            data.pop(bulky, None)
        return data


@dataclass
class CampaignSummary:
    """All group summaries for one campaign's results."""

    campaign: str
    groups: Dict[Tuple[str, str], GroupSummary]
    total_runs: int

    def group(self, mechanism: str, adversary: str) -> GroupSummary:
        return self.groups[(mechanism, adversary)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total_runs": self.total_runs,
            "groups": [
                self.groups[key].to_dict() for key in sorted(self.groups)
            ],
        }

    def render(self) -> str:
        header = (
            f"{'mechanism':<10} {'adversary':<11} {'runs':>5} {'ok':>4} "
            f"{'err':>4} {'t/o':>4} {'detect':>7} {'lat p50':>9} "
            f"{'lat p90':>9} {'miss%':>7} {'mp[s]':>8}"
        )
        lines = [f"campaign {self.campaign}: {self.total_runs} runs",
                 header, "-" * len(header)]
        for key in sorted(self.groups):
            g = self.groups[key]
            pcts = g.latency_percentiles()
            p50 = f"{pcts['p50']:9.3f}" if pcts else "        -"
            p90 = f"{pcts['p90']:9.3f}" if pcts else "        -"
            mp = (
                f"{sum(g.mp_durations) / len(g.mp_durations):8.3f}"
                if g.mp_durations
                else "       -"
            )
            lines.append(
                f"{g.mechanism:<10} {g.adversary:<11} {g.runs:>5} "
                f"{g.ok:>4} {g.errors:>4} {g.timeouts:>4} "
                f"{g.detection_rate:>6.0%} {p50} {p90} "
                f"{g.mean_miss_rate:>6.1%} {mp}"
            )
        return "\n".join(lines)


def summarize(
    results: Iterable[RunResult], campaign: str = ""
) -> CampaignSummary:
    """Fold run results into per-(mechanism, adversary) summaries."""
    groups: Dict[Tuple[str, str], GroupSummary] = {}
    total = 0
    for result in results:
        total += 1
        mechanism = str(result.spec.get("mechanism", "?"))
        adversary = str(result.spec.get("adversary", "?"))
        campaign = campaign or str(result.spec.get("campaign", ""))
        key = (mechanism, adversary)
        group = groups.get(key)
        if group is None:
            group = groups[key] = GroupSummary(mechanism, adversary)
        group.runs += 1
        if result.status == "error":
            group.errors += 1
            continue
        if result.status == "timeout":
            group.timeouts += 1
            continue
        group.ok += 1
        if result.cache_hit:
            group.cache_hits += 1
        if result.detected:
            group.detected += 1
        if result.detection_latency is not None:
            group.detection_latencies.append(result.detection_latency)
        if result.availability is not None:
            group.miss_rates.append(result.miss_rate)
            group.worst_response = max(
                group.worst_response,
                result.availability.get("worst_response", 0.0),
            )
            group.write_faults += result.availability.get("write_faults", 0)
        if result.measurements:
            group.mp_durations.append(result.mp_duration)
        probability = result.qoa.get("detection_probability")
        if probability is not None:
            group.detection_probabilities.append(probability)
        for name, value in result.telemetry.items():
            group.telemetry_totals[name] = (
                group.telemetry_totals.get(name, 0.0) + value
            )
        group.fold_trace_summary(result.trace_summary)
        group.fold_slo(result.slo)
    return CampaignSummary(
        campaign=campaign, groups=groups, total_runs=total
    )


# ---------------------------------------------------------------------------
# Manifest + artifact layout
# ---------------------------------------------------------------------------


@dataclass
class CampaignManifest:
    """Machine-readable record of one campaign execution."""

    version: int
    campaign: str
    spec_hash: str
    run_count: int
    status_counts: Dict[str, int]
    mode: str
    workers: int
    shard_count: int
    degraded_shards: int
    wall_clock: float
    created_at: float
    artifacts: Dict[str, str]
    #: fingerprint of the ``repro`` source tree that produced the
    #: results -- the incremental cache refuses to reuse artifacts
    #: written by different code (``""`` on manifests that predate it)
    code_fingerprint: str = ""
    #: how many of ``run_count`` were served from the artifact cache
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignManifest":
        # Tolerant of both older manifests (missing the newer optional
        # fields) and newer ones (unknown keys are dropped), so mixed
        # artifact directories stay readable.
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ArtifactPaths:
    root: Path
    runs: Path
    manifest: Path
    summary_json: Path
    summary_txt: Path


def artifact_paths(out_dir: Any, campaign_name: str) -> ArtifactPaths:
    root = Path(out_dir) / campaign_name
    return ArtifactPaths(
        root=root,
        runs=root / "runs.jsonl",
        manifest=root / "manifest.json",
        summary_json=root / "summary.json",
        summary_txt=root / "summary.txt",
    )


def write_artifacts(
    out_dir: Any,
    campaign_spec: CampaignSpec,
    results: Sequence[RunResult],
    execution: Optional[Any] = None,
    clock: Optional[ClockFn] = None,
    code_fingerprint: Optional[str] = None,
) -> ArtifactPaths:
    """Write the full artifact set for one executed campaign.

    ``execution`` is an :class:`~repro.fleet.executor.ExecutionReport`
    (or None when summarizing pre-existing results); only the manifest
    consumes it.  ``clock`` overrides the telemetry wall clock that
    stamps the manifest's ``created_at`` (tests inject a fixed one;
    the stamp is volatile and never part of canonical artifacts).
    ``code_fingerprint`` identifies the source tree that produced the
    results; when ``None`` it is computed here, so *every* artifact
    directory is eligible for a later ``--incremental`` pass, not only
    ones written by an incremental run.
    """
    paths = artifact_paths(out_dir, campaign_spec.name)
    paths.root.mkdir(parents=True, exist_ok=True)

    ordered = sorted(results, key=lambda r: r.run_id)
    write_results_jsonl(paths.runs, ordered)

    summary = summarize(ordered, campaign=campaign_spec.name)
    paths.summary_txt.write_text(summary.render() + "\n", encoding="utf-8")
    paths.summary_json.write_text(
        json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    if code_fingerprint is None:
        from repro.fleet.store import source_fingerprint

        code_fingerprint = source_fingerprint()

    status_counts: Dict[str, int] = {}
    for result in ordered:
        status_counts[result.status] = status_counts.get(result.status, 0) + 1
    manifest = CampaignManifest(
        version=MANIFEST_VERSION,
        campaign=campaign_spec.name,
        spec_hash=campaign_spec.spec_hash,
        run_count=len(ordered),
        status_counts=status_counts,
        mode=getattr(execution, "mode", "external"),
        workers=getattr(execution, "workers", 0),
        shard_count=getattr(execution, "shard_count", 0),
        degraded_shards=getattr(execution, "degraded_shards", 0),
        wall_clock=getattr(execution, "wall_clock", 0.0),
        created_at=(clock or wall_time)(),
        artifacts={
            "runs": paths.runs.name,
            "summary_json": paths.summary_json.name,
            "summary_txt": paths.summary_txt.name,
        },
        code_fingerprint=code_fingerprint,
        cache_hits=sum(1 for result in ordered if result.cache_hit),
    )
    paths.manifest.write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return paths


def read_manifest(path: Any) -> CampaignManifest:
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignManifest.from_dict(json.load(handle))
