"""Incremental run-result store: reuse artifacts instead of re-simulating.

Fleet runs are deterministic twice over: a :class:`~repro.fleet.campaign.RunSpec`'s
``run_id`` is a content hash of every parameter that can influence the
simulation, and ``runs.jsonl`` holds only the deterministic projection
of each result.  Re-executing an unchanged spec with unchanged code
therefore reproduces the exact line already on disk -- pure wall-clock
waste at campaign scale.  ``repro fleet run --incremental`` short-cuts
that: a prior artifact directory acts as a cache, and a planned run is
*skipped* when

* a result with the same ``run_id`` exists in ``runs.jsonl``,
* that result is ``ok`` (failures and timeouts are always retried), and
* the manifest's ``code_fingerprint`` matches the current source tree
  (:func:`source_fingerprint`), so any edit under ``repro/`` -- timing
  model, mechanism logic, serialization -- busts the whole cache.

Reused results are marked ``cache_hit=True``, which is *volatile*
telemetry (excluded from ``runs.jsonl``): an incremental pass over an
unchanged campaign rewrites byte-identical canonical artifacts.

This is the deliberately conservative cousin of ``--resume``: resume
trusts any prior artifacts for the same run ids; incremental also
demands the code that wrote them is the code that would re-run them.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.campaign import RunSpec
from repro.fleet.telemetry import RunResult


def source_fingerprint(root: Optional[Any] = None) -> str:
    """SHA-256 over the ``repro`` package sources (paths + contents).

    Deterministic across machines: files are visited in sorted
    relative-path order and separated by NUL bytes so neither
    concatenation ambiguity nor directory enumeration order can alias
    two different trees.  ``root`` overrides the tree for tests.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    else:
        root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


class RunResultStore:
    """Read-side of an artifact directory, indexed by ``run_id``.

    Loads ``runs.jsonl`` and the manifest (if present) once at
    construction; :meth:`cached` then partitions a plan into reusable
    results and specs that still need to execute.
    """

    def __init__(self, out_dir: Any, campaign_name: str) -> None:
        # Deferred import: results.py imports this module inside
        # write_artifacts, so the top-level dependency must point one
        # way only.
        from repro.fleet.results import (
            artifact_paths,
            read_manifest,
            read_results_jsonl,
        )

        self.paths = artifact_paths(out_dir, campaign_name)
        self.results: Dict[str, RunResult] = {}
        self.code_fingerprint: str = ""
        if self.paths.runs.exists():
            for result in read_results_jsonl(self.paths.runs):
                self.results[result.run_id] = result
        if self.paths.manifest.exists():
            manifest = read_manifest(self.paths.manifest)
            self.code_fingerprint = manifest.code_fingerprint

    def __len__(self) -> int:
        return len(self.results)

    def cached(
        self, specs: Sequence[RunSpec], fingerprint: str
    ) -> Tuple[List[RunResult], List[RunSpec]]:
        """Partition ``specs`` into ``(hits, pending)``.

        ``hits`` are prior *ok* results for specs in the plan, each
        marked ``cache_hit=True``; ``pending`` is everything that must
        run.  An empty store, a manifest written by different code, or
        a manifest predating fingerprints (``""``) yields zero hits.
        """
        if (
            not self.results
            or not fingerprint
            or self.code_fingerprint != fingerprint
        ):
            return [], list(specs)
        hits: List[RunResult] = []
        pending: List[RunSpec] = []
        for spec in specs:
            result = self.results.get(spec.run_id)
            if result is not None and result.ok:
                result.cache_hit = True
                hits.append(result)
            else:
                pending.append(spec)
        return hits, pending
