"""Incremental run-result store: reuse artifacts instead of re-simulating.

Fleet runs are deterministic twice over: a :class:`~repro.fleet.campaign.RunSpec`'s
``run_id`` is a content hash of every parameter that can influence the
simulation, and ``runs.jsonl`` holds only the deterministic projection
of each result.  Re-executing an unchanged spec with unchanged code
therefore reproduces the exact line already on disk -- pure wall-clock
waste at campaign scale.  ``repro fleet run --incremental`` short-cuts
that: a prior artifact directory acts as a cache, and a planned run is
*skipped* when

* a result with the same ``run_id`` exists in ``runs.jsonl``,
* that result is ``ok`` (failures and timeouts are always retried), and
* the manifest's ``code_fingerprint`` matches the current source tree
  (:func:`source_fingerprint`), so any edit under ``repro/`` -- timing
  model, mechanism logic, serialization -- busts the whole cache.

Reused results are marked ``cache_hit=True``, which is *volatile*
telemetry (excluded from ``runs.jsonl``): an incremental pass over an
unchanged campaign rewrites byte-identical canonical artifacts.

This is the deliberately conservative cousin of ``--resume``: resume
trusts any prior artifacts for the same run ids; incremental also
demands the code that wrote them is the code that would re-run them.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.fleet.campaign import RunSpec
from repro.fleet.telemetry import RunResult


def source_fingerprint(root: Optional[Any] = None) -> str:
    """SHA-256 over the ``repro`` package sources (paths + contents).

    Deterministic across machines: files are visited in sorted
    relative-path order and separated by NUL bytes so neither
    concatenation ambiguity nor directory enumeration order can alias
    two different trees.  ``root`` overrides the tree for tests.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    else:
        root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


class RunResultStore:
    """Read-side of an artifact directory, indexed by ``run_id``.

    Loads ``runs.jsonl`` and the manifest (if present) once at
    construction; :meth:`cached` then partitions a plan into reusable
    results and specs that still need to execute.
    """

    def __init__(self, out_dir: Any, campaign_name: str) -> None:
        # Deferred import: results.py imports this module inside
        # write_artifacts, so the top-level dependency must point one
        # way only.
        from repro.fleet.results import (
            artifact_paths,
            read_manifest,
            read_results_jsonl,
        )

        self.paths = artifact_paths(out_dir, campaign_name)
        self.results: Dict[str, RunResult] = {}
        self.code_fingerprint: str = ""
        if self.paths.runs.exists():
            for result in read_results_jsonl(self.paths.runs):
                self.results[result.run_id] = result
        if self.paths.manifest.exists():
            manifest = read_manifest(self.paths.manifest)
            self.code_fingerprint = manifest.code_fingerprint

    def __len__(self) -> int:
        return len(self.results)

    def cached(
        self, specs: Sequence[RunSpec], fingerprint: str
    ) -> Tuple[List[RunResult], List[RunSpec]]:
        """Partition ``specs`` into ``(hits, pending)``.

        ``hits`` are prior *ok* results for specs in the plan, each
        marked ``cache_hit=True``; ``pending`` is everything that must
        run.  An empty store, a manifest written by different code, or
        a manifest predating fingerprints (``""``) yields zero hits.
        """
        if (
            not self.results
            or not fingerprint
            or self.code_fingerprint != fingerprint
        ):
            return [], list(specs)
        hits: List[RunResult] = []
        pending: List[RunSpec] = []
        for spec in specs:
            result = self.results.get(spec.run_id)
            if result is not None and result.ok:
                result.cache_hit = True
                hits.append(result)
            else:
                pending.append(spec)
        return hits, pending


# ---------------------------------------------------------------------------
# Shard checkpoints: the resume substrate of the streaming pipeline
# ---------------------------------------------------------------------------

#: checkpoint metadata format version
CHECKPOINT_VERSION = 1


def plan_hash(specs: Sequence[RunSpec]) -> str:
    """Content hash of an *ordered* plan.

    Covers every ``run_id`` in plan order, so any change to the
    campaign -- an edited axis, a different seed list, reordered
    cohorts -- invalidates prior shard checkpoints wholesale.
    """
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.run_id.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class ShardCheckpointStore:
    """Per-shard result checkpoints under ``<out>/<campaign>/shards/``.

    The streaming pipeline checkpoints every completed shard as a
    run_id-sorted JSONL file (written atomically: tmp + rename, so a
    kill mid-write never leaves a half shard).  A later ``--resume``
    reloads the checkpoint set instead of re-executing, provided the
    ``checkpoint.json`` metadata still matches: same campaign, same
    ordered plan, same shard size, and -- because checkpoints are
    keyed by :func:`source_fingerprint` -- the same source tree.
    After a successful finalize the directory is deleted; its absence
    plus a final ``runs.jsonl`` is what "campaign complete" looks like
    on disk.
    """

    def __init__(
        self,
        out_dir: Any,
        campaign_name: str,
        spec_hash: str,
        specs: Sequence[RunSpec],
        shard_size: int,
        code_fingerprint: str,
    ) -> None:
        self.root = Path(out_dir) / campaign_name / "shards"
        self.meta = {
            "version": CHECKPOINT_VERSION,
            "campaign": campaign_name,
            "spec_hash": spec_hash,
            "plan_hash": plan_hash(specs),
            "shard_size": int(shard_size),
            "code_fingerprint": code_fingerprint,
        }
        self.meta_path = self.root / "checkpoint.json"

    # -- write side -----------------------------------------------------

    def open(self) -> None:
        """Create the checkpoint directory and stamp its metadata.

        Stale checkpoints (metadata mismatch) are discarded here, so a
        changed plan or source tree can never resurrect old shards.
        """
        if self.root.exists() and not self._meta_matches():
            shutil.rmtree(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            tmp = self.meta_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(self.meta, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.meta_path)

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:06d}.jsonl"

    def write_shard(
        self, index: int, results: Sequence[RunResult]
    ) -> Path:
        """Checkpoint one completed shard, sorted by ``run_id``.

        Atomic: a kill lands either before the rename (shard re-runs
        on resume) or after (shard restored verbatim) -- never on a
        torn file.  Only the deterministic projection is stored; that
        is exactly what the canonical artifacts need, and it makes a
        resumed campaign's artifacts byte-identical by construction.
        """
        ordered = sorted(results, key=lambda r: r.run_id)
        path = self.shard_path(index)
        tmp = path.with_suffix(".jsonl.tmp")
        lines = [result.to_json_line() for result in ordered]
        body = "\n".join(lines) + "\n" if lines else ""
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, path)
        return path

    # -- read side ------------------------------------------------------

    def _meta_matches(self) -> bool:
        if not self.meta_path.exists():
            return False
        try:
            on_disk = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return on_disk == self.meta

    def completed_shards(self) -> Dict[int, Path]:
        """Index -> checkpoint path for every valid completed shard;
        empty when the metadata does not match the current plan."""
        if not self._meta_matches():
            return {}
        completed: Dict[int, Path] = {}
        for path in sorted(self.root.glob("shard-*.jsonl")):
            stem = path.stem  # shard-000123
            try:
                index = int(stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            completed[index] = path
        return completed

    def read_shard(self, index: int) -> Iterator[RunResult]:
        """Stream one checkpointed shard's results (run_id-sorted)."""
        with open(self.shard_path(index), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield RunResult.from_json_line(line)

    def discard(self) -> None:
        """Remove the checkpoint directory (after a finalize, or when
        the caller decides the checkpoints are unusable)."""
        if self.root.exists():
            shutil.rmtree(self.root)
