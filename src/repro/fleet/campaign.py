"""Campaign specs and the planner.

A *campaign* is a declarative sweep over the experiment space: which
RA mechanisms to run, against which adversaries, on which device
geometries, with which workloads and seeds.  The planner expands a
:class:`CampaignSpec` into a deterministic, ordered list of
:class:`RunSpec` -- one fully self-contained description per
simulation, with a stable content-derived ``run_id`` so reruns are
reproducible, shardable and resumable.

Nothing here touches a :class:`~repro.sim.engine.Simulator`; planning
is pure data.  Execution lives in :mod:`repro.fleet.executor`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.units import MiB

#: mechanisms the fleet worker knows how to instantiate.  ``crashtest``
#: and ``sleeptest`` are deliberate failure injectors for exercising
#: the executor's retry/timeout paths (documented in docs/fleet.md).
KNOWN_MECHANISMS = (
    "smart",
    "all-lock",
    "dec-lock",
    "inc-lock",
    "no-lock",
    "smarm",
    "erasmus",
    "seed",
    "vserver",
    "crashtest",
    "sleeptest",
)

KNOWN_ADVERSARIES = ("none", "transient", "relocating")

KNOWN_WORKLOADS = ("none", "firealarm", "writers")

#: device-class presets for heterogeneous populations: named geometry
#: bundles applied at *plan* time (preset < base < axes precedence), so
#: one campaign sweeps cohorts of class-0 sensors next to gateway-class
#: boxes without spelling the geometry per cohort.  The label itself
#: rides in ``RunSpec.device_class`` and participates in ``run_id``.
DEVICE_CLASSES: Dict[str, Dict[str, Any]] = {
    # 8-block class-0 sensor node: tiny image, tight RAM
    "sensor": {
        "block_count": 8,
        "block_size": 32,
        "sim_block_size": MiB,
    },
    # mid-range actuator with a moderate firmware image
    "actuator": {
        "block_count": 16,
        "block_size": 32,
        "sim_block_size": 2 * MiB,
    },
    # edge gateway: the largest image the paper's timing model covers
    "gateway": {
        "block_count": 64,
        "block_size": 64,
        "sim_block_size": 4 * MiB,
    },
}


def apply_device_class(fields_for_run: Dict[str, Any]) -> Dict[str, Any]:
    """Resolve a ``device_class`` label into concrete geometry fields.

    Preset values lose to anything explicitly present in
    ``fields_for_run`` (preset < base < axes), so a cohort can pin a
    class and still override one knob.
    """
    label = fields_for_run.get("device_class", "")
    if not label:
        return dict(fields_for_run)
    preset = DEVICE_CLASSES.get(label)
    if preset is None:
        raise ConfigurationError(
            f"unknown device_class {label!r}; known: {sorted(DEVICE_CLASSES)}"
        )
    merged = dict(preset)
    merged.update(fields_for_run)
    return merged


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    Every field participates in the ``run_id`` hash, so two specs with
    identical fields are the *same* run: executing either produces the
    same :class:`~repro.fleet.telemetry.RunResult` (modulo wall-clock).
    """

    campaign: str = "adhoc"
    mechanism: str = "smart"
    adversary: str = "none"
    seed: int = 7
    # -- device geometry ------------------------------------------------
    block_count: int = 16
    block_size: int = 32
    sim_block_size: int = MiB
    algorithm: str = "blake2s"
    # -- protocol timing ------------------------------------------------
    horizon: float = 36.0
    request_at: float = 2.0
    rounds: int = 13  # SMARM measurement rounds (paper's 10^-6 bound)
    t_m: float = 4.0  # self-measurement period (ERASMUS / SeED gap scale)
    t_c: float = 16.0  # collection period (ERASMUS)
    # -- adversary shape ------------------------------------------------
    infect_at: float = 0.5
    #: adds a seed-derived uniform offset in [0, infect_jitter) to
    #: infect_at, so seed replication samples the infection *phase*
    #: (the random variable behind the QoA detection probability)
    infect_jitter: float = 0.0
    dwell: float = 0.0  # transient residency; 0 = reactive dodger
    malware_block: int = 2
    # -- workload -------------------------------------------------------
    workload: str = "firealarm"
    task_period: float = 0.1
    task_wcet: float = 0.002
    task_priority: int = 100
    mp_priority: int = 50
    writer_tasks: int = 2
    # -- execution limits ----------------------------------------------
    timeout: float = 0.0  # wall-clock seconds per run; 0 = unlimited
    trace_limit: int = 4096  # ring-buffer bound on the device trace
    # -- fault injection ------------------------------------------------
    #: FaultPlan DSL string ("loss=0.3@0:30;reset@6"); empty = no faults.
    #: A non-empty plan also arms the worker's retry layer.  Excluded
    #: from to_dict()/run_id when empty so fault-free campaigns keep
    #: their historical identities and golden artifacts byte-identical.
    faults: str = ""
    # -- served verifier -------------------------------------------------
    #: ServiceConfig DSL ("preset=smoke;provers=100;batch=off") for the
    #: ``vserver`` mechanism: the run drives a whole served-verifier
    #: scenario instead of a single prover/verifier pair.  Excluded
    #: from to_dict()/run_id when empty, same identity-stability rule
    #: as ``faults``.
    service: str = ""
    # -- service-level objectives ----------------------------------------
    #: SLO DSL ("firealarm" / "latency:ra.round_trip.latency<0.5@0.99")
    #: evaluated by a sim-time :class:`~repro.obs.slo.SLOEngine` during
    #: the run; the engine summary lands in ``RunResult.slo``.  Excluded
    #: from to_dict()/run_id when empty, same identity-stability rule
    #: as ``faults``.
    slo: str = ""
    # -- heterogeneous population -----------------------------------------
    #: device-class label (see :data:`DEVICE_CLASSES`); the planner
    #: resolves it into geometry via :func:`apply_device_class`, and the
    #: label itself is part of the run identity.  Excluded from
    #: to_dict()/run_id when empty, same identity-stability rule as
    #: ``faults``.
    device_class: str = ""
    #: firmware version label; folds into the device image seed so two
    #: firmware versions measure different images under the same run
    #: seed.  Same empty-excluded identity rule.
    firmware: str = ""
    #: cohort name stamped by the planner when a campaign declares
    #: per-cohort sub-populations.  Same empty-excluded identity rule.
    cohort: str = ""

    def __post_init__(self) -> None:
        if self.mechanism not in KNOWN_MECHANISMS:
            raise ConfigurationError(
                f"unknown mechanism {self.mechanism!r}; "
                f"known: {KNOWN_MECHANISMS}"
            )
        if self.adversary not in KNOWN_ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {self.adversary!r}; "
                f"known: {KNOWN_ADVERSARIES}"
            )
        if self.workload not in KNOWN_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"known: {KNOWN_WORKLOADS}"
            )
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.faults:
            # Validate the DSL at plan time, not deep inside a worker.
            from repro.resilience.faults import FaultPlan

            FaultPlan.parse(self.faults)
        if self.service:
            if self.mechanism != "vserver":
                raise ConfigurationError(
                    "service= only applies to the 'vserver' mechanism"
                )
            from repro.vserver.service import ServiceConfig

            ServiceConfig.parse(self.service)
        if self.slo:
            from repro.obs.slo import parse_objectives

            parse_objectives(self.slo)
        if self.device_class and self.device_class not in DEVICE_CLASSES:
            raise ConfigurationError(
                f"unknown device_class {self.device_class!r}; "
                f"known: {sorted(DEVICE_CLASSES)}"
            )

    # -- identity -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        for empty_excluded in (
            "faults", "service", "slo", "device_class", "firmware",
            "cohort",
        ):
            if not data[empty_excluded]:
                del data[empty_excluded]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    @property
    def spec_digest(self) -> str:
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def run_id(self) -> str:
        """Stable, human-scannable identity: mechanism, adversary, seed
        plus a content hash covering every field."""
        return (
            f"{self.mechanism}-{self.adversary}-"
            f"s{self.seed:04d}-{self.spec_digest[:12]}"
        )

    def with_overrides(self, **overrides: Any) -> "RunSpec":
        return replace(self, **overrides)


def _check_sweep(
    source: str,
    base: Dict[str, Any],
    axes: Dict[str, List[Any]],
) -> None:
    """Shared base/axes validation for campaigns and their cohorts."""
    known = {f.name for f in fields(RunSpec)}
    for label, keys in ((f"{source} base", base), (f"{source} axes", axes)):
        unknown = set(keys) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields in {label}: {sorted(unknown)}"
            )
    for key, values in axes.items():
        if not values:
            raise ConfigurationError(f"axis {key!r} has no values")
    overlap = set(axes) & set(base)
    if overlap:
        raise ConfigurationError(
            f"fields both fixed and swept in {source}: {sorted(overlap)}"
        )
    for keys in (base, axes):
        if "seed" in keys:
            raise ConfigurationError("sweep seeds via the 'seeds' argument")
        if "cohort" in keys:
            raise ConfigurationError(
                "cohort is stamped by the planner; name cohorts via "
                "the 'cohorts' argument"
            )


class Cohort:
    """One sub-population of a heterogeneous campaign.

    A cohort overlays its own fixed fields and swept axes on the
    campaign-level ``base``/``axes`` (cohort wins on conflicts) and may
    pin its own seed list.  The planner stamps every expanded spec with
    ``cohort=<name>``, so per-cohort populations stay distinguishable
    in artifacts and summaries.
    """

    def __init__(
        self,
        name: str,
        base: Optional[Dict[str, Any]] = None,
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        seeds: Optional[Iterable[int]] = None,
    ) -> None:
        if not name:
            raise ConfigurationError("cohort needs a non-empty name")
        self.name = name
        self.base = dict(base or {})
        self.axes = {key: list(values) for key, values in (axes or {}).items()}
        self.seeds = None if seeds is None else [int(s) for s in seeds]
        if self.seeds is not None and not self.seeds:
            raise ConfigurationError(
                f"cohort {name!r} needs at least one seed"
            )
        _check_sweep(f"cohort {name!r}", self.base, self.axes)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "base": dict(sorted(self.base.items())),
            "axes": {k: self.axes[k] for k in sorted(self.axes)},
        }
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Cohort":
        return cls(
            name=data["name"],
            base=data.get("base"),
            axes=data.get("axes"),
            seeds=data.get("seeds"),
        )


class CampaignSpec:
    """A declarative sweep: fixed ``base`` fields, swept ``axes``.

    ``axes`` maps :class:`RunSpec` field names to value lists; the
    planner takes the cartesian product in sorted-key order (so the
    plan is independent of dict insertion order), with ``seeds`` as the
    innermost axis.  Example::

        CampaignSpec(
            name="qoa",
            base={"mechanism": "erasmus", "adversary": "transient"},
            axes={"t_m": [2.0, 4.0], "dwell": [1.0, 3.0]},
            seeds=range(5),
        )

    Heterogeneous populations declare ``cohorts``: an ordered list of
    :class:`Cohort` (or their dict form), each overlaying the campaign
    base/axes with its own device class, firmware versions, mechanism
    sweep or seed list.  Cohorts expand in declared order, each with
    the same sorted-axis cartesian product as a flat campaign.
    """

    def __init__(
        self,
        name: str,
        base: Optional[Dict[str, Any]] = None,
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        seeds: Iterable[int] = (7,),
        cohorts: Optional[Sequence[Any]] = None,
    ) -> None:
        if not name or "/" in name:
            raise ConfigurationError(
                "campaign name must be a non-empty path-safe string"
            )
        self.name = name
        self.base = dict(base or {})
        self.axes = {key: list(values) for key, values in (axes or {}).items()}
        self.seeds = [int(s) for s in seeds]
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        _check_sweep("campaign", self.base, self.axes)
        self.cohorts: List[Cohort] = []
        for entry in cohorts or ():
            cohort = entry if isinstance(entry, Cohort) else Cohort.from_dict(entry)
            if any(existing.name == cohort.name for existing in self.cohorts):
                raise ConfigurationError(
                    f"duplicate cohort name {cohort.name!r}"
                )
            # bounded by the declared spec, never per-run growth
            self.cohorts.append(cohort)  # repro: allow[perf-unbounded-queue]

    # -- planning -------------------------------------------------------

    def _expand(
        self,
        base: Dict[str, Any],
        axes: Dict[str, List[Any]],
        seeds: Sequence[int],
        cohort: str = "",
    ) -> List[RunSpec]:
        axis_keys = sorted(axes)
        axis_values = [axes[key] for key in axis_keys]
        specs: List[RunSpec] = []
        for combo in itertools.product(*axis_values):
            fields_for_run = dict(base)
            fields_for_run.update(dict(zip(axis_keys, combo)))
            if cohort:
                fields_for_run["cohort"] = cohort
            fields_for_run = apply_device_class(fields_for_run)
            for seed in seeds:
                specs.append(
                    RunSpec(campaign=self.name, seed=seed, **fields_for_run)
                )
        return specs

    def plan(self) -> List[RunSpec]:
        """Expand into the full, deterministically-ordered run list."""
        if not self.cohorts:
            return self._expand(self.base, self.axes, self.seeds)
        specs: List[RunSpec] = []
        for cohort in self.cohorts:
            base = dict(self.base)
            base.update(cohort.base)
            axes = dict(self.axes)
            axes.update(cohort.axes)
            # a cohort may fix a field the campaign sweeps; its base
            # wins, so drop the shadowed campaign axis
            for key in cohort.base:
                axes.pop(key, None)
            seeds = cohort.seeds if cohort.seeds is not None else self.seeds
            specs.extend(self._expand(base, axes, seeds, cohort=cohort.name))
        return specs

    @property
    def run_count(self) -> int:
        if not self.cohorts:
            count = 1
            for values in self.axes.values():
                count *= len(values)
            return count * len(self.seeds)
        total = 0
        for cohort in self.cohorts:
            axes = dict(self.axes)
            axes.update(cohort.axes)
            for key in cohort.base:
                axes.pop(key, None)
            count = 1
            for values in axes.values():
                count *= len(values)
            seeds = cohort.seeds if cohort.seeds is not None else self.seeds
            total += count * len(seeds)
        return total

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "base": dict(sorted(self.base.items())),
            "axes": {k: self.axes[k] for k in sorted(self.axes)},
            "seeds": list(self.seeds),
        }
        if self.cohorts:
            # key is present only on heterogeneous campaigns, so flat
            # campaigns keep their historical spec_hash
            data["cohorts"] = [cohort.to_dict() for cohort in self.cohorts]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            base=data.get("base"),
            axes=data.get("axes"),
            seeds=data.get("seeds", (7,)),
            cohorts=data.get("cohorts"),
        )

    @property
    def spec_hash(self) -> str:
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Canned campaigns
# ---------------------------------------------------------------------------


def qoa_fleet_campaign(seed_count: int = 6) -> CampaignSpec:
    """Figure 5's QoA story at fleet scale.

    Sweeps the self-measurement period ``T_M`` against transient
    residency times around it: infections shorter than the measurement
    gap mostly escape, infections spanning a measurement are caught at
    the next collection -- the fleet turns the figure's two anecdotes
    into detection-probability curves with error bars.
    """
    return CampaignSpec(
        name="qoa-fleet",
        base={
            "mechanism": "erasmus",
            "adversary": "transient",
            "block_count": 96,
            "sim_block_size": 2 * MiB,
            "t_c": 12.0,
            "horizon": 36.0,
            "infect_at": 2.0,
            "infect_jitter": 8.0,
            "task_period": 0.05,
            "workload": "firealarm",
        },
        axes={
            "t_m": [2.0, 4.0, 8.0],
            "dwell": [1.0, 3.0, 6.0],
        },
        seeds=range(seed_count),
    )


def matrix_fleet_campaign(seed_count: int = 3) -> CampaignSpec:
    """Table 1's mechanism x adversary matrix, many seeds deep."""
    return CampaignSpec(
        name="matrix-fleet",
        base={
            "block_count": 16,
            "sim_block_size": 2 * MiB,
            "horizon": 30.0,
            "workload": "firealarm",
        },
        axes={
            "mechanism": [
                "smart", "all-lock", "dec-lock", "inc-lock",
                "smarm", "erasmus", "seed",
            ],
            "adversary": ["none", "transient", "relocating"],
        },
        seeds=range(seed_count),
    )


def locking_availability_campaign(seed_count: int = 4) -> CampaignSpec:
    """Locking-policy availability damage under a writer workload."""
    return CampaignSpec(
        name="locking-availability",
        base={
            "adversary": "none",
            "workload": "writers",
            "block_count": 24,
            "sim_block_size": 4 * MiB,
            "horizon": 30.0,
        },
        axes={
            "mechanism": ["no-lock", "all-lock", "dec-lock", "inc-lock"],
            "writer_tasks": [2, 4],
        },
        seeds=range(seed_count),
    )


def fault_matrix_campaign(seed_count: int = 3) -> CampaignSpec:
    """On-demand mechanisms under escalating channel trouble.

    Sweeps a clean channel, a 25% loss burst, and loss plus a prover
    brownout against the retry layer; the ``faults=""`` cells double as
    the byte-identity control (they must match a fault-free campaign's
    telemetry exactly, which CI diffs against a golden summary).
    """
    return CampaignSpec(
        name="fault-matrix",
        base={
            "adversary": "none",
            "block_count": 8,
            "sim_block_size": MiB,
            "horizon": 30.0,
            "request_at": 1.0,
            "workload": "firealarm",
        },
        axes={
            "mechanism": ["smart", "inc-lock", "smarm"],
            "faults": [
                "",
                "loss=0.25@0:20",
                "loss=0.25@0:20;reset@4",
            ],
        },
        seeds=range(seed_count),
    )


def vserver_service_campaign(seed_count: int = 2) -> CampaignSpec:
    """The served verifier under escalating storm load.

    Sweeps the smoke storm against batch on/off (whose ledgers must
    agree -- the campaign-scale restatement of the golden byte-identity
    test) and a denser population with a tighter rate limit, so the
    admission-control taxonomy shows up in fleet telemetry.  Seeds
    fold into the service traffic seed, replicating the storm phase.
    """
    return CampaignSpec(
        name="vserver-service",
        base={
            "mechanism": "vserver",
            "adversary": "none",
            "workload": "none",
            "horizon": 5.0,
        },
        axes={
            "service": [
                "preset=smoke",
                "preset=smoke;batch=off",
                "preset=smoke;provers=48;rate_limit=8",
            ],
        },
        seeds=range(seed_count),
    )


def hetero_fleet_campaign(seed_count: int = 2) -> CampaignSpec:
    """A heterogeneous fleet: three device-class cohorts, mixed
    firmware versions and mechanisms, one campaign.

    The swarm-scale deployment question the paper leaves open: a real
    population is never uniform, so availability/QoA rows must hold
    per cohort -- tiny sensors on self-measurement next to gateways
    running SMARM -- while the artifacts stay one diffable campaign.
    """
    return CampaignSpec(
        name="hetero-fleet",
        base={
            "adversary": "transient",
            "workload": "firealarm",
            "horizon": 24.0,
            "infect_at": 2.0,
        },
        cohorts=[
            Cohort(
                name="sensors",
                base={"device_class": "sensor", "mechanism": "erasmus",
                      "t_m": 4.0, "t_c": 12.0},
                axes={"firmware": ["fw-1.0", "fw-1.1"]},
            ),
            Cohort(
                name="actuators",
                base={"device_class": "actuator", "firmware": "fw-2.0"},
                axes={"mechanism": ["smart", "inc-lock"]},
            ),
            Cohort(
                name="gateways",
                base={"device_class": "gateway", "mechanism": "smarm",
                      "firmware": "fw-3.1"},
            ),
        ],
        seeds=range(seed_count),
    )


CANNED_CAMPAIGNS: Dict[str, Callable[[int], CampaignSpec]] = {
    "qoa": qoa_fleet_campaign,
    "matrix": matrix_fleet_campaign,
    "locking": locking_availability_campaign,
    "faults": fault_matrix_campaign,
    "vserver": vserver_service_campaign,
    "hetero": hetero_fleet_campaign,
}


def canned_campaign(name: str, seed_count: Optional[int] = None) -> CampaignSpec:
    """Look up a canned campaign by name."""
    factory = CANNED_CAMPAIGNS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown campaign {name!r}; known: {sorted(CANNED_CAMPAIGNS)}"
        )
    return factory() if seed_count is None else factory(seed_count)
