"""Campaign specs and the planner.

A *campaign* is a declarative sweep over the experiment space: which
RA mechanisms to run, against which adversaries, on which device
geometries, with which workloads and seeds.  The planner expands a
:class:`CampaignSpec` into a deterministic, ordered list of
:class:`RunSpec` -- one fully self-contained description per
simulation, with a stable content-derived ``run_id`` so reruns are
reproducible, shardable and resumable.

Nothing here touches a :class:`~repro.sim.engine.Simulator`; planning
is pure data.  Execution lives in :mod:`repro.fleet.executor`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.units import MiB

#: mechanisms the fleet worker knows how to instantiate.  ``crashtest``
#: and ``sleeptest`` are deliberate failure injectors for exercising
#: the executor's retry/timeout paths (documented in docs/fleet.md).
KNOWN_MECHANISMS = (
    "smart",
    "all-lock",
    "dec-lock",
    "inc-lock",
    "no-lock",
    "smarm",
    "erasmus",
    "seed",
    "vserver",
    "crashtest",
    "sleeptest",
)

KNOWN_ADVERSARIES = ("none", "transient", "relocating")

KNOWN_WORKLOADS = ("none", "firealarm", "writers")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    Every field participates in the ``run_id`` hash, so two specs with
    identical fields are the *same* run: executing either produces the
    same :class:`~repro.fleet.telemetry.RunResult` (modulo wall-clock).
    """

    campaign: str = "adhoc"
    mechanism: str = "smart"
    adversary: str = "none"
    seed: int = 7
    # -- device geometry ------------------------------------------------
    block_count: int = 16
    block_size: int = 32
    sim_block_size: int = MiB
    algorithm: str = "blake2s"
    # -- protocol timing ------------------------------------------------
    horizon: float = 36.0
    request_at: float = 2.0
    rounds: int = 13  # SMARM measurement rounds (paper's 10^-6 bound)
    t_m: float = 4.0  # self-measurement period (ERASMUS / SeED gap scale)
    t_c: float = 16.0  # collection period (ERASMUS)
    # -- adversary shape ------------------------------------------------
    infect_at: float = 0.5
    #: adds a seed-derived uniform offset in [0, infect_jitter) to
    #: infect_at, so seed replication samples the infection *phase*
    #: (the random variable behind the QoA detection probability)
    infect_jitter: float = 0.0
    dwell: float = 0.0  # transient residency; 0 = reactive dodger
    malware_block: int = 2
    # -- workload -------------------------------------------------------
    workload: str = "firealarm"
    task_period: float = 0.1
    task_wcet: float = 0.002
    task_priority: int = 100
    mp_priority: int = 50
    writer_tasks: int = 2
    # -- execution limits ----------------------------------------------
    timeout: float = 0.0  # wall-clock seconds per run; 0 = unlimited
    trace_limit: int = 4096  # ring-buffer bound on the device trace
    # -- fault injection ------------------------------------------------
    #: FaultPlan DSL string ("loss=0.3@0:30;reset@6"); empty = no faults.
    #: A non-empty plan also arms the worker's retry layer.  Excluded
    #: from to_dict()/run_id when empty so fault-free campaigns keep
    #: their historical identities and golden artifacts byte-identical.
    faults: str = ""
    # -- served verifier -------------------------------------------------
    #: ServiceConfig DSL ("preset=smoke;provers=100;batch=off") for the
    #: ``vserver`` mechanism: the run drives a whole served-verifier
    #: scenario instead of a single prover/verifier pair.  Excluded
    #: from to_dict()/run_id when empty, same identity-stability rule
    #: as ``faults``.
    service: str = ""
    # -- service-level objectives ----------------------------------------
    #: SLO DSL ("firealarm" / "latency:ra.round_trip.latency<0.5@0.99")
    #: evaluated by a sim-time :class:`~repro.obs.slo.SLOEngine` during
    #: the run; the engine summary lands in ``RunResult.slo``.  Excluded
    #: from to_dict()/run_id when empty, same identity-stability rule
    #: as ``faults``.
    slo: str = ""

    def __post_init__(self) -> None:
        if self.mechanism not in KNOWN_MECHANISMS:
            raise ConfigurationError(
                f"unknown mechanism {self.mechanism!r}; "
                f"known: {KNOWN_MECHANISMS}"
            )
        if self.adversary not in KNOWN_ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {self.adversary!r}; "
                f"known: {KNOWN_ADVERSARIES}"
            )
        if self.workload not in KNOWN_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"known: {KNOWN_WORKLOADS}"
            )
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.faults:
            # Validate the DSL at plan time, not deep inside a worker.
            from repro.resilience.faults import FaultPlan

            FaultPlan.parse(self.faults)
        if self.service:
            if self.mechanism != "vserver":
                raise ConfigurationError(
                    "service= only applies to the 'vserver' mechanism"
                )
            from repro.vserver.service import ServiceConfig

            ServiceConfig.parse(self.service)
        if self.slo:
            from repro.obs.slo import parse_objectives

            parse_objectives(self.slo)

    # -- identity -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        if not data["faults"]:
            del data["faults"]
        if not data["service"]:
            del data["service"]
        if not data["slo"]:
            del data["slo"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    @property
    def spec_digest(self) -> str:
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def run_id(self) -> str:
        """Stable, human-scannable identity: mechanism, adversary, seed
        plus a content hash covering every field."""
        return (
            f"{self.mechanism}-{self.adversary}-"
            f"s{self.seed:04d}-{self.spec_digest[:12]}"
        )

    def with_overrides(self, **overrides: Any) -> "RunSpec":
        return replace(self, **overrides)


class CampaignSpec:
    """A declarative sweep: fixed ``base`` fields, swept ``axes``.

    ``axes`` maps :class:`RunSpec` field names to value lists; the
    planner takes the cartesian product in sorted-key order (so the
    plan is independent of dict insertion order), with ``seeds`` as the
    innermost axis.  Example::

        CampaignSpec(
            name="qoa",
            base={"mechanism": "erasmus", "adversary": "transient"},
            axes={"t_m": [2.0, 4.0], "dwell": [1.0, 3.0]},
            seeds=range(5),
        )
    """

    def __init__(
        self,
        name: str,
        base: Optional[Dict[str, Any]] = None,
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        seeds: Iterable[int] = (7,),
    ) -> None:
        if not name or "/" in name:
            raise ConfigurationError(
                "campaign name must be a non-empty path-safe string"
            )
        self.name = name
        self.base = dict(base or {})
        self.axes = {key: list(values) for key, values in (axes or {}).items()}
        self.seeds = [int(s) for s in seeds]
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        known = {f.name for f in fields(RunSpec)}
        for source, keys in (("base", self.base), ("axes", self.axes)):
            unknown = set(keys) - known
            if unknown:
                raise ConfigurationError(
                    f"unknown RunSpec fields in {source}: {sorted(unknown)}"
                )
        for key, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {key!r} has no values")
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ConfigurationError(
                f"fields both fixed and swept: {sorted(overlap)}"
            )
        if "seed" in self.axes or "seed" in self.base:
            raise ConfigurationError("sweep seeds via the 'seeds' argument")

    # -- planning -------------------------------------------------------

    def plan(self) -> List[RunSpec]:
        """Expand into the full, deterministically-ordered run list."""
        axis_keys = sorted(self.axes)
        axis_values = [self.axes[key] for key in axis_keys]
        specs: List[RunSpec] = []
        for combo in itertools.product(*axis_values):
            fields_for_run = dict(self.base)
            fields_for_run.update(dict(zip(axis_keys, combo)))
            for seed in self.seeds:
                specs.append(
                    RunSpec(campaign=self.name, seed=seed, **fields_for_run)
                )
        return specs

    @property
    def run_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count * len(self.seeds)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": dict(sorted(self.base.items())),
            "axes": {k: self.axes[k] for k in sorted(self.axes)},
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            base=data.get("base"),
            axes=data.get("axes"),
            seeds=data.get("seeds", (7,)),
        )

    @property
    def spec_hash(self) -> str:
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Canned campaigns
# ---------------------------------------------------------------------------


def qoa_fleet_campaign(seed_count: int = 6) -> CampaignSpec:
    """Figure 5's QoA story at fleet scale.

    Sweeps the self-measurement period ``T_M`` against transient
    residency times around it: infections shorter than the measurement
    gap mostly escape, infections spanning a measurement are caught at
    the next collection -- the fleet turns the figure's two anecdotes
    into detection-probability curves with error bars.
    """
    return CampaignSpec(
        name="qoa-fleet",
        base={
            "mechanism": "erasmus",
            "adversary": "transient",
            "block_count": 96,
            "sim_block_size": 2 * MiB,
            "t_c": 12.0,
            "horizon": 36.0,
            "infect_at": 2.0,
            "infect_jitter": 8.0,
            "task_period": 0.05,
            "workload": "firealarm",
        },
        axes={
            "t_m": [2.0, 4.0, 8.0],
            "dwell": [1.0, 3.0, 6.0],
        },
        seeds=range(seed_count),
    )


def matrix_fleet_campaign(seed_count: int = 3) -> CampaignSpec:
    """Table 1's mechanism x adversary matrix, many seeds deep."""
    return CampaignSpec(
        name="matrix-fleet",
        base={
            "block_count": 16,
            "sim_block_size": 2 * MiB,
            "horizon": 30.0,
            "workload": "firealarm",
        },
        axes={
            "mechanism": [
                "smart", "all-lock", "dec-lock", "inc-lock",
                "smarm", "erasmus", "seed",
            ],
            "adversary": ["none", "transient", "relocating"],
        },
        seeds=range(seed_count),
    )


def locking_availability_campaign(seed_count: int = 4) -> CampaignSpec:
    """Locking-policy availability damage under a writer workload."""
    return CampaignSpec(
        name="locking-availability",
        base={
            "adversary": "none",
            "workload": "writers",
            "block_count": 24,
            "sim_block_size": 4 * MiB,
            "horizon": 30.0,
        },
        axes={
            "mechanism": ["no-lock", "all-lock", "dec-lock", "inc-lock"],
            "writer_tasks": [2, 4],
        },
        seeds=range(seed_count),
    )


def fault_matrix_campaign(seed_count: int = 3) -> CampaignSpec:
    """On-demand mechanisms under escalating channel trouble.

    Sweeps a clean channel, a 25% loss burst, and loss plus a prover
    brownout against the retry layer; the ``faults=""`` cells double as
    the byte-identity control (they must match a fault-free campaign's
    telemetry exactly, which CI diffs against a golden summary).
    """
    return CampaignSpec(
        name="fault-matrix",
        base={
            "adversary": "none",
            "block_count": 8,
            "sim_block_size": MiB,
            "horizon": 30.0,
            "request_at": 1.0,
            "workload": "firealarm",
        },
        axes={
            "mechanism": ["smart", "inc-lock", "smarm"],
            "faults": [
                "",
                "loss=0.25@0:20",
                "loss=0.25@0:20;reset@4",
            ],
        },
        seeds=range(seed_count),
    )


def vserver_service_campaign(seed_count: int = 2) -> CampaignSpec:
    """The served verifier under escalating storm load.

    Sweeps the smoke storm against batch on/off (whose ledgers must
    agree -- the campaign-scale restatement of the golden byte-identity
    test) and a denser population with a tighter rate limit, so the
    admission-control taxonomy shows up in fleet telemetry.  Seeds
    fold into the service traffic seed, replicating the storm phase.
    """
    return CampaignSpec(
        name="vserver-service",
        base={
            "mechanism": "vserver",
            "adversary": "none",
            "workload": "none",
            "horizon": 5.0,
        },
        axes={
            "service": [
                "preset=smoke",
                "preset=smoke;batch=off",
                "preset=smoke;provers=48;rate_limit=8",
            ],
        },
        seeds=range(seed_count),
    )


CANNED_CAMPAIGNS: Dict[str, Callable[[int], CampaignSpec]] = {
    "qoa": qoa_fleet_campaign,
    "matrix": matrix_fleet_campaign,
    "locking": locking_availability_campaign,
    "faults": fault_matrix_campaign,
    "vserver": vserver_service_campaign,
}


def canned_campaign(name: str, seed_count: Optional[int] = None) -> CampaignSpec:
    """Look up a canned campaign by name."""
    factory = CANNED_CAMPAIGNS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown campaign {name!r}; known: {sorted(CANNED_CAMPAIGNS)}"
        )
    return factory() if seed_count is None else factory(seed_count)
