"""Fleet campaigns: plan, execute and aggregate simulation sweeps.

The fleet layer sits *above* the single-run stack (``sim``/``ra``/
``apps``): it turns declarative :class:`CampaignSpec` sweeps into
deterministic :class:`RunSpec` plans, executes them serially or across
a process pool (:func:`execute_campaign`), and folds the structured
:class:`RunResult` telemetry into JSONL artifacts and per-mechanism
summary tables.  See docs/fleet.md for the artifact layout.
"""

from repro.fleet.campaign import (
    CANNED_CAMPAIGNS,
    CampaignSpec,
    RunSpec,
    canned_campaign,
    locking_availability_campaign,
    matrix_fleet_campaign,
    qoa_fleet_campaign,
)
from repro.fleet.clock import ClockFn, perf_time, wall_time
from repro.fleet.executor import (
    ExecutionReport,
    ExecutorConfig,
    FleetTimeout,
    InjectedFailure,
    execute_campaign,
    execute_run,
    make_shards,
    run_one,
)
from repro.fleet.results import (
    ArtifactPaths,
    CampaignManifest,
    CampaignSummary,
    GroupSummary,
    artifact_paths,
    pending_specs,
    percentile,
    read_manifest,
    read_results_jsonl,
    summarize,
    write_artifacts,
    write_results_jsonl,
)
from repro.fleet.store import RunResultStore, source_fingerprint
from repro.fleet.telemetry import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunResult,
    failure_result,
    verdict_histogram,
)

__all__ = [
    "CANNED_CAMPAIGNS",
    "ArtifactPaths",
    "ClockFn",
    "CampaignManifest",
    "CampaignSpec",
    "CampaignSummary",
    "ExecutionReport",
    "ExecutorConfig",
    "FleetTimeout",
    "GroupSummary",
    "InjectedFailure",
    "RunResult",
    "RunResultStore",
    "RunSpec",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "artifact_paths",
    "canned_campaign",
    "execute_campaign",
    "execute_run",
    "failure_result",
    "locking_availability_campaign",
    "make_shards",
    "matrix_fleet_campaign",
    "pending_specs",
    "perf_time",
    "percentile",
    "qoa_fleet_campaign",
    "read_manifest",
    "read_results_jsonl",
    "run_one",
    "source_fingerprint",
    "summarize",
    "verdict_histogram",
    "wall_time",
    "write_artifacts",
    "write_results_jsonl",
]
