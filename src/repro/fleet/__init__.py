"""Fleet campaigns: plan, execute and aggregate simulation sweeps.

The fleet layer sits *above* the single-run stack (``sim``/``ra``/
``apps``): it turns declarative :class:`CampaignSpec` sweeps -- flat
axes or heterogeneous :class:`Cohort` populations -- into deterministic
:class:`RunSpec` plans and pushes them through a five-stage pipeline
(:func:`run_pipeline`): plan -> shard -> execute -> stream -> reduce.
Execution is pluggable via :class:`ExecutorBackend` (in-process serial,
process pool, or a file-spool of remote workers); completed shards
checkpoint to disk for kill-safe ``--resume``; and results stream
through a memory-bounded :class:`StreamingAggregator` whose artifacts
are byte-identical to the legacy in-RAM batch path
(:func:`execute_campaign` + :func:`write_artifacts`, both still
supported for small sweeps).  See docs/fleet.md for the artifact
layout and the migration guide.
"""

from repro.fleet.backends import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    Shard,
    ShardOutcome,
    SpoolBackend,
    SpoolWorker,
    make_shards,
    resolve_backend,
)
from repro.fleet.campaign import (
    CANNED_CAMPAIGNS,
    DEVICE_CLASSES,
    CampaignSpec,
    Cohort,
    RunSpec,
    canned_campaign,
    hetero_fleet_campaign,
    locking_availability_campaign,
    matrix_fleet_campaign,
    qoa_fleet_campaign,
)
from repro.fleet.clock import ClockFn, monotonic_time, perf_time, wall_time
from repro.fleet.executor import (
    ExecutionReport,
    ExecutorConfig,
    FleetTimeout,
    InjectedFailure,
    execute_campaign,
    execute_run,
    run_one,
)
from repro.fleet.pipeline import (
    PipelineConfig,
    PipelineReport,
    run_pipeline,
)
from repro.fleet.results import (
    ArtifactPaths,
    CampaignManifest,
    CampaignSummary,
    GroupSummary,
    StreamingAggregator,
    artifact_paths,
    pending_specs,
    percentile,
    read_manifest,
    read_results_jsonl,
    summarize,
    write_artifacts,
    write_results_jsonl,
)
from repro.fleet.store import (
    RunResultStore,
    ShardCheckpointStore,
    plan_hash,
    source_fingerprint,
)
from repro.fleet.telemetry import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExchangeSketch,
    RunResult,
    ValueSketch,
    failure_result,
    verdict_histogram,
)

__all__ = [
    "CANNED_CAMPAIGNS",
    "DEVICE_CLASSES",
    "ArtifactPaths",
    "ClockFn",
    "CampaignManifest",
    "CampaignSpec",
    "CampaignSummary",
    "Cohort",
    "ExchangeSketch",
    "ExecutionReport",
    "ExecutorBackend",
    "ExecutorConfig",
    "FleetTimeout",
    "GroupSummary",
    "InjectedFailure",
    "PipelineConfig",
    "PipelineReport",
    "ProcessPoolBackend",
    "RunResult",
    "RunResultStore",
    "RunSpec",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SerialBackend",
    "Shard",
    "ShardCheckpointStore",
    "ShardOutcome",
    "SpoolBackend",
    "SpoolWorker",
    "StreamingAggregator",
    "ValueSketch",
    "artifact_paths",
    "canned_campaign",
    "execute_campaign",
    "execute_run",
    "failure_result",
    "hetero_fleet_campaign",
    "locking_availability_campaign",
    "make_shards",
    "matrix_fleet_campaign",
    "monotonic_time",
    "pending_specs",
    "perf_time",
    "percentile",
    "plan_hash",
    "qoa_fleet_campaign",
    "read_manifest",
    "read_results_jsonl",
    "resolve_backend",
    "run_one",
    "run_pipeline",
    "source_fingerprint",
    "summarize",
    "verdict_histogram",
    "wall_time",
    "write_artifacts",
    "write_results_jsonl",
]
