"""The staged campaign pipeline: plan -> shard -> execute -> stream -> reduce.

This is the fleet's scale-out path.  The historical executor collected
every :class:`~repro.fleet.telemetry.RunResult` in one list and handed
it to the aggregator; at a million provers that list *is* the OOM.
The pipeline keeps results moving instead:

1. **plan** -- :meth:`CampaignSpec.plan` expands the declarative sweep
   (cohorts, device classes, firmware versions included) into an
   ordered spec list;
2. **shard** -- :func:`repro.fleet.backends.make_shards` slices the
   plan into fixed-size shards, the unit of dispatch and resume;
3. **execute** -- an :class:`~repro.fleet.backends.ExecutorBackend`
   (in-process, process pool, or spooled remote workers) yields each
   shard's results as it completes;
4. **stream** -- every completed shard is immediately checkpointed to
   a run_id-sorted JSONL file (atomic rename) via
   :class:`~repro.fleet.store.ShardCheckpointStore`, so a killed
   campaign resumes from its last completed shard;
5. **reduce** -- a k-way merge over the checkpoint files streams
   results one at a time, in global run_id order, through a
   :class:`~repro.fleet.results.StreamingAggregator` while writing
   ``runs.jsonl`` incrementally.

Peak aggregator memory is O(groups + shards), never O(runs), and the
reduce fold visits results in exactly the order the batch path
(:func:`~repro.fleet.results.write_artifacts`) does -- which is why a
streamed, resumed, or remote-executed campaign produces *byte-identical*
artifacts to an uninterrupted in-memory run.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.backends import (
    ExecutorBackend,
    LogFn,
    SerialBackend,
    Shard,
    make_shards,
)
from repro.fleet.campaign import CampaignSpec, RunSpec
from repro.fleet.clock import ClockFn, perf_time, wall_time
from repro.fleet.executor import Runner, execute_run
from repro.fleet.results import (
    MANIFEST_VERSION,
    ArtifactPaths,
    CampaignManifest,
    CampaignSummary,
    StreamingAggregator,
    artifact_paths,
    read_results_jsonl,
)
from repro.fleet.store import (
    RunResultStore,
    ShardCheckpointStore,
    source_fingerprint,
)
from repro.fleet.telemetry import RunResult


@dataclass
class PipelineConfig:
    """Knobs for one streamed campaign execution."""

    shard_size: int = 8
    retries: int = 1
    #: reuse prior shard checkpoints and prior final artifacts for the
    #: same plan (continuation after a kill; trusts run_ids)
    resume: bool = False
    #: reuse prior *ok* results only under a matching source
    #: fingerprint (stricter than resume, which it subsumes)
    incremental: bool = False
    #: keep the shards/ directory after a successful finalize
    #: (debugging aid; normally it is deleted)
    keep_checkpoints: bool = False

    def __post_init__(self) -> None:
        if self.shard_size <= 0:
            raise ConfigurationError("shard_size must be positive")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")


@dataclass
class PipelineReport:
    """What one pipeline pass did.

    ``executed``/``status_counts`` cover only runs that actually
    executed this pass; ``total_runs`` and ``summary`` cover the whole
    campaign (executed + restored from checkpoints or caches).
    """

    campaign: str
    total_runs: int
    executed: int
    restored: int
    cache_hits: int
    status_counts: Dict[str, int]
    mode: str
    workers: int
    shard_count: int
    executed_shards: int
    degraded_shards: int
    wall_clock: float
    summary: CampaignSummary
    paths: ArtifactPaths
    log: List[str] = field(default_factory=list)

    def summary_line(self) -> str:
        breakdown = " ".join(
            f"{status}={count}"
            for status, count in sorted(self.status_counts.items())
        )
        return (
            f"{self.executed} runs in {self.wall_clock:.2f}s "
            f"({self.mode}, workers={self.workers}, "
            f"shards={self.shard_count}, degraded={self.degraded_shards}): "
            f"{breakdown or 'nothing to do'}"
        )


def plan_shards(
    specs: Sequence[RunSpec], shard_size: int
) -> List[Shard]:
    """Stage 2: slice an ordered plan into dispatchable shards."""
    return make_shards(specs, shard_size)


# ---------------------------------------------------------------------------
# Prior-result discovery (resume / incremental)
# ---------------------------------------------------------------------------


def _prior_results(
    out_dir: Any,
    campaign: CampaignSpec,
    specs: Sequence[RunSpec],
    config: PipelineConfig,
    fingerprint: str,
    emit: LogFn,
) -> Tuple[Dict[str, RunResult], int]:
    """Reusable prior results keyed by run_id, plus the cache-hit count.

    ``--incremental`` consults the final-artifact store under the
    fingerprint contract (reused results count as cache hits);
    ``--resume`` trusts any prior final artifacts for the same run ids
    (a continuation, not a cache -- hits are not counted).
    """
    prior: Dict[str, RunResult] = {}
    cache_hits = 0
    if config.incremental:
        store = RunResultStore(out_dir, campaign.name)
        hits, pending = store.cached(specs, fingerprint)
        for result in hits:
            prior[result.run_id] = result
        cache_hits = len(hits)
        emit(
            f"incremental: {len(hits)}/{len(specs)} cache hits "
            f"({len(pending)} to run)"
        )
    elif config.resume:
        paths = artifact_paths(out_dir, campaign.name)
        if paths.runs.exists():
            for result in read_results_jsonl(paths.runs):
                if result.ok:
                    prior[result.run_id] = result
    return prior, cache_hits


# ---------------------------------------------------------------------------
# Stage 5: the streaming reduce
# ---------------------------------------------------------------------------


def _merged_stream(
    checkpoints: ShardCheckpointStore, shard_indices: Sequence[int]
) -> Iterator[RunResult]:
    """K-way merge of run_id-sorted shard checkpoints into one
    globally run_id-sorted result stream."""
    iterators = [checkpoints.read_shard(index) for index in shard_indices]
    return heapq.merge(*iterators, key=lambda result: result.run_id)


def _reduce_stream(
    stream: Iterator[RunResult],
    paths: ArtifactPaths,
    campaign: CampaignSpec,
) -> StreamingAggregator:
    """Write ``runs.jsonl`` incrementally while folding the canonical
    summary -- one pass, one result in memory at a time.

    The bytes match :func:`~repro.fleet.results.write_results_jsonl`
    exactly (every line newline-terminated, empty file for an empty
    campaign), and the fold order matches the batch path's
    run_id-sorted ``summarize``, so streaming changes *where* results
    live, never what the artifacts say.
    """
    aggregator = StreamingAggregator(campaign.name)
    with open(paths.runs, "w", encoding="utf-8") as handle:
        for result in stream:
            handle.write(result.to_json_line() + "\n")
            aggregator.add(result)
    return aggregator


def _write_summary_and_manifest(
    paths: ArtifactPaths,
    campaign: CampaignSpec,
    aggregator: StreamingAggregator,
    *,
    mode: str,
    workers: int,
    shard_count: int,
    degraded_shards: int,
    wall_clock: float,
    code_fingerprint: str,
    cache_hits: int,
    clock: Optional[ClockFn],
) -> CampaignSummary:
    summary = aggregator.summary()
    paths.summary_txt.write_text(summary.render() + "\n", encoding="utf-8")
    paths.summary_json.write_text(
        json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    manifest = CampaignManifest(
        version=MANIFEST_VERSION,
        campaign=campaign.name,
        spec_hash=campaign.spec_hash,
        run_count=aggregator.total,
        status_counts=dict(aggregator.status_counts),
        mode=mode,
        workers=workers,
        shard_count=shard_count,
        degraded_shards=degraded_shards,
        wall_clock=wall_clock,
        created_at=(clock or wall_time)(),
        artifacts={
            "runs": paths.runs.name,
            "summary_json": paths.summary_json.name,
            "summary_txt": paths.summary_txt.name,
        },
        code_fingerprint=code_fingerprint,
        cache_hits=cache_hits,
    )
    paths.manifest.write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return summary


# ---------------------------------------------------------------------------
# The pipeline driver
# ---------------------------------------------------------------------------


def run_pipeline(
    campaign: CampaignSpec,
    specs: Optional[Sequence[RunSpec]] = None,
    *,
    out_dir: Any = "fleet-artifacts",
    backend: Optional[ExecutorBackend] = None,
    config: Optional[PipelineConfig] = None,
    runner: Runner = execute_run,
    log: Optional[LogFn] = None,
    clock: Optional[ClockFn] = None,
    perf: Optional[ClockFn] = None,
) -> PipelineReport:
    """Run one campaign through the five stages; never raises for
    per-run failures (they become ``error``/``timeout`` results).

    ``specs`` overrides the plan (the CLI passes a truncated or
    timeout-stamped list); ``backend`` defaults to in-process serial.
    ``clock``/``perf`` inject the manifest timestamp and stopwatch for
    tests that need volatile-free manifests.

    A killed campaign (worker crash, SIGKILL, power loss) leaves its
    completed shards checkpointed on disk; re-running with
    ``config.resume=True`` restores them and executes only the rest,
    then finalizes artifacts byte-identical to an uninterrupted pass.
    """
    stopwatch = perf or perf_time
    start = stopwatch()
    emit_log: List[str] = []

    def emit(message: str) -> None:
        emit_log.append(message)
        if log is not None:
            log(message)

    config = config or PipelineConfig()
    backend = backend or SerialBackend()
    if specs is None:
        specs = campaign.plan()
    specs = list(specs)

    fingerprint = source_fingerprint()
    paths = artifact_paths(out_dir, campaign.name)
    paths.root.mkdir(parents=True, exist_ok=True)

    # -- stage 2: shard -------------------------------------------------
    shards = plan_shards(specs, config.shard_size)

    checkpoints = ShardCheckpointStore(
        out_dir,
        campaign.name,
        campaign.spec_hash,
        specs,
        config.shard_size,
        fingerprint,
    )
    completed = (
        checkpoints.completed_shards()
        if (config.resume or config.incremental)
        else {}
    )
    checkpoints.open()

    prior, cache_hits = _prior_results(
        out_dir, campaign, specs, config, fingerprint, emit
    )

    # -- stages 3+4: execute and checkpoint -----------------------------
    # A shard is (a) already checkpointed from a killed pass, (b) fully
    # covered by prior results (synthesize its checkpoint without
    # executing), or (c) executed -- in full, or only its missing specs
    # merged with prior hits.
    restored = 0
    pending_work: List[Shard] = []
    prior_by_shard: Dict[int, List[RunResult]] = {}
    for shard in shards:
        if shard.index in completed:
            restored += len(shard.specs)
            continue
        hits = [
            prior[spec.run_id]
            for spec in shard.specs
            if spec.run_id in prior
        ]
        missing = [
            spec for spec in shard.specs if spec.run_id not in prior
        ]
        if not missing:
            checkpoints.write_shard(shard.index, hits)
            restored += len(hits)
            continue
        if hits:
            prior_by_shard[shard.index] = hits
            restored += len(hits)
        pending_work.append(Shard(index=shard.index, specs=missing))

    if completed:
        emit(
            f"resume: restored {len(completed)}/{len(shards)} "
            f"checkpointed shard(s)"
        )

    executed = 0
    executed_shards = 0
    degraded_shards = 0
    status_counts: Dict[str, int] = {}
    for outcome in backend.execute(
        pending_work, retries=config.retries, runner=runner, log=emit
    ):
        executed_shards += 1
        if outcome.degraded:
            degraded_shards += 1
        for result in outcome.results:
            executed += 1
            status_counts[result.status] = (
                status_counts.get(result.status, 0) + 1
            )
        checkpoints.write_shard(
            outcome.shard.index,
            outcome.results + prior_by_shard.get(outcome.shard.index, []),
        )

    # -- stage 5: stream + reduce ---------------------------------------
    shard_indices = [shard.index for shard in shards]
    aggregator = _reduce_stream(
        _merged_stream(checkpoints, shard_indices), paths, campaign
    )
    wall_clock = stopwatch() - start
    summary = _write_summary_and_manifest(
        paths,
        campaign,
        aggregator,
        mode=backend.mode,
        workers=backend.workers,
        shard_count=len(shards),
        degraded_shards=degraded_shards,
        wall_clock=wall_clock,
        code_fingerprint=fingerprint,
        cache_hits=cache_hits,
        clock=clock,
    )
    if not config.keep_checkpoints:
        checkpoints.discard()

    return PipelineReport(
        campaign=campaign.name,
        total_runs=aggregator.total,
        executed=executed,
        restored=restored,
        cache_hits=cache_hits,
        status_counts=status_counts,
        mode=backend.mode,
        workers=backend.workers,
        shard_count=len(shards),
        executed_shards=executed_shards,
        degraded_shards=degraded_shards,
        wall_clock=wall_clock,
        summary=summary,
        paths=paths,
        log=emit_log,
    )
