"""Structured per-run telemetry.

Every fleet run folds its whole simulation into one
:class:`RunResult`: verdict histogram, detection latency, QoA
parameters, the availability report from :mod:`repro.apps.metrics`,
measurement and crypto-op counters, simulated and wall-clock time.

Results are JSON-serializable so they cross process boundaries and
land in JSONL artifacts.  The *deterministic* projection
(:meth:`RunResult.to_json_line`) excludes volatile fields (wall clock,
attempt count, worker host) so the same :class:`RunSpec` produces a
byte-identical line whether it ran serially, in a pool, or on another
machine -- which is what makes artifacts diffable and resumable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.apps.metrics import AvailabilityReport

#: fields excluded from the deterministic projection.  ``cache_hit``
#: is volatile by the same argument as wall clock: whether a run was
#: served from a :class:`repro.fleet.store.RunResultStore` says
#: nothing about the simulation, and an incremental re-run must emit
#: a ``runs.jsonl`` byte-identical to the full run it skipped.
VOLATILE_FIELDS = ("wall_clock", "attempts", "worker", "cache_hit")

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: fixed bucket bounds every :class:`ExchangeSketch` shares -- merging
#: across shards requires identical geometry, so these are a protocol
#: constant, not a knob
SKETCH_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)

#: how many slowest exchanges a sketch remembers by trace_id
SKETCH_TOP_K = 5


class ValueSketch:
    """Mergeable bounded-memory summary of a scalar distribution.

    The streaming reducer's unit of numeric telemetry: count / sum /
    min / max plus fixed-size bucket counts over the shared
    :data:`SKETCH_BUCKETS` geometry.  A million-run campaign folds any
    per-run scalar (detection latency, MP duration) into a handful of
    integers, so peak aggregator memory is independent of run count.
    ``merge`` is associative and commutative, which is what lets
    per-shard partial summaries reduce in any arrival order.
    """

    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts = [0] * (len(SKETCH_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(SKETCH_BUCKETS)
        for i, bound in enumerate(SKETCH_BUCKETS):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "ValueSketch") -> "ValueSketch":
        self.count += other.count
        self.sum += other.sum
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        for i, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[i] += bucket
        return self

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the containing
        bucket, clamped to the observed max)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if bucket and cumulative >= rank:
                if i == len(SKETCH_BUCKETS):
                    return self.max
                return min(SKETCH_BUCKETS[i], self.max)
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if self.count else 0.0,
            "max": round(self.max, 9) if self.count else 0.0,
            "buckets": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ValueSketch":
        sketch = cls()
        sketch.count = int(data.get("count", 0))
        sketch.sum = float(data.get("sum", 0.0))
        if sketch.count:
            sketch.min = float(data.get("min", 0.0))
            sketch.max = float(data.get("max", 0.0))
        buckets = data.get("buckets") or []
        if len(buckets) == len(sketch.bucket_counts):
            sketch.bucket_counts = [int(b) for b in buckets]
        return sketch


class ExchangeSketch(ValueSketch):
    """Mergeable bounded-memory summary of per-exchange latencies.

    A :class:`ValueSketch` that additionally remembers a top-K list of
    the slowest exchanges with their trace ids, so a million-exchange
    campaign folds into ``GroupSummary`` without any shard ever
    shipping full traces.  ``merge`` is associative and commutative
    over everything except top-K tie order, which is made
    deterministic by the (latency desc, trace_id asc) sort.
    """

    __slots__ = ("top",)

    def __init__(self) -> None:
        super().__init__()
        #: [(latency, trace_id, label), ...] slowest-first, <= TOP_K
        self.top: List[List[Any]] = []

    def observe(self, latency: float, trace_id: str = "",
                label: str = "") -> None:
        super().observe(latency)
        # repro: allow[perf-unbounded-queue] -- _trim() caps at TOP_K
        self.top.append([float(latency), trace_id, label])
        self._trim()

    def _trim(self) -> None:
        self.top.sort(key=lambda row: (-row[0], row[1], row[2]))
        del self.top[SKETCH_TOP_K:]

    def merge(self, other: "ValueSketch") -> "ExchangeSketch":
        super().merge(other)
        if isinstance(other, ExchangeSketch):
            # repro: allow[perf-unbounded-queue] -- _trim() caps at TOP_K
            self.top.extend(list(row) for row in other.top)
            self._trim()
        return self

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["top"] = [
            [round(latency, 9), trace_id, label]
            for latency, trace_id, label in self.top
        ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExchangeSketch":
        sketch = super().from_dict(data)
        sketch.top = [
            [float(row[0]), str(row[1]), str(row[2])]
            for row in (data.get("top") or [])
        ]
        sketch._trim()
        return sketch


@dataclass
class RunResult:
    """Everything measured from one fleet run."""

    run_id: str
    spec: Dict[str, Any]
    status: str = STATUS_OK
    error: str = ""
    # -- verdicts / detection ------------------------------------------
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    detected: bool = False
    first_detection_at: Optional[float] = None
    detection_latency: Optional[float] = None
    # -- QoA ------------------------------------------------------------
    qoa: Dict[str, float] = field(default_factory=dict)
    # -- availability ---------------------------------------------------
    availability: Optional[Dict[str, Any]] = None
    # -- measurement engine --------------------------------------------
    measurements: int = 0
    mp_duration: float = 0.0
    mp_interruptions: int = 0
    reports: int = 0
    # -- crypto-op counters --------------------------------------------
    hash_ops: int = 0
    hash_bytes: int = 0
    auth_ops: int = 0
    lock_ops: int = 0
    # -- trace ----------------------------------------------------------
    trace_events: int = 0
    trace_dropped: int = 0
    # -- observability ---------------------------------------------------
    #: flat sim-time metric snapshot (repro.obs); deterministic because
    #: every value is stamped from the simulation clock
    telemetry: Dict[str, float] = field(default_factory=dict)
    # -- degradation ------------------------------------------------------
    #: OutcomeReport aggregate (fault-injected runs only); excluded
    #: from serialization when empty so fault-free artifacts keep their
    #: historical byte-identical form
    outcomes: Dict[str, Any] = field(default_factory=dict)
    # -- causal tracing ---------------------------------------------------
    #: exchange-trace summary (span-enabled runs only): distinct trace
    #: count, an :class:`ExchangeSketch` dict, exemplar tables.  Empty
    #: on default metrics-only runs and excluded from serialization,
    #: same byte-identity rule as ``outcomes``
    trace_summary: Dict[str, Any] = field(default_factory=dict)
    #: SLO engine summary (``RunSpec.slo`` runs only); same empty-drop
    #: rule
    slo: Dict[str, Any] = field(default_factory=dict)
    # -- time ------------------------------------------------------------
    sim_time: float = 0.0
    wall_clock: float = 0.0  # volatile
    attempts: int = 1  # volatile
    worker: str = ""  # volatile
    #: served from the incremental artifact cache instead of executed
    cache_hit: bool = False  # volatile

    # -- serialization --------------------------------------------------

    def to_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        data = asdict(self)
        data["spec"] = dict(sorted(self.spec.items()))
        data["verdict_counts"] = dict(sorted(self.verdict_counts.items()))
        data["qoa"] = dict(sorted(self.qoa.items()))
        data["telemetry"] = dict(sorted(self.telemetry.items()))
        if not data["outcomes"]:
            del data["outcomes"]
        if not data["trace_summary"]:
            del data["trace_summary"]
        if not data["slo"]:
            del data["slo"]
        if deterministic:
            for name in VOLATILE_FIELDS:
                data.pop(name, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json_line(self) -> str:
        """The canonical, deterministic JSONL form of this result."""
        return json.dumps(
            self.to_dict(deterministic=True),
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json_line(cls, line: str) -> "RunResult":
        return cls.from_dict(json.loads(line))

    # -- convenience ----------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def availability_report(self) -> Optional[AvailabilityReport]:
        if self.availability is None:
            return None
        return AvailabilityReport.from_dict(self.availability)

    @property
    def miss_rate(self) -> float:
        if not self.availability:
            return 0.0
        released = self.availability.get("jobs_released", 0)
        if not released:
            return 0.0
        return self.availability.get("deadline_misses", 0) / released

    def summary_line(self) -> str:
        spec = self.spec
        tail = (
            f"detected={self.detected} mp={self.mp_duration:.3f}s "
            f"measurements={self.measurements}"
            if self.ok
            else f"{self.status}: {self.error.splitlines()[-1] if self.error else '?'}"
        )
        return (
            f"{self.run_id:<44} {spec.get('mechanism', '?'):<9} "
            f"vs {spec.get('adversary', '?'):<10} {tail}"
        )


def failure_result(
    run_id: str,
    spec: Dict[str, Any],
    status: str,
    error: str,
    attempts: int = 1,
    wall_clock: float = 0.0,
) -> RunResult:
    """A :class:`RunResult` for a run that never produced telemetry."""
    return RunResult(
        run_id=run_id,
        spec=spec,
        status=status,
        error=error,
        attempts=attempts,
        wall_clock=wall_clock,
    )


def verdict_histogram(results: List[Any]) -> Dict[str, int]:
    """Count verifier verdicts by name."""
    counts: Dict[str, int] = {}
    for result in results:
        key = result.verdict.value
        counts[key] = counts.get(key, 0) + 1
    return counts
