"""Structured per-run telemetry.

Every fleet run folds its whole simulation into one
:class:`RunResult`: verdict histogram, detection latency, QoA
parameters, the availability report from :mod:`repro.apps.metrics`,
measurement and crypto-op counters, simulated and wall-clock time.

Results are JSON-serializable so they cross process boundaries and
land in JSONL artifacts.  The *deterministic* projection
(:meth:`RunResult.to_json_line`) excludes volatile fields (wall clock,
attempt count, worker host) so the same :class:`RunSpec` produces a
byte-identical line whether it ran serially, in a pool, or on another
machine -- which is what makes artifacts diffable and resumable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.apps.metrics import AvailabilityReport

#: fields excluded from the deterministic projection.  ``cache_hit``
#: is volatile by the same argument as wall clock: whether a run was
#: served from a :class:`repro.fleet.store.RunResultStore` says
#: nothing about the simulation, and an incremental re-run must emit
#: a ``runs.jsonl`` byte-identical to the full run it skipped.
VOLATILE_FIELDS = ("wall_clock", "attempts", "worker", "cache_hit")

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class RunResult:
    """Everything measured from one fleet run."""

    run_id: str
    spec: Dict[str, Any]
    status: str = STATUS_OK
    error: str = ""
    # -- verdicts / detection ------------------------------------------
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    detected: bool = False
    first_detection_at: Optional[float] = None
    detection_latency: Optional[float] = None
    # -- QoA ------------------------------------------------------------
    qoa: Dict[str, float] = field(default_factory=dict)
    # -- availability ---------------------------------------------------
    availability: Optional[Dict[str, Any]] = None
    # -- measurement engine --------------------------------------------
    measurements: int = 0
    mp_duration: float = 0.0
    mp_interruptions: int = 0
    reports: int = 0
    # -- crypto-op counters --------------------------------------------
    hash_ops: int = 0
    hash_bytes: int = 0
    auth_ops: int = 0
    lock_ops: int = 0
    # -- trace ----------------------------------------------------------
    trace_events: int = 0
    trace_dropped: int = 0
    # -- observability ---------------------------------------------------
    #: flat sim-time metric snapshot (repro.obs); deterministic because
    #: every value is stamped from the simulation clock
    telemetry: Dict[str, float] = field(default_factory=dict)
    # -- degradation ------------------------------------------------------
    #: OutcomeReport aggregate (fault-injected runs only); excluded
    #: from serialization when empty so fault-free artifacts keep their
    #: historical byte-identical form
    outcomes: Dict[str, Any] = field(default_factory=dict)
    # -- time ------------------------------------------------------------
    sim_time: float = 0.0
    wall_clock: float = 0.0  # volatile
    attempts: int = 1  # volatile
    worker: str = ""  # volatile
    #: served from the incremental artifact cache instead of executed
    cache_hit: bool = False  # volatile

    # -- serialization --------------------------------------------------

    def to_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        data = asdict(self)
        data["spec"] = dict(sorted(self.spec.items()))
        data["verdict_counts"] = dict(sorted(self.verdict_counts.items()))
        data["qoa"] = dict(sorted(self.qoa.items()))
        data["telemetry"] = dict(sorted(self.telemetry.items()))
        if not data["outcomes"]:
            del data["outcomes"]
        if deterministic:
            for name in VOLATILE_FIELDS:
                data.pop(name, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json_line(self) -> str:
        """The canonical, deterministic JSONL form of this result."""
        return json.dumps(
            self.to_dict(deterministic=True),
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json_line(cls, line: str) -> "RunResult":
        return cls.from_dict(json.loads(line))

    # -- convenience ----------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def availability_report(self) -> Optional[AvailabilityReport]:
        if self.availability is None:
            return None
        return AvailabilityReport.from_dict(self.availability)

    @property
    def miss_rate(self) -> float:
        if not self.availability:
            return 0.0
        released = self.availability.get("jobs_released", 0)
        if not released:
            return 0.0
        return self.availability.get("deadline_misses", 0) / released

    def summary_line(self) -> str:
        spec = self.spec
        tail = (
            f"detected={self.detected} mp={self.mp_duration:.3f}s "
            f"measurements={self.measurements}"
            if self.ok
            else f"{self.status}: {self.error.splitlines()[-1] if self.error else '?'}"
        )
        return (
            f"{self.run_id:<44} {spec.get('mechanism', '?'):<9} "
            f"vs {spec.get('adversary', '?'):<10} {tail}"
        )


def failure_result(
    run_id: str,
    spec: Dict[str, Any],
    status: str,
    error: str,
    attempts: int = 1,
    wall_clock: float = 0.0,
) -> RunResult:
    """A :class:`RunResult` for a run that never produced telemetry."""
    return RunResult(
        run_id=run_id,
        spec=spec,
        status=status,
        error=error,
        attempts=attempts,
        wall_clock=wall_clock,
    )


def verdict_histogram(results: List[Any]) -> Dict[str, int]:
    """Count verifier verdicts by name."""
    counts: Dict[str, int] = {}
    for result in results:
        key = result.verdict.value
        counts[key] = counts.get(key, 0) + 1
    return counts
