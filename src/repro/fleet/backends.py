"""Executor backends: where shards actually run.

The *execute* stage of the campaign pipeline is a small protocol --
:class:`ExecutorBackend` -- so the same plan/shard/stream/reduce
machinery drives an in-process loop, a local process pool, or a fleet
of remote workers without caring which:

* :class:`SerialBackend` -- in-process, the debugging/test baseline;
* :class:`ProcessPoolBackend` -- shards over a ``ProcessPoolExecutor``,
  with per-shard degradation to in-process execution when a worker
  crashes and wholesale degradation to serial when no pool exists;
* :class:`SpoolBackend` -- a file-based remote-worker protocol: shards
  are spooled as claimable job files, any number of ``repro fleet
  worker`` processes (possibly on other machines sharing the
  directory) claim and execute them, and result files stream back.

Backends *yield* one :class:`ShardOutcome` at a time, as soon as it
completes, so the downstream streaming reducer never needs the whole
campaign in RAM.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
)

from repro.errors import ConfigurationError
from repro.fleet.campaign import RunSpec
from repro.fleet.clock import monotonic_time
from repro.fleet.executor import Runner, _run_shard, execute_run
from repro.fleet.telemetry import RunResult

LogFn = Callable[[str], None]


@dataclass
class Shard:
    """One plan-order slice of a campaign: the unit of dispatch,
    checkpointing and resume."""

    index: int
    specs: List[RunSpec]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __getitem__(self, item: Any) -> Any:
        return self.specs[item]


@dataclass
class ShardOutcome:
    """One executed shard: its results, and how it got them."""

    shard: Shard
    results: List[RunResult]
    #: the shard lost its preferred executor and fell back (e.g. a
    #: pool worker crashed and the shard re-ran in-process)
    degraded: bool = False


class ExecutorBackend(Protocol):
    """Anything that can turn shards into shard outcomes.

    ``execute`` is a generator: outcomes must be yielded as they
    complete so the streaming reducer can checkpoint and fold without
    holding the campaign in memory.  ``mode`` and ``workers`` describe
    what actually happened (after any degradation) and are read once
    the iterator is exhausted.
    """

    mode: str
    workers: int

    def execute(
        self,
        shards: Sequence[Shard],
        *,
        retries: int = 1,
        runner: Runner = execute_run,
        log: Optional[LogFn] = None,
    ) -> Iterator[ShardOutcome]:
        ...


def make_shards(
    specs: Sequence[RunSpec], shard_size: int
) -> List[Shard]:
    """Partition ``specs`` into plan-order shards of ``shard_size``."""
    if shard_size <= 0:
        raise ConfigurationError("shard_size must be positive")
    return [
        Shard(index=index // shard_size,
              specs=list(specs[index:index + shard_size]))
        for index in range(0, len(specs), shard_size)
    ]


# ---------------------------------------------------------------------------
# In-process serial
# ---------------------------------------------------------------------------


class SerialBackend:
    """Execute every shard in this process, in plan order."""

    def __init__(self) -> None:
        self.mode = "serial"
        self.workers = 1

    def execute(
        self,
        shards: Sequence[Shard],
        *,
        retries: int = 1,
        runner: Runner = execute_run,
        log: Optional[LogFn] = None,
    ) -> Iterator[ShardOutcome]:
        for shard in shards:
            yield ShardOutcome(
                shard=shard,
                results=_run_shard(shard.specs, retries, runner),
            )


# ---------------------------------------------------------------------------
# Local process pool
# ---------------------------------------------------------------------------


def _default_pool_factory(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers)


class ProcessPoolBackend:
    """Shards over a local ``ProcessPoolExecutor``.

    Failure containment mirrors the historical executor exactly: a
    shard whose worker crashes (``BrokenProcessPool``) re-runs
    in-process and is marked degraded; once the pool breaks, every
    remaining shard degrades without waiting on dead futures; and if
    no pool can be created at all the whole campaign runs serially
    (``mode`` reports ``"serial"`` and every shard counts degraded).
    ``runner`` must be module-level (picklable) for pool dispatch.
    """

    def __init__(
        self,
        workers: int = 2,
        pool_factory: Callable[[int], ProcessPoolExecutor] = _default_pool_factory,
    ) -> None:
        self.workers = max(2, workers)
        self.pool_factory = pool_factory
        self.mode = "parallel"

    def execute(
        self,
        shards: Sequence[Shard],
        *,
        retries: int = 1,
        runner: Runner = execute_run,
        log: Optional[LogFn] = None,
    ) -> Iterator[ShardOutcome]:
        emit = log or (lambda message: None)
        pool = None
        try:
            pool = self.pool_factory(self.workers)
        except Exception as exc:  # no pool available: degrade to serial
            emit(f"process pool unavailable ({exc!r}); running serially")
            self.mode = "serial"
            self.workers = 1
            for shard in shards:
                yield ShardOutcome(
                    shard=shard,
                    results=_run_shard(shard.specs, retries, runner),
                    degraded=True,
                )
            return

        self.mode = "parallel"
        pool_broken = False
        try:
            futures = [
                pool.submit(_run_shard, shard.specs, retries, runner)
                for shard in shards
            ]
            for shard, future in zip(shards, futures):
                try:
                    if pool_broken:
                        raise BrokenProcessPool("pool already broken")
                    results = future.result()
                    degraded = False
                except (BrokenProcessPool, OSError) as exc:
                    pool_broken = True
                    emit(
                        f"shard {shard.index} lost its worker ({exc!r}); "
                        "re-running in-process"
                    )
                    results = _run_shard(shard.specs, retries, runner)
                    degraded = True
                yield ShardOutcome(
                    shard=shard, results=results, degraded=degraded
                )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# File-based remote-worker spool
# ---------------------------------------------------------------------------

#: spool sub-directories; a shared filesystem is the only transport
#: requirement, so "remote" can mean another process, container, or a
#: host mounting the same volume
SPOOL_DIRS = ("inbox", "claimed", "outbox")


def _atomic_write(path: Path, body: str) -> None:
    """Write-then-rename so claimers never observe a partial file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(body, encoding="utf-8")
    os.replace(tmp, path)


@dataclass
class SpoolJob:
    """One spooled shard: the wire form of a dispatch."""

    shard_index: int
    retries: int
    specs: List[Dict[str, Any]]

    def to_json(self) -> str:
        return json.dumps(
            {
                "shard_index": self.shard_index,
                "retries": self.retries,
                "specs": self.specs,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, body: str) -> "SpoolJob":
        data = json.loads(body)
        return cls(
            shard_index=int(data["shard_index"]),
            retries=int(data.get("retries", 1)),
            specs=list(data["specs"]),
        )


class SpoolWorker:
    """Claims and executes spooled shards: the remote half of
    :class:`SpoolBackend`.

    Claiming is an atomic rename from ``inbox/`` to ``claimed/`` --
    the filesystem arbitrates between competing workers, no locks.
    Results are written to ``outbox/`` via write-then-rename, one
    JSON result object per line (the *non*-deterministic projection:
    volatile fields like attempts survive the wire).
    """

    def __init__(self, root: Any, runner: Runner = execute_run) -> None:
        self.root = Path(root)
        self.runner = runner
        for name in SPOOL_DIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    def claim_one(self) -> Optional[Path]:
        for job_path in sorted((self.root / "inbox").glob("shard-*.json")):
            claimed = self.root / "claimed" / job_path.name
            try:
                os.replace(job_path, claimed)
            except OSError:
                continue  # another worker won the rename
            return claimed
        return None

    def process_one(self) -> bool:
        """Claim and execute one shard; returns False when idle."""
        claimed = self.claim_one()
        if claimed is None:
            return False
        job = SpoolJob.from_json(claimed.read_text(encoding="utf-8"))
        results = [
            # late import keeps the worker's import surface identical
            # to the in-process path
            _spool_run_one(spec_data, job.retries, self.runner)
            for spec_data in job.specs
        ]
        body = "".join(
            json.dumps(result.to_dict(), sort_keys=True) + "\n"
            for result in results
        )
        _atomic_write(
            self.root / "outbox" / f"shard-{job.shard_index:06d}.jsonl",
            body,
        )
        claimed.unlink(missing_ok=True)
        return True

    def run(
        self,
        once: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: float = 0.0,
        log: Optional[LogFn] = None,
    ) -> int:
        """Worker loop; returns the number of shards processed.

        ``once`` drains the current inbox and exits.  ``idle_timeout``
        (seconds, 0 = forever) bounds how long a looping worker waits
        for new jobs before exiting.
        """
        emit = log or (lambda message: None)
        processed = 0
        idle_since = monotonic_time()
        while True:
            if self.process_one():
                processed += 1
                idle_since = monotonic_time()
                continue
            if once:
                return processed
            if idle_timeout > 0 and monotonic_time() - idle_since >= idle_timeout:
                emit(f"spool worker idle for {idle_timeout:g}s; exiting")
                return processed
            time.sleep(poll_interval)


def _spool_run_one(
    spec_data: Dict[str, Any], retries: int, runner: Runner
) -> RunResult:
    from repro.fleet.executor import run_one

    return run_one(RunSpec.from_dict(spec_data), retries=retries,
                   runner=runner)


class SpoolBackend:
    """Dispatch shards through a shared-directory spool.

    The "remote worker" stub of the backend protocol: shards are
    written as claimable job files and outcomes stream back as result
    files appear, in shard order.  With ``self_serve=True`` (the
    default, and what keeps tests and single-host runs hermetic) the
    backend runs an embedded :class:`SpoolWorker` whenever it is
    waiting, so a campaign completes even with no external workers
    attached -- real deployments point ``repro fleet worker --spool``
    processes at the same directory and the backend's embedded worker
    simply never wins a claim.
    """

    def __init__(
        self,
        root: Any,
        self_serve: bool = True,
        poll_interval: float = 0.05,
        timeout: float = 600.0,
    ) -> None:
        self.root = Path(root)
        self.self_serve = self_serve
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.mode = "spool"
        self.workers = 0  # unknown: workers are external by design

    def execute(
        self,
        shards: Sequence[Shard],
        *,
        retries: int = 1,
        runner: Runner = execute_run,
        log: Optional[LogFn] = None,
    ) -> Iterator[ShardOutcome]:
        emit = log or (lambda message: None)
        worker = SpoolWorker(self.root, runner=runner)  # also mkdirs
        for shard in shards:
            job = SpoolJob(
                shard_index=shard.index,
                retries=retries,
                specs=[spec.to_dict() for spec in shard.specs],
            )
            _atomic_write(
                self.root / "inbox" / f"shard-{shard.index:06d}.json",
                job.to_json(),
            )
        emit(
            f"spooled {len(shards)} shard(s) to {self.root / 'inbox'}"
        )
        for shard in shards:
            out_path = self.root / "outbox" / f"shard-{shard.index:06d}.jsonl"
            deadline = monotonic_time() + self.timeout
            while not out_path.exists():
                busy = self.self_serve and worker.process_one()
                if not busy:
                    if monotonic_time() >= deadline:
                        raise TimeoutError(
                            f"no worker produced {out_path.name} within "
                            f"{self.timeout:g}s"
                        )
                    time.sleep(self.poll_interval)
            results = [
                RunResult.from_dict(json.loads(line))
                for line in out_path.read_text(encoding="utf-8").splitlines()
                if line.strip()
            ]
            yield ShardOutcome(shard=shard, results=results)


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------


def resolve_backend(
    name: str,
    pool_factory: Callable[[int], ProcessPoolExecutor] = _default_pool_factory,
) -> ExecutorBackend:
    """Parse a backend spec string into a backend instance.

    * ``"serial"`` -- :class:`SerialBackend`
    * ``"process"`` / ``"process:N"`` -- :class:`ProcessPoolBackend`
      with N workers (default: CPU count)
    * ``"spool:DIR"`` -- :class:`SpoolBackend` rooted at DIR
    """
    kind, _, arg = name.partition(":")
    if kind == "serial":
        if arg:
            raise ConfigurationError("serial backend takes no argument")
        return SerialBackend()
    if kind == "process":
        workers = int(arg) if arg else (os.cpu_count() or 2)
        return ProcessPoolBackend(workers=workers, pool_factory=pool_factory)
    if kind == "spool":
        if not arg:
            raise ConfigurationError(
                "spool backend needs a directory: spool:DIR"
            )
        return SpoolBackend(arg)
    raise ConfigurationError(
        f"unknown backend {name!r}; known: serial, process[:N], spool:DIR"
    )
