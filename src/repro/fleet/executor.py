"""Sharded campaign execution.

The executor turns a planned list of :class:`~repro.fleet.campaign.RunSpec`
into :class:`~repro.fleet.telemetry.RunResult` records.  Runs share
nothing: each worker builds its own :class:`~repro.sim.engine.Simulator`,
:class:`~repro.sim.device.Device` and :class:`~repro.ra.verifier.Verifier`
from the spec, so shards can execute in any process in any order and
still produce byte-identical deterministic telemetry.

Execution modes:

* **serial** -- in-process loop; the debugging/test baseline;
* **parallel** -- shards dispatched over a ``ProcessPoolExecutor``;
  degrades per-shard to in-process execution when a worker crashes,
  and degrades wholesale to serial mode when no pool can be created.

Failure containment, per run: a wall-clock timeout (``RunSpec.timeout``,
enforced with ``SIGALRM`` where available), bounded retries for raising
runs, and structured ``error``/``timeout`` results instead of
exceptions -- one bad run never takes down a campaign.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.apps.metrics import summarize_tasks
from repro.core.qoa import QoAParameters
from repro.core.tradeoff import ScenarioConfig
from repro.crypto.drbg import HmacDrbg
from repro.crypto.timing import OdroidXU4Model
from repro.errors import ConfigurationError
from repro.fleet.campaign import RunSpec
from repro.fleet.clock import perf_time
from repro.fleet.telemetry import (
    STATUS_ERROR,
    STATUS_TIMEOUT,
    ExchangeSketch,
    RunResult,
    failure_result,
    verdict_histogram,
)
from repro.obs.core import Observability
from repro.obs.metrics import MetricsRegistry
from repro.ra.report import Verdict
from repro.resilience.retry import RetryPolicy
from repro.scenario import Scenario
from repro.sim.trace import Trace


class FleetTimeout(Exception):
    """A run exceeded its wall-clock budget."""


class InjectedFailure(RuntimeError):
    """Raised by the ``crashtest`` mechanism (executor test hook)."""


# ---------------------------------------------------------------------------
# The worker: one RunSpec -> one simulated scenario -> one RunResult
# ---------------------------------------------------------------------------


def _scenario_config(spec: RunSpec) -> ScenarioConfig:
    return ScenarioConfig(
        block_count=spec.block_count,
        block_size=spec.block_size,
        sim_block_size=spec.sim_block_size,
        algorithm=spec.algorithm,
        request_at=spec.request_at,
        horizon=spec.horizon,
        smarm_rounds=spec.rounds,
        erasmus_period=spec.t_m,
        task_period=spec.task_period,
        task_wcet=spec.task_wcet,
        task_priority=spec.task_priority,
        mp_priority=spec.mp_priority,
        malware_block=spec.malware_block,
        infect_at=spec.infect_at,
    )


def _effective_seed(spec: RunSpec) -> int:
    """Scenario seed, with the firmware version folded in.

    Two firmware versions of the same cohort must measure *different*
    device images under the same nominal seed -- that is what makes a
    heterogeneous campaign's per-cohort telemetry diverge the way real
    mixed-firmware fleets do.  Stable across processes and machines
    (pure SHA-256, no process salt)."""
    if not spec.firmware:
        return spec.seed
    digest = hashlib.sha256(
        f"{spec.seed}-{spec.firmware}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


def _effective_infect_at(spec: RunSpec) -> float:
    """Infection time, with the seed-derived phase offset applied."""
    if spec.infect_jitter <= 0:
        return spec.infect_at
    drbg = HmacDrbg(
        f"{spec.campaign}-{spec.seed}-infect-phase".encode("utf-8")
    )
    return spec.infect_at + drbg.uniform() * spec.infect_jitter


def _retry_policy(spec: RunSpec) -> RetryPolicy:
    """Retransmission budget for fault-injected runs, sized from the
    device's timing model: the per-exchange timeout must cover a full
    measurement pass (plus channel latency), else every exchange would
    "time out" while the prover is still hashing."""
    measure = (
        OdroidXU4Model().hash_time(spec.algorithm, spec.sim_block_size)
        * spec.block_count
    )
    if spec.mechanism == "smarm":
        measure *= max(1, spec.rounds)
    timeout = max(0.5, 2.0 * measure)
    return RetryPolicy(
        timeout=timeout,
        max_retries=6,
        backoff=1.5,
        max_timeout=max(4.0, 2.0 * timeout),
        jitter=0.1,
        seed=f"fleet-retry-{spec.campaign}-{spec.seed}".encode(),
    )


def _qoa_stats(spec: RunSpec) -> Dict[str, float]:
    if spec.mechanism not in ("erasmus", "seed"):
        return {}
    params = QoAParameters(t_m=spec.t_m, t_c=spec.t_c)
    stats = {
        "t_m": spec.t_m,
        "t_c": spec.t_c,
        "worst_detection_latency": params.worst_detection_latency,
        "measurements_per_collection": params.measurements_per_collection,
    }
    if spec.dwell > 0:
        stats["dwell"] = spec.dwell
        stats["detection_probability"] = params.detection_probability(
            spec.dwell
        )
    return stats


def _attach_slo(
    spec: RunSpec, obs: Any, sim: Any, until: float, tasks: Sequence[Any] = ()
) -> Optional[Any]:
    """Arm the sim-time SLO engine when the spec declares objectives.

    The ``deadline`` probe bridges task deadline accounting (which
    lives in :class:`~repro.sim.task.TaskStats`, not the metrics
    registry) into the engine's ``(good, total)`` source model.
    """
    if not spec.slo:
        return None
    from repro.obs.slo import SLOEngine, parse_objectives

    engine = SLOEngine(obs, parse_objectives(spec.slo))
    if tasks:
        task_list = list(tasks)

        def deadline_probe():
            good = total = 0
            for task in task_list:
                stats = task.stats(as_of=sim.now)
                total += stats.jobs_released
                good += stats.jobs_released - stats.deadline_misses
            return good, total

        engine.register_probe("deadline", deadline_probe)
    engine.attach(sim, until=until)
    return engine


def _trace_summary(obs: Any) -> Dict[str, Any]:
    """Fold a span-enabled run's capture into the mergeable shape the
    cross-shard reducer consumes; empty on metrics-only runs so the
    deterministic artifact projection is untouched."""
    if not getattr(obs.spans, "enabled", False):
        return {}
    from repro.obs.report import exchange_records, exemplar_table

    sketch = ExchangeSketch()
    traces = set()
    for record in exchange_records(obs.spans):
        sketch.observe(
            record["latency"], record["trace_id"], record["name"]
        )
        traces.add(record["trace_id"])
    summary: Dict[str, Any] = {
        "spans": len(obs.spans),
        "traces": len(traces),
        "exchanges": sketch.to_dict(),
    }
    exemplars = exemplar_table(obs.metrics)
    if exemplars:
        summary["exemplars"] = exemplars
    return summary


def _execute_service_run(spec: RunSpec, obs: Optional[Any]) -> RunResult:
    """Worker path for the ``vserver`` mechanism: one served-verifier
    scenario (storm + admission + epoch drains) instead of a single
    prover/verifier pair.

    The run seed folds into the service seed, so seed replication
    resamples the storm phase the way ``infect_jitter`` resamples the
    infection phase.  Service-level stats (queue latency quantiles,
    admission counts) land in the ``qoa`` dict -- the quality-of-
    service analogue of the attestation-quality stats -- and the
    ``vserver.*`` metric snapshot rides in ``telemetry``.
    """
    import dataclasses

    from repro.vserver.service import ServiceConfig

    if obs is None:
        obs = Observability(metrics=MetricsRegistry())
    config = ServiceConfig.parse(spec.service or "smoke")
    config = dataclasses.replace(
        config, seed=f"{config.seed}-s{spec.seed:04d}"
    )
    scenario = Scenario.build(service=config, obs=obs)
    slo_engine = _attach_slo(spec, obs, scenario.sim, config.horizon)
    sim_time = scenario.sim.run(until=config.horizon)
    server = scenario.server
    stats = server.stats()

    compromised = [
        r for r in scenario.verifier.results
        if r.verdict is Verdict.COMPROMISED
    ]
    first_detection = (
        min(r.verified_at for r in compromised) if compromised else None
    )
    verified_records = sum(
        entry.records for entry in server.ledger
        if entry.status == "verified"
    )
    outcome_data = {
        key: value
        for key, value in scenario.outcomes.to_dict().items()
        if key != "exchanges"
    }
    return RunResult(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        verdict_counts=verdict_histogram(scenario.verifier.results),
        detected=bool(compromised),
        first_detection_at=first_detection,
        qoa={
            "service_submitted": float(stats["submitted"]),
            "service_verified": float(stats["verified"]),
            "service_rejected": float(stats["rejected"]),
            "service_unaccounted": float(stats["unaccounted"]),
            "service_max_queue_depth": float(stats["max_queue_depth"]),
            "service_queue_p50": stats["queue_latency_p50"],
            "service_queue_p99": stats["queue_latency_p99"],
        },
        measurements=verified_records,
        reports=stats["submitted"],
        hash_ops=verified_records * config.blocks,
        hash_bytes=verified_records * config.blocks * config.block_size,
        auth_ops=stats["verified"],
        telemetry=obs.metrics.snapshot_flat(),
        outcomes=outcome_data,
        trace_summary=_trace_summary(obs),
        slo=slo_engine.summary() if slo_engine else {},
        sim_time=sim_time,
    )


def execute_run(spec: RunSpec, obs: Optional[Any] = None) -> RunResult:
    """Build and run one scenario; raises on internal failure (the
    executor wraps this with retry/timeout handling).

    ``obs`` overrides the observability bundle; the default is a fresh
    metrics-only bundle, whose sim-time snapshot lands in
    ``RunResult.telemetry`` -- deterministic, so serial and parallel
    execution still produce byte-identical result lines.  Pass a
    span/profiler-enabled bundle (``repro obs`` / ``repro profile``)
    to capture the full timeline of a single run.
    """
    if spec.mechanism == "crashtest":
        raise InjectedFailure("injected crashtest failure")
    if spec.mechanism == "vserver":
        return _execute_service_run(spec, obs)
    if spec.mechanism == "sleeptest":
        # Burns *wall-clock* time equal to the simulated horizon --
        # only useful for exercising the timeout path.
        time.sleep(spec.horizon)
        return RunResult(run_id=spec.run_id, spec=spec.to_dict(),
                         sim_time=spec.horizon)

    if obs is None:
        obs = Observability(metrics=MetricsRegistry())

    # All wiring goes through the one factory; the executor only maps
    # spec fields onto factory arguments and schedules the protocol.
    faults = spec.faults or None
    scenario = Scenario.build(
        mechanism=spec.mechanism,
        malware=spec.adversary,
        faults=faults,
        workload=(
            spec.workload if spec.workload in ("firealarm", "writers")
            else None
        ),
        config=_scenario_config(spec),
        seed=_effective_seed(spec),
        retry=_retry_policy(spec) if faults else None,
        obs=obs,
        trace=Trace(max_records=spec.trace_limit),
        fault_seed=f"fleet-faults-{spec.campaign}-{spec.seed}".encode(),
        malware_options={
            "block": spec.malware_block,
            "infect_at": _effective_infect_at(spec),
            "dwell": spec.dwell,
            "rng_seed": spec.seed,
        },
        seed_options={
            "shared": hashlib.sha256(
                f"fleet-seed-{spec.campaign}-{spec.seed}".encode()
            ).digest()[:16],
        },
        workload_options={"tasks": spec.writer_tasks},
    )
    sim = scenario.sim
    device = scenario.device
    verifier = scenario.verifier
    tasks = scenario.tasks
    service: Any = scenario.service

    if scenario.driver is not None:
        request_rounds = spec.rounds if spec.mechanism == "smarm" else 1
        scenario.schedule_request(spec.request_at, rounds=request_rounds)
    elif scenario.collector is not None:
        scenario.schedule_collections(
            spec.t_c, max(1, int(spec.horizon / spec.t_c))
        )

    slo_engine = _attach_slo(spec, obs, sim, spec.horizon, tasks=tasks)
    sim_time = sim.run(until=spec.horizon)

    # -- fold the scenario into telemetry -------------------------------
    if scenario.seed_service is not None:
        reports = list(scenario.seed_service.reports_sent)
        records = [rec for report in reports for rec in report.records]
    elif scenario.collector is not None:
        records = list(service.history)
        reports = list(scenario.collector.collections)
    else:
        reports = list(service.reports_sent)
        records = [rec for report in reports for rec in report.records]

    compromised = [
        r for r in verifier.results if r.verdict is Verdict.COMPROMISED
    ]
    first_detection = (
        min(r.verified_at for r in compromised) if compromised else None
    )
    detection_latency = None
    if first_detection is not None and spec.adversary != "none":
        detection_latency = first_detection - _effective_infect_at(spec)

    availability = None
    if tasks:
        availability_report = summarize_tasks(device, tasks, elapsed=sim_time)
        if scenario.outcomes is not None:
            scenario.outcomes.fold_into(availability_report)
        availability = availability_report.to_dict()

    outcome_data: Dict[str, Any] = {}
    if scenario.outcomes is not None:
        # drop the per-exchange list: aggregates belong in the JSONL
        # artifact, exchange detail stays in-process
        outcome_data = {
            key: value
            for key, value in scenario.outcomes.to_dict().items()
            if key != "exchanges"
        }

    return RunResult(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        verdict_counts=verdict_histogram(verifier.results),
        detected=bool(compromised),
        first_detection_at=first_detection,
        detection_latency=detection_latency,
        qoa=_qoa_stats(spec),
        availability=availability,
        measurements=len(records),
        mp_duration=records[0].duration if records else 0.0,
        mp_interruptions=max(
            (rec.interruptions for rec in records), default=0
        ),
        reports=len(reports),
        hash_ops=sum(rec.block_count for rec in records),
        hash_bytes=sum(
            rec.block_count * spec.sim_block_size for rec in records
        ),
        auth_ops=len(reports) + len(verifier.results),
        lock_ops=device.mpu.lock_ops + device.mpu.unlock_ops,
        trace_events=len(device.trace),
        trace_dropped=device.trace.dropped,
        telemetry=obs.metrics.snapshot_flat(),
        outcomes=outcome_data,
        trace_summary=_trace_summary(obs),
        slo=slo_engine.summary() if slo_engine else {},
        sim_time=sim_time,
    )


# ---------------------------------------------------------------------------
# Failure containment around the worker
# ---------------------------------------------------------------------------


@contextmanager
def _deadline(seconds: float) -> Iterator[None]:
    """Raise :class:`FleetTimeout` if the block runs longer than
    ``seconds`` of wall-clock time.

    Degrades to a no-op (the run simply has no wall-clock budget)
    whenever the platform cannot arm a timer: zero budget, no
    ``SIGALRM``, off the main thread, or an interpreter whose signal
    machinery refuses the handler (embedded CPython, exotic ports).
    Timeouts are a containment nicety; failing to arm one must never
    itself take down a worker thread or backend.
    """
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise FleetTimeout()

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, OSError, RuntimeError):
        # main-thread checks can still lose the race (e.g. signal
        # delivery restricted by the embedding application)
        yield
        return
    try:
        if hasattr(signal, "setitimer"):
            signal.setitimer(signal.ITIMER_REAL, seconds)
        else:  # pragma: no cover - platforms without setitimer
            signal.alarm(max(1, int(seconds)))
    except (ValueError, OSError):
        signal.signal(signal.SIGALRM, previous)
        yield
        return
    try:
        yield
    finally:
        if hasattr(signal, "setitimer"):
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        else:  # pragma: no cover - platforms without setitimer
            signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


Runner = Callable[[RunSpec], RunResult]


def run_one(
    spec: RunSpec, retries: int = 1, runner: Runner = execute_run
) -> RunResult:
    """Execute one spec with timeout enforcement and bounded retry.

    Never raises: scenario exceptions become ``status="error"`` results
    after ``retries`` extra attempts; blowing the wall-clock budget
    becomes ``status="timeout"`` (not retried -- a deterministic run
    that timed out once will time out again)."""
    attempts = 0
    while True:
        attempts += 1
        start = perf_time()
        try:
            with _deadline(spec.timeout):
                result = runner(spec)
            result.attempts = attempts
            result.wall_clock = perf_time() - start
            result.worker = f"pid-{os.getpid()}"
            return result
        except FleetTimeout:
            return failure_result(
                spec.run_id,
                spec.to_dict(),
                STATUS_TIMEOUT,
                f"run exceeded wall-clock budget of {spec.timeout:g}s",
                attempts=attempts,
                wall_clock=perf_time() - start,
            )
        except Exception as exc:
            if attempts > retries:
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                return failure_result(
                    spec.run_id,
                    spec.to_dict(),
                    STATUS_ERROR,
                    detail,
                    attempts=attempts,
                    wall_clock=perf_time() - start,
                )


def _run_shard(
    specs: Sequence[RunSpec], retries: int, runner: Runner
) -> List[RunResult]:
    """Worker entry point: execute a shard sequentially in-process."""
    return [run_one(spec, retries=retries, runner=runner) for spec in specs]


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass
class ExecutorConfig:
    """Knobs for one campaign execution."""

    workers: int = 0  # 0/1 = serial
    mode: str = "auto"  # "auto" | "serial" | "parallel"
    shard_size: int = 8
    retries: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "parallel"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")
        if self.shard_size <= 0:
            raise ConfigurationError("shard_size must be positive")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")


@dataclass
class ExecutionReport:
    """Everything the executor did, results in plan order."""

    results: List[RunResult]
    mode: str
    workers: int
    shard_count: int
    degraded_shards: int
    wall_clock: float

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    @property
    def by_id(self) -> Dict[str, RunResult]:
        return {result.run_id: result for result in self.results}

    def summary_line(self) -> str:
        counts = self.status_counts
        breakdown = " ".join(
            f"{status}={count}" for status, count in sorted(counts.items())
        )
        return (
            f"{len(self.results)} runs in {self.wall_clock:.2f}s "
            f"({self.mode}, workers={self.workers}, "
            f"shards={self.shard_count}, degraded={self.degraded_shards}): "
            f"{breakdown or 'nothing to do'}"
        )


def make_shards(
    specs: Sequence[RunSpec], shard_size: int
) -> List[List[RunSpec]]:
    """Partition ``specs`` into plan-order shards of ``shard_size``."""
    return [
        list(specs[index:index + shard_size])
        for index in range(0, len(specs), shard_size)
    ]


def _default_pool_factory(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers)


def execute_campaign(
    specs: Sequence[RunSpec],
    config: Optional[ExecutorConfig] = None,
    runner: Runner = execute_run,
    pool_factory: Callable[[int], ProcessPoolExecutor] = _default_pool_factory,
    log: Optional[Callable[[str], None]] = None,
) -> ExecutionReport:
    """Execute every spec; never raises for per-run failures.

    In parallel mode shards are submitted to a process pool; a shard
    whose worker crashes (``BrokenProcessPool``) is re-executed
    in-process, and if no pool can be created at all the whole campaign
    gracefully degrades to serial mode.  ``runner`` must be a
    module-level (picklable) callable for parallel execution.
    """
    config = config or ExecutorConfig()
    emit = log or (lambda message: None)
    start = perf_time()
    specs = list(specs)

    want_parallel = config.mode == "parallel" or (
        config.mode == "auto" and config.workers > 1
    )
    if not specs:
        want_parallel = False

    if not want_parallel:
        results = _run_shard(specs, config.retries, runner)
        return ExecutionReport(
            results=results,
            mode="serial",
            workers=1,
            shard_count=1 if specs else 0,
            degraded_shards=0,
            wall_clock=perf_time() - start,
        )

    workers = max(2, config.workers)
    shards = make_shards(specs, config.shard_size)
    pool = None
    try:
        pool = pool_factory(workers)
    except Exception as exc:  # no pool available: degrade to serial
        emit(f"process pool unavailable ({exc!r}); running serially")
        results = _run_shard(specs, config.retries, runner)
        return ExecutionReport(
            results=results,
            mode="serial",
            workers=1,
            shard_count=len(shards),
            degraded_shards=len(shards),
            wall_clock=perf_time() - start,
        )

    results = []
    degraded = 0
    pool_broken = False
    try:
        futures = [
            pool.submit(_run_shard, shard, config.retries, runner)
            for shard in shards
        ]
        for index, (shard, future) in enumerate(zip(shards, futures)):
            try:
                if pool_broken:
                    raise BrokenProcessPool("pool already broken")
                results.extend(future.result())
            except (BrokenProcessPool, OSError) as exc:
                pool_broken = True
                degraded += 1
                emit(
                    f"shard {index} lost its worker ({exc!r}); "
                    "re-running in-process"
                )
                results.extend(_run_shard(shard, config.retries, runner))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    return ExecutionReport(
        results=results,
        mode="parallel",
        workers=workers,
        shard_count=len(shards),
        degraded_shards=degraded,
        wall_clock=perf_time() - start,
    )
