"""Experiment drivers: one function per paper artifact.

Both the CLI (``python -m repro``) and the benchmark suite call these;
each returns a small result object with the raw numbers plus a
``render()`` producing the same rows/series the paper reports.

Index (see DESIGN.md section 3):

========  ==========================================================
FIG1      :func:`fig1_timeline` -- on-demand RA timeline
FIG2      :func:`fig2_report` -- hash/signature timing curves
FIG3      :func:`fig3_overview` -- solution taxonomy
FIG4      :func:`fig4_consistency` -- consistency vs locking policy
FIG5      :func:`fig5_qoa` -- self-measurement QoA timeline
TAB1      :func:`table1` -- the feature matrix, empirically
SEC24     :func:`sec24_anchors` -- in-text timing numbers
SEC25     :func:`sec25_firealarm` -- fire-alarm latency per mechanism
SEC32     :func:`sec32_smarm` -- SMARM escape probabilities
FLEET     :func:`fleet_qoa` -- Figure 5's QoA sweep at fleet scale
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.fig2_model import (
    anchor_report,
    crossover_table,
    render_series,
    sweep_series,
)
from repro.analysis.smarm_math import (
    multi_round_escape,
    rounds_for_confidence,
    single_round_escape,
    single_round_escape_limit,
)
from repro.core.consistency import (
    ConsistencyAnalyzer,
    ConsistencyProfile,
    expected_consistency,
)
from repro.core.qoa import InfectionEvent, QoAParameters, QoATimeline
from repro.core.solution import render_taxonomy, solution_table
from repro.core.tradeoff import (
    EvaluationMatrix,
    ScenarioConfig,
    evaluate_all,
)
from repro.crypto.timing import figure2_sizes
from repro.errors import ConfigurationError
from repro.malware.transient import TransientMalware
from repro.ra.locking import make_policy
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.smarm import escape_probability
from repro.scenario import Scenario
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import DelayAdversary
from repro.units import GiB, MiB, format_time


# ---------------------------------------------------------------------------
# FIG1 -- on-demand RA timeline
# ---------------------------------------------------------------------------


@dataclass
class Fig1Result:
    """The Figure 1 event sequence for one on-demand exchange."""

    request_sent: float
    request_received: float
    t_s: float
    t_e: float
    report_received: float
    verified: float
    verdict: str
    deferral: float

    def render(self) -> str:
        rows = [
            ("Vrf sends challenge-bearing request", self.request_sent),
            ("Prv receives request", self.request_received),
            ("t_s: Prv starts MP", self.t_s),
            ("t_e: Prv finishes MP, sends report", self.t_e),
            ("Vrf receives report", self.report_received),
            ("Vrf verifies report", self.verified),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [
            f"{label:<{width}}  t = {time:9.4f} s" for label, time in rows
        ]
        lines.append(
            f"(request deferred {self.deferral * 1e3:.1f} ms on Prv; "
            f"MP duration {self.t_e - self.t_s:.4f} s; "
            f"verdict: {self.verdict})"
        )
        return "\n".join(lines)


def fig1_timeline(
    memory_mib: int = 64,
    algorithm: str = "sha256",
    deferral: float = 0.050,
    network_latency: float = 0.005,
) -> Fig1Result:
    """Reproduce Figure 1: the on-demand timeline, including the
    deferred start the caption mentions ("it may be deferred on Prv
    due to networking delays, Vrf's request authentication, or
    termination of the previously running task")."""
    block_count = 64
    scenario = Scenario.build(
        mechanism="smart",
        config=ScenarioConfig(
            block_count=block_count,
            block_size=32,
            sim_block_size=memory_mib * MiB // block_count,
            algorithm=algorithm,
        ),
        layout=None,
        latency=network_latency,
    )
    device = scenario.device
    if deferral > 0:
        scenario.channel.add_filter(
            DelayAdversary(
                deferral, kind="att_request", base_latency=network_latency
            )
        )
    exchange = scenario.driver.request(device.name)
    scenario.run(until=120)
    if exchange.result is None:
        raise ConfigurationError("attestation did not complete in time")
    request_rx = device.trace.first("ra.request")
    mp_start = device.trace.first("mp.start")
    mp_end = device.trace.first("mp.end")
    return Fig1Result(
        request_sent=exchange.requested_at,
        request_received=request_rx.time,
        t_s=mp_start.time,
        t_e=mp_end.time,
        report_received=exchange.report_received_at,
        verified=exchange.result.verified_at,
        verdict=exchange.result.verdict.value,
        deferral=deferral,
    )


# ---------------------------------------------------------------------------
# FIG2 / SEC24 -- timing curves and anchors
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    series: Dict[str, List[Tuple[int, float]]]
    anchors: list
    crossovers: Dict[Tuple[str, str], float]

    def render(self) -> str:
        lines = [render_series(self.series), "", "In-text anchors:"]
        for anchor in self.anchors:
            status = "OK " if anchor.holds else "OFF"
            lines.append(
                f"  [{status}] {anchor.description}: model says "
                f"{format_time(anchor.observed)} "
                f"(paper ~{format_time(anchor.expected)})"
            )
        lines.append("")
        lines.append("hash-vs-signature crossover sizes (sha256):")
        for (hash_name, signature), size in sorted(self.crossovers.items()):
            if hash_name != "sha256":
                continue
            lines.append(
                f"  {signature:>9}: hashing overtakes signing at "
                f"{size / MiB:8.3f} MiB"
            )
        return "\n".join(lines)


def fig2_report(points_per_decade: int = 1) -> Fig2Result:
    """Reproduce Figure 2 from the calibrated timing model."""
    sizes = figure2_sizes(points_per_decade)
    return Fig2Result(
        series=sweep_series(sizes=sizes),
        anchors=anchor_report(),
        crossovers=crossover_table(),
    )


def sec24_anchors() -> list:
    """Just the Section 2.4 anchor checks."""
    return anchor_report()


# ---------------------------------------------------------------------------
# FIG3 -- taxonomy
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    tree: str
    table: str

    def render(self) -> str:
        return self.tree + "\n\n" + self.table


def fig3_overview() -> Fig3Result:
    return Fig3Result(tree=render_taxonomy(), table=solution_table())


# ---------------------------------------------------------------------------
# FIG4 -- consistency timeline
# ---------------------------------------------------------------------------


@dataclass
class Fig4Case:
    """One locking policy's behaviour against the A/B/C/D writes."""

    policy: str
    committed_writes: Dict[str, bool]
    profile: ConsistencyProfile
    t_s: float
    t_e: float
    t_r: Optional[float]
    claim: str

    def consistent_near(self, time: float, tolerance: float) -> bool:
        return any(
            abs(t - time) <= tolerance
            for t in self.profile.consistent_times
        )


@dataclass
class Fig4Result:
    cases: List[Fig4Case]

    def render(self) -> str:
        lines = [
            "write A: before t_s (never matters)   write D: after lock "
            "release (never matters)",
            "write B: mid-measurement, early block  write C: "
            "mid-measurement, late block",
            "",
            f"{'policy':<14} {'B committed':<12} {'C committed':<12} "
            f"{'consistent at':<28} claim",
            "-" * 90,
        ]
        for case in self.cases:
            duration = case.t_e - case.t_s
            tolerance = duration * 0.02 + 1e-9
            where = []
            if case.consistent_near(case.t_s, tolerance):
                where.append("t_s")
            mid = (case.t_s + case.t_e) / 2
            if case.consistent_near(mid, duration * 0.2):
                where.append("mid")
            if case.consistent_near(case.t_e, tolerance):
                where.append("t_e")
            if case.t_r is not None and case.consistent_near(
                case.t_r, tolerance
            ):
                where.append("t_r")
            lines.append(
                f"{case.policy:<14} "
                f"{str(case.committed_writes.get('B', False)):<12} "
                f"{str(case.committed_writes.get('C', False)):<12} "
                f"{'{' + ', '.join(where) + '}':<28} {case.claim}"
            )
        return "\n".join(lines)


def fig4_consistency(
    policies: Optional[List[str]] = None,
    block_count: int = 16,
    sim_block_size: int = 4 * MiB,
) -> Fig4Result:
    """Reproduce Figure 4: writes at A/B/C/D against each mechanism.

    Writes B and C land mid-measurement on an early-measured and a
    late-measured block respectively; A lands before t_s and D between
    t_e and t_r.  The consistency profile of each measurement is then
    probed from the write log.
    """
    if policies is None:
        policies = [
            "no-lock", "all-lock", "all-lock-ext",
            "dec-lock", "inc-lock", "inc-lock-ext",
        ]
    cases = []
    for policy_name in policies:
        sim = Simulator()
        device = Device(
            sim, block_count=block_count, block_size=32,
            sim_block_size=sim_block_size,
        )
        per_block = device.block_measure_time("blake2s")
        duration = per_block * block_count
        t_start = 1.0
        release_delay = duration * 0.5

        config = MeasurementConfig(
            algorithm="blake2s",
            order="sequential",
            atomic=False,
            locking=make_policy(policy_name),
            release_delay=release_delay,
            priority=50,
        )
        mp = MeasurementProcess(
            device, config, nonce=b"fig4", counter=1,
            mechanism=policy_name,
        )
        sim.schedule_at(
            t_start,
            lambda: device.cpu.spawn("mp", mp.run, priority=50),
        )

        committed: Dict[str, bool] = {}
        filler = b"\xBB" * device.memory.block_size

        def write_at(label: str, time: float, block: int) -> None:
            def do_write() -> None:
                committed[label] = device.memory.try_write(
                    block, filler, f"writer-{label}"
                )

            sim.schedule_at(time, do_write)

        write_at("A", t_start - 0.5, 2)
        write_at("B", t_start + duration * 0.4, 0)  # measured early
        write_at("C", t_start + duration * 0.6, block_count - 1)  # late
        write_at("D", t_start + duration + release_delay * 0.5, 3)
        sim.run(until=t_start + duration * 3 + 5)

        record = mp.record
        if record is None:
            raise ConfigurationError(
                f"measurement under {policy_name} never finished"
            )
        analyzer = ConsistencyAnalyzer(device.memory)
        cases.append(
            Fig4Case(
                policy=policy_name,
                committed_writes=committed,
                profile=analyzer.profile(record),
                t_s=record.t_start,
                t_e=record.t_end,
                t_r=record.t_release,
                claim=expected_consistency(policy_name),
            )
        )
    return Fig4Result(cases=cases)


# ---------------------------------------------------------------------------
# FIG5 -- QoA timeline
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    timeline: QoATimeline
    sim_detected: Dict[str, bool]
    params: QoAParameters

    def render(self) -> str:
        lines = [
            f"T_M = {self.params.t_m:g}s (measurements), "
            f"T_C = {self.params.t_c:g}s (collections)",
            self.timeline.render(),
            "",
            "full-stack ERASMUS verdicts: "
            + ", ".join(
                f"{label} {'DETECTED' if hit else 'undetected'}"
                for label, hit in sorted(self.sim_detected.items())
            ),
        ]
        return "\n".join(lines)


def fig5_qoa(
    t_m: float = 4.0,
    t_c: float = 16.0,
    horizon: float = 36.0,
) -> Fig5Result:
    """Reproduce Figure 5: two transient infections, one dodging all
    measurements (undetected), one spanning a measurement (detected at
    the following collection) -- analytically and with a real ERASMUS
    run."""
    params = QoAParameters(t_m=t_m, t_c=t_c)
    # Infection 1 sits strictly between measurements k=1 and k=2;
    # infection 2 spans measurement k=5.
    infection1 = InfectionEvent(
        start=1.25 * t_m, end=1.85 * t_m, label="infection 1"
    )
    infection2 = InfectionEvent(
        start=4.6 * t_m, end=5.4 * t_m, label="infection 2"
    )
    timeline = QoATimeline(params, horizon)
    timeline.add_infection(infection1)
    timeline.add_infection(infection2)

    # Full-stack confirmation.
    scenario = Scenario.build(
        mechanism="erasmus",
        config=ScenarioConfig(
            block_count=16, block_size=32, sim_block_size=MiB,
            algorithm="blake2s", erasmus_period=t_m, horizon=horizon,
        ),
    )
    device = scenario.device
    collector = scenario.collector
    scenario.schedule_collections(t_c, int(horizon / t_c))
    block = 2  # in the code region
    TransientMalware(
        device, target_block=block, infect_at=infection1.start,
        leave_at=infection1.end, name="infection1",
    )
    TransientMalware(
        device, target_block=block, infect_at=infection2.start,
        leave_at=infection2.end, name="infection2",
    )
    scenario.run(until=horizon)

    detected: Dict[str, bool] = {"infection 1": False, "infection 2": False}
    for collection in collector.collections:
        for interval_start, interval_end in collection.dirty_intervals:
            for label, infection in (
                ("infection 1", infection1),
                ("infection 2", infection2),
            ):
                if (
                    interval_start <= infection.end
                    and infection.start <= interval_end
                ):
                    detected[label] = True
    return Fig5Result(
        timeline=timeline, sim_detected=detected, params=params
    )


# ---------------------------------------------------------------------------
# TAB1 -- feature matrix
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    matrix: EvaluationMatrix
    claims: list

    def render(self) -> str:
        lines = ["paper's Table 1 (transcribed):", solution_table(), ""]
        lines.append("empirical matrix (from simulation):")
        lines.append(self.matrix.render())
        mismatches = [row for row in self.claims if not row[4]]
        lines.append("")
        if mismatches:
            lines.append("CLAIM MISMATCHES:")
            for row in mismatches:
                lines.append(f"  {row}")
        else:
            lines.append(
                "every checkable Table 1 cell matches the simulation"
            )
        return "\n".join(lines)


def table1(config: Optional[ScenarioConfig] = None) -> Table1Result:
    matrix = evaluate_all(config=config)
    return Table1Result(matrix=matrix, claims=matrix.against_claims())


# ---------------------------------------------------------------------------
# SEC25 -- the fire alarm
# ---------------------------------------------------------------------------


@dataclass
class Sec25Row:
    mechanism: str
    mp_duration: float
    alarm_latency: Optional[float]
    deadline_misses: int

    def render(self) -> str:
        latency = (
            f"{self.alarm_latency:8.3f} s"
            if self.alarm_latency is not None
            else "   never"
        )
        return (
            f"{self.mechanism:<22} MP={self.mp_duration:7.3f}s  "
            f"alarm latency={latency}  misses={self.deadline_misses}"
        )


@dataclass
class Sec25Result:
    rows: List[Sec25Row]
    memory_bytes: int

    def render(self) -> str:
        lines = [
            f"fire alarm, {self.memory_bytes / GiB:.1f} GiB attested, "
            "sensor period 1 s, fire breaks out just after MP starts:",
        ]
        lines.extend(row.render() for row in self.rows)
        return "\n".join(lines)


def sec25_firealarm(
    memory_bytes: int = GiB,
    mechanisms: Optional[List[str]] = None,
    block_count: int = 128,
    algorithm: str = "blake2s",
) -> Sec25Result:
    """Reproduce the Section 2.5 scenario: with ~7 s of atomic MP over
    1 GiB, a fire igniting right after t_s goes unnoticed for seconds;
    interruptible mechanisms keep the alarm latency at one period."""
    if mechanisms is None:
        mechanisms = ["none", "smart", "inc-lock", "smarm"]
    rows = []
    for mechanism in mechanisms:
        scenario = Scenario.build(
            mechanism=mechanism,
            workload="firealarm",
            config=ScenarioConfig(
                block_count=block_count, block_size=32,
                sim_block_size=memory_bytes // block_count,
                algorithm=algorithm, smarm_rounds=1,
                task_period=1.0, task_wcet=0.002, task_priority=100,
            ),
            latency=0.005,
            workload_options={"data_block": None},
        )
        app = scenario.app
        service = scenario.service
        request_at = 2.0
        mp_duration = 0.0
        if scenario.driver is not None:
            scenario.schedule_request(request_at, rounds=1)
        # Fire breaks out 100 ms after the request (i.e. just after MP
        # starts, the paper's worst case).
        app.start_fire(request_at + 0.1)
        scenario.run(until=60.0)
        if service is not None and service.reports_sent:
            mp_duration = service.reports_sent[0].records[0].duration
        outcome = app.outcome()
        rows.append(
            Sec25Row(
                mechanism=mechanism,
                mp_duration=mp_duration,
                alarm_latency=outcome.alarm_latency,
                deadline_misses=outcome.deadline_misses,
            )
        )
    return Sec25Result(rows=rows, memory_bytes=memory_bytes)


# ---------------------------------------------------------------------------
# SEC32 -- SMARM escape probabilities
# ---------------------------------------------------------------------------


@dataclass
class Sec32Result:
    n_blocks: int
    mc_single: float
    exact_single: float
    limit: float
    rounds_table: List[Tuple[int, float]]
    rounds_needed: int

    def render(self) -> str:
        lines = [
            f"single-round escape, n={self.n_blocks}: "
            f"Monte-Carlo {self.mc_single:.4f}, "
            f"exact ((n-1)/n)^n = {self.exact_single:.4f}, "
            f"limit e^-1 = {self.limit:.4f}",
            "",
            f"{'rounds':>7} {'P(escape all)':>15}",
        ]
        for rounds, escape in self.rounds_table:
            lines.append(f"{rounds:>7} {escape:>15.3e}")
        lines.append(
            f"\nrounds needed for escape < 1e-6: {self.rounds_needed} "
            "(the paper: 'after 13 checks that probability is below "
            "10^-6')"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# FLEET -- the Figure 5 QoA story, hundreds of provers deep
# ---------------------------------------------------------------------------


@dataclass
class FleetQoAResult:
    """Aggregated detection statistics from the canned QoA campaign."""

    campaign_name: str
    run_count: int
    execution_summary: str
    #: (t_m, dwell) -> (analytic detection probability, empirical rate)
    curves: Dict[Tuple[float, float], Tuple[float, float]]
    summary_text: str

    def render(self) -> str:
        lines = [
            f"fleet campaign {self.campaign_name}: {self.run_count} "
            "independent ERASMUS provers vs transient malware",
            self.execution_summary,
            "",
            f"{'T_M':>6} {'dwell':>7} {'P(detect) analytic':>19} "
            f"{'empirical':>10}",
        ]
        for (t_m, dwell), (analytic, empirical) in sorted(self.curves.items()):
            lines.append(
                f"{t_m:>6g} {dwell:>7g} {analytic:>19.2f} {empirical:>10.2f}"
            )
        lines.extend(["", self.summary_text])
        return "\n".join(lines)


def fleet_qoa(seed_count: int = 6, workers: int = 0) -> FleetQoAResult:
    """Run the canned QoA fleet campaign and fold the per-run detection
    outcomes into detection-probability curves over (T_M, dwell) --
    Figure 5's two anecdotes, made quantitative by seed replication.

    ``workers > 1`` shards the campaign over a process pool; the
    default stays serial so the driver works everywhere.
    """
    from repro.fleet import (
        ExecutorConfig,
        execute_campaign,
        qoa_fleet_campaign,
        summarize,
    )

    campaign = qoa_fleet_campaign(seed_count=seed_count)
    specs = campaign.plan()
    report = execute_campaign(specs, ExecutorConfig(workers=workers))

    buckets: Dict[Tuple[float, float], List[bool]] = {}
    analytic: Dict[Tuple[float, float], float] = {}
    for result in report.results:
        if not result.ok:
            continue
        key = (result.spec["t_m"], result.spec["dwell"])
        buckets.setdefault(key, []).append(result.detected)
        probability = result.qoa.get("detection_probability")
        if probability is not None:
            analytic[key] = probability
    curves = {
        key: (
            analytic.get(key, 0.0),
            sum(hits) / len(hits) if hits else 0.0,
        )
        for key, hits in buckets.items()
    }
    summary = summarize(report.results, campaign=campaign.name)
    return FleetQoAResult(
        campaign_name=campaign.name,
        run_count=len(report.results),
        execution_summary=report.summary_line(),
        curves=curves,
        summary_text=summary.render(),
    )


def sec32_smarm(n_blocks: int = 64, trials: int = 4000) -> Sec32Result:
    mc = escape_probability(n_blocks, trials=trials)
    rounds_table = [
        (rounds, multi_round_escape(n_blocks, rounds))
        for rounds in (1, 2, 3, 5, 8, 13, 14)
    ]
    return Sec32Result(
        n_blocks=n_blocks,
        mc_single=mc,
        exact_single=single_round_escape(n_blocks),
        limit=single_round_escape_limit(),
        rounds_table=rounds_table,
        rounds_needed=rounds_for_confidence(n_blocks),
    )
