"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: simulation errors, memory/MPU faults, crypto errors, protocol
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation engine errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SchedulingError(SimulationError):
    """An event or process was scheduled inconsistently.

    Raised for negative delays, scheduling into the past, or re-starting
    a process that already terminated.
    """


class ProcessError(SimulationError):
    """A simulated process misbehaved (bad yield, double start, ...)."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress but work remains.

    Raised when ``run()`` exhausts the event queue while processes are
    still blocked waiting for signals that nothing can ever fire.
    """


# ---------------------------------------------------------------------------
# Memory / MPU errors
# ---------------------------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AddressError(MemoryError_):
    """An address or block index is out of range."""


class MemoryFault(MemoryError_):
    """An access violated the MPU configuration (write to locked block)."""

    def __init__(self, block_index: int, message: str = "") -> None:
        self.block_index = block_index
        text = message or f"write fault on locked block {block_index}"
        super().__init__(text)


class LockStateError(MemoryError_):
    """A lock/unlock operation was inconsistent (double lock, etc.)."""


# ---------------------------------------------------------------------------
# Crypto errors
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic errors."""


class KeySizeError(CryptoError):
    """A key has an unsupported or insecure size."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class ParameterError(CryptoError):
    """Invalid domain parameters (curve, modulus, generator...)."""


# ---------------------------------------------------------------------------
# Protocol / attestation errors
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for attestation-protocol errors."""


class VerificationError(ProtocolError):
    """An attestation report failed verification."""


class ReplayError(ProtocolError):
    """A message was recognized as a replay of an earlier one."""


class StaleReportError(ProtocolError):
    """A report refers to a measurement that is too old for the policy."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent options."""
