"""repro: a simulation-based reproduction of
*"Reconciling Remote Attestation and Safety-Critical Operation on
Simple IoT Devices"* (Carpent, Eldefrawy, Rattanavipanon, Sadeghi,
Tsudik -- DAC 2018).

The package builds the whole stack the paper assumes:

* :mod:`repro.sim` -- a discrete-event simulator of a simple prover
  device (CPU with priority preemption and interrupt masking,
  block-structured memory, per-block MPU, secure timer, network);
* :mod:`repro.crypto` -- functional hashes/HMAC/RSA/ECDSA plus a
  timing model calibrated to the paper's ODROID-XU4 measurements;
* :mod:`repro.ra` -- every attestation mechanism in the solution
  landscape: SMART (atomic baseline), the memory-locking family,
  SMARM (shuffled), ERASMUS (self-measurement), SeED (non-interactive)
  and TyTAN (per-process);
* :mod:`repro.malware` -- transient, self-relocating and colluding
  adversaries that actively evade measurement;
* :mod:`repro.apps` -- the fire-alarm safety-critical workload;
* :mod:`repro.core` -- the reconciliation layer: Table 1 as data and
  as an empirical harness, consistency semantics, QoA;
* :mod:`repro.analysis` -- the closed forms simulations are checked
  against;
* :mod:`repro.swarm` -- collective attestation (extension);
* :mod:`repro.experiments` -- one driver per paper figure/table.

Quickstart::

    from repro import Scenario

    scenario = Scenario.build(mechanism="smart")
    exchange = scenario.driver.request(scenario.device.name)
    scenario.run(until=60)
    print(exchange.result)          # healthy

:meth:`Scenario.build` wires the whole stack (simulator, device,
channel, :meth:`Verifier.enroll`, workload, malware, mechanism, and
optionally a :class:`~repro.resilience.faults.FaultPlan` with its
:class:`~repro.resilience.retry.RetryPolicy`) in the one canonical
order; hand-wiring the same pieces remains possible for single-layer
experiments.
"""

__version__ = "1.0.0"

from repro.errors import ReproError
from repro.sim import Simulator, Device, Channel
from repro.ra import (
    SmartAttestation,
    SmarmAttestation,
    ErasmusService,
    SeedService,
    TytanAttestation,
    Verifier,
    MeasurementConfig,
    MeasurementProcess,
)
from repro.malware import (
    TransientMalware,
    SelfRelocatingMalware,
    ColludingMalware,
)
from repro.apps import FireAlarmApp
from repro.core import evaluate_all, QoAParameters
from repro.crypto import OdroidXU4Model
from repro.resilience import FaultPlan, OutcomeReport, RetryPolicy
from repro.scenario import Scenario

__all__ = [
    "__version__",
    "ReproError",
    "Simulator",
    "Device",
    "Channel",
    "SmartAttestation",
    "SmarmAttestation",
    "ErasmusService",
    "SeedService",
    "TytanAttestation",
    "Verifier",
    "MeasurementConfig",
    "MeasurementProcess",
    "TransientMalware",
    "SelfRelocatingMalware",
    "ColludingMalware",
    "FireAlarmApp",
    "evaluate_all",
    "QoAParameters",
    "OdroidXU4Model",
    "FaultPlan",
    "OutcomeReport",
    "RetryPolicy",
    "Scenario",
]
