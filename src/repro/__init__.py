"""repro: a simulation-based reproduction of
*"Reconciling Remote Attestation and Safety-Critical Operation on
Simple IoT Devices"* (Carpent, Eldefrawy, Rattanavipanon, Sadeghi,
Tsudik -- DAC 2018).

The package builds the whole stack the paper assumes:

* :mod:`repro.sim` -- a discrete-event simulator of a simple prover
  device (CPU with priority preemption and interrupt masking,
  block-structured memory, per-block MPU, secure timer, network);
* :mod:`repro.crypto` -- functional hashes/HMAC/RSA/ECDSA plus a
  timing model calibrated to the paper's ODROID-XU4 measurements;
* :mod:`repro.ra` -- every attestation mechanism in the solution
  landscape: SMART (atomic baseline), the memory-locking family,
  SMARM (shuffled), ERASMUS (self-measurement), SeED (non-interactive)
  and TyTAN (per-process);
* :mod:`repro.malware` -- transient, self-relocating and colluding
  adversaries that actively evade measurement;
* :mod:`repro.apps` -- the fire-alarm safety-critical workload;
* :mod:`repro.core` -- the reconciliation layer: Table 1 as data and
  as an empirical harness, consistency semantics, QoA;
* :mod:`repro.analysis` -- the closed forms simulations are checked
  against;
* :mod:`repro.swarm` -- collective attestation (extension);
* :mod:`repro.experiments` -- one driver per paper figure/table.

Quickstart::

    from repro.sim import Simulator, Device, Channel
    from repro.ra import SmartAttestation, Verifier
    from repro.ra.service import OnDemandVerifier

    sim = Simulator()
    device = Device(sim, block_count=64, block_size=32)
    channel = Channel(sim)
    device.attach_network(channel)
    verifier = Verifier(sim)
    verifier.register_from_device(device)
    SmartAttestation(device).install()
    exchange = OnDemandVerifier(verifier, channel).request(device.name)
    sim.run(until=60)
    print(exchange.result)          # healthy
"""

__version__ = "1.0.0"

from repro.errors import ReproError
from repro.sim import Simulator, Device, Channel
from repro.ra import (
    SmartAttestation,
    SmarmAttestation,
    ErasmusService,
    SeedService,
    TytanAttestation,
    Verifier,
    MeasurementConfig,
    MeasurementProcess,
)
from repro.malware import (
    TransientMalware,
    SelfRelocatingMalware,
    ColludingMalware,
)
from repro.apps import FireAlarmApp
from repro.core import evaluate_all, QoAParameters
from repro.crypto import OdroidXU4Model

__all__ = [
    "__version__",
    "ReproError",
    "Simulator",
    "Device",
    "Channel",
    "SmartAttestation",
    "SmarmAttestation",
    "ErasmusService",
    "SeedService",
    "TytanAttestation",
    "Verifier",
    "MeasurementConfig",
    "MeasurementProcess",
    "TransientMalware",
    "SelfRelocatingMalware",
    "ColludingMalware",
    "FireAlarmApp",
    "evaluate_all",
    "QoAParameters",
    "OdroidXU4Model",
]
