"""Fault injection and protocol resilience.

The paper's Section 3.3 communication adversary (drop / delay /
inject) and the RA literature's standing assumptions -- unreliable
transports, prover resets (VRASED models them explicitly), drifting
clocks -- mean a faithful reproduction has to show each mechanism
*surviving* faults, not just running on a clean channel.  This package
provides the three pieces:

* :class:`FaultPlan` -- a deterministic, seeded schedule of network
  loss bursts, latency jitter, message corruption, prover resets and
  secure-timer clock drift, installed via :class:`FaultInjector`
  channel filters and :meth:`repro.sim.device.Device.reset`;
* :class:`RetryPolicy` -- per-exchange timeout with bounded
  retransmission, exponential backoff and DRBG-seeded jitter, consumed
  by :class:`repro.ra.service.OnDemandVerifier` and
  :class:`repro.ra.erasmus.CollectorVerifier`;
* :class:`OutcomeReport` -- the degradation ledger classifying every
  exchange (``ok`` / ``retried-ok`` / ``timed-out`` /
  ``reset-aborted``) that folds into fire-alarm availability metrics
  and fleet run telemetry.

Everything here is strictly opt-in: with no plan and no retry policy,
simulations schedule exactly the events they always did, so
faults-disabled fleet campaigns stay byte-identical to the golden
artifacts.
"""

from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.outcome import (
    OUTCOME_OK,
    OUTCOME_RESET_ABORTED,
    OUTCOME_RETRIED_OK,
    OUTCOME_TIMED_OUT,
    ExchangeOutcome,
    OutcomeReport,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "OutcomeReport",
    "ExchangeOutcome",
    "OUTCOME_OK",
    "OUTCOME_RETRIED_OK",
    "OUTCOME_TIMED_OUT",
    "OUTCOME_RESET_ABORTED",
]
