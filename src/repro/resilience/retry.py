"""Bounded retransmission with exponential backoff and seeded jitter.

A lost ``att_request`` or ``att_report`` must not kill the exchange:
the verifier waits ``timeout`` seconds for the report, retransmits the
*same* challenge (same nonce -- the prover's dedup cache makes the
retransmission idempotent), and backs off exponentially with a little
jitter so a fleet of verifiers does not synchronize its retry bursts.

Jitter comes from an HMAC-DRBG keyed by the policy seed and the
exchange nonce, so the whole backoff sequence is a pure function of
``(policy, nonce)`` -- two runs of the same seeded scenario retry at
byte-identical times, which is what the determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retransmission parameters for one request/report exchange.

    ``timeout`` is the wait before the first retransmission; each
    subsequent wait multiplies by ``backoff`` and is capped at
    ``max_timeout``.  ``max_retries`` counts *retransmissions*, so an
    exchange sends at most ``1 + max_retries`` challenges.  ``jitter``
    spreads each wait uniformly over ``[wait * (1 - jitter),
    wait * (1 + jitter)]``.
    """

    timeout: float = 1.0
    max_retries: int = 5
    backoff: float = 2.0
    max_timeout: float = 30.0
    jitter: float = 0.1
    seed: bytes = b"repro-retry"

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    @property
    def max_attempts(self) -> int:
        """Total challenge transmissions an exchange may make."""
        return 1 + self.max_retries

    def drbg_for(self, nonce: bytes) -> HmacDrbg:
        """The jitter stream for one exchange, keyed by its nonce."""
        return HmacDrbg(self.seed + b"|retry|" + nonce)

    def wait_before(self, attempt: int,
                    drbg: Optional[HmacDrbg] = None) -> float:
        """Seconds to wait for attempt number ``attempt`` (1-based: the
        wait after sending the ``attempt``-th challenge).

        Pass the exchange's :meth:`drbg_for` stream to jitter the
        sequence; ``None`` returns the un-jittered backoff curve.
        """
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        wait = min(
            self.timeout * self.backoff ** (attempt - 1), self.max_timeout
        )
        if self.jitter and drbg is not None:
            wait *= 1.0 + self.jitter * (2.0 * drbg.uniform() - 1.0)
        return wait

    def schedule(self, nonce: bytes) -> list:
        """The full deterministic wait sequence for one exchange."""
        drbg = self.drbg_for(nonce)
        return [
            self.wait_before(attempt, drbg)
            for attempt in range(1, self.max_attempts + 1)
        ]
