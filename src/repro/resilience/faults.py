"""The FaultPlan DSL: a seeded, deterministic schedule of trouble.

A :class:`FaultPlan` describes *when* the world misbehaves -- loss
bursts, latency jitter spikes, message corruption, prover
resets/brownouts, secure-timer clock drift -- and :meth:`FaultPlan.install`
turns it into a :class:`FaultInjector` channel filter plus scheduled
:meth:`Device.reset` / timer-skew events.  Every random decision comes
from an HMAC-DRBG keyed by the plan seed, so the same plan against the
same scenario yields byte-identical fault timelines (the fleet's
fault-matrix campaign diffs against a golden summary on exactly this
property).

Plans are built fluently::

    plan = (FaultPlan(seed=b"run-7")
            .loss(0.3, start=0.0, end=30.0)
            .jitter(0.02, start=5.0, end=15.0)
            .reset(at=6.0))

or parsed from the compact string form used by fleet run specs::

    FaultPlan.parse("loss=0.3@0:30;jitter=0.02@5:15;reset@6", seed=b"run-7")

Grammar: ``;``-separated terms, each ``name=value@start:end`` --
``reset@T`` and ``drift=rate@T`` take a single time, windowed terms
accept ``@start`` (open-ended) or no window at all (always active).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.sim.network import ChannelFilter, FilterVerdict, Message


@dataclass(frozen=True)
class FaultWindow:
    """One active interval of a channel fault."""

    kind: str  # "loss" | "jitter" | "corrupt"
    start: float
    end: float  # math.inf for open-ended
    magnitude: float  # probability (loss/corrupt) or amplitude (jitter)
    mode: str = ""  # corruption: "crc" (discard) or "tamper" (mutate)
    match: Optional[str] = None  # message-kind prefix filter, None = all

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def matches(self, message: Message) -> bool:
        return self.match is None or message.kind.startswith(self.match)


class FaultPlan:
    """A deterministic schedule of injected faults (builder + DSL)."""

    def __init__(self, seed: bytes = b"fault-plan") -> None:
        self.seed = seed
        self.windows: List[FaultWindow] = []
        self.resets: List[float] = []
        self.drifts: List[Tuple[float, float]] = []  # (at, rate)

    # -- builder ----------------------------------------------------------

    def _window(self, kind: str, magnitude: float, start: float,
                end: Optional[float], mode: str = "",
                match: Optional[str] = None) -> "FaultPlan":
        if start < 0:
            raise ConfigurationError("fault window start must be >= 0")
        stop = math.inf if end is None else float(end)
        if stop <= start:
            raise ConfigurationError("fault window must end after it starts")
        self.windows.append(
            FaultWindow(kind, float(start), stop, magnitude, mode, match)
        )
        return self

    def loss(self, probability: float, start: float = 0.0,
             end: Optional[float] = None,
             match: Optional[str] = None) -> "FaultPlan":
        """Drop each matching message with ``probability`` in the window."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("loss probability must be in [0, 1]")
        return self._window("loss", probability, start, end, match=match)

    def jitter(self, amplitude: float, start: float = 0.0,
               end: Optional[float] = None,
               match: Optional[str] = None) -> "FaultPlan":
        """Add uniform extra latency in ``[0, amplitude]`` seconds."""
        if amplitude < 0:
            raise ConfigurationError("jitter amplitude must be >= 0")
        return self._window("jitter", amplitude, start, end, match=match)

    def corrupt(self, probability: float, start: float = 0.0,
                end: Optional[float] = None, mode: str = "crc",
                match: Optional[str] = None) -> "FaultPlan":
        """Corrupt each matching message with ``probability``.

        ``mode="crc"`` (default): the link layer detects the damage and
        discards the frame -- indistinguishable from loss to the
        protocol, but counted separately.  ``mode="tamper"``: the frame
        arrives with its challenge nonce flipped, exercising the
        verifier's retry-on-bad-verdict path; payloads that carry no
        nonce degrade to a CRC discard.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("corrupt probability must be in [0, 1]")
        if mode not in ("crc", "tamper"):
            raise ConfigurationError(f"unknown corruption mode {mode!r}")
        return self._window("corrupt", probability, start, end, mode, match)

    def reset(self, at: float) -> "FaultPlan":
        """Brownout the prover at time ``at`` (RAM survives, volatile
        attestation state does not -- see :meth:`Device.reset`)."""
        if at < 0:
            raise ConfigurationError("reset time must be >= 0")
        self.resets.append(float(at))
        return self

    def drift(self, rate: float, at: float = 0.0) -> "FaultPlan":
        """From time ``at``, skew the secure timer by fractional
        ``rate`` (0.01 = timers run 1% slow)."""
        if at < 0:
            raise ConfigurationError("drift start must be >= 0")
        self.drifts.append((float(at), float(rate)))
        return self

    @property
    def empty(self) -> bool:
        return not (self.windows or self.resets or self.drifts)

    @property
    def channel_windows(self) -> List[FaultWindow]:
        return self.windows

    # -- DSL --------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: bytes = b"fault-plan") -> "FaultPlan":
        """Parse the compact ``;``-separated string form (see module
        docstring for the grammar).  An empty string is the empty plan."""
        plan = cls(seed=seed)
        for raw_term in text.split(";"):
            term = raw_term.strip()
            if not term:
                continue
            head, _, when = term.partition("@")
            name, _, value = head.partition("=")
            name = name.strip()
            start, end = cls._parse_window(when, term)
            if name in ("reset", "drift") and end is not None:
                raise ConfigurationError(
                    f"{name} takes a single @time, not a window, in {term!r}"
                )
            if name == "reset":
                if value:
                    raise ConfigurationError(
                        f"reset takes no value in {term!r}"
                    )
                if when == "":
                    raise ConfigurationError(f"reset needs @time in {term!r}")
                plan.reset(start)
            elif name == "drift":
                plan.drift(cls._parse_number(value, term), at=start)
            elif name == "loss":
                plan.loss(cls._parse_number(value, term), start, end)
            elif name == "jitter":
                plan.jitter(cls._parse_number(value, term), start, end)
            elif name == "corrupt":
                plan.corrupt(cls._parse_number(value, term), start, end)
            else:
                raise ConfigurationError(
                    f"unknown fault term {name!r} in {term!r}"
                )
        return plan

    @staticmethod
    def _parse_number(value: str, term: str) -> float:
        if not value:
            raise ConfigurationError(f"missing value in fault term {term!r}")
        try:
            return float(value)
        except ValueError:
            raise ConfigurationError(
                f"bad number {value!r} in fault term {term!r}"
            )

    @staticmethod
    def _parse_window(when: str, term: str) -> Tuple[float, Optional[float]]:
        if not when:
            return 0.0, None
        start_text, sep, end_text = when.partition(":")
        start = FaultPlan._parse_number(start_text, term)
        if not sep:
            return start, None
        return start, FaultPlan._parse_number(end_text, term)

    # -- installation -----------------------------------------------------

    def install(
        self,
        channel: Optional[Any] = None,
        device: Optional[Any] = None,
        outcomes: Optional[Any] = None,
    ) -> Optional["FaultInjector"]:
        """Arm the plan: add the channel filter, schedule resets and
        drift onsets.  Returns the injector (or ``None`` when the plan
        has no channel faults).  ``outcomes`` is an
        :class:`~repro.resilience.outcome.OutcomeReport` that gets
        :meth:`~repro.resilience.outcome.OutcomeReport.note_reset`
        calls for reset attribution.
        """
        injector = None
        if channel is not None and self.windows:
            injector = FaultInjector(channel.sim, self)
            channel.add_filter(injector)
        if device is not None:
            for at in sorted(self.resets):
                device.sim.schedule_at(at, self._fire_reset, device, outcomes)
            for at, rate in sorted(self.drifts):
                device.sim.schedule_at(at, self._set_drift, device, rate)
        return injector

    @staticmethod
    def _fire_reset(device: Any, outcomes: Optional[Any]) -> None:
        if outcomes is not None:
            outcomes.note_reset(device.sim.now)
        device.reset()

    @staticmethod
    def _set_drift(device: Any, rate: float) -> None:
        device.secure_timer.drift = rate
        device.trace.record(
            device.sim.now, "timer.drift", device.name, rate=rate
        )


class FaultInjector(ChannelFilter):
    """The in-path filter realizing a plan's loss/jitter/corrupt windows.

    Decision order per message: loss first (the frame never arrives),
    then corruption (it arrives damaged), then jitter (it arrives
    late).  Each fault class draws from its own DRBG substream so
    adding, say, a jitter window never perturbs the loss pattern.
    """

    def __init__(self, sim: Any, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self._drbgs: Dict[str, HmacDrbg] = {
            kind: HmacDrbg(plan.seed + b"|" + kind.encode())
            for kind in ("loss", "jitter", "corrupt")
        }
        self.lost_count = 0
        self.corrupted_count = 0
        self.jittered_count = 0

    def _active(self, kind: str, message: Message) -> List[FaultWindow]:
        now = self.sim.now
        return [
            w for w in self.plan.windows
            if w.kind == kind and w.active(now) and w.matches(message)
        ]

    def __call__(self, message: Message) -> FilterVerdict:
        obs = self.sim.obs
        for window in self._active("loss", message):
            if self._drbgs["loss"].uniform() < window.magnitude:
                self.lost_count += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "net.faults.lost", "messages eaten by loss bursts",
                    ).inc()
                return FilterVerdict.drop()
        for window in self._active("corrupt", message):
            if self._drbgs["corrupt"].uniform() < window.magnitude:
                self.corrupted_count += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "net.faults.corrupted",
                        "messages damaged in flight",
                    ).inc()
                if window.mode == "tamper":
                    tampered = self._tamper(message)
                    if tampered is not None:
                        return self._jittered(message, mutate=tampered)
                # CRC mode (or untamperable payload): the link layer
                # detects the damage and discards the frame.
                return FilterVerdict.drop()
        return self._jittered(message)

    def _jittered(self, message: Message,
                  mutate: Optional[Message] = None) -> FilterVerdict:
        extra = 0.0
        for window in self._active("jitter", message):
            draw = self._drbgs["jitter"].uniform() * window.magnitude
            if draw > 0.0:
                self.jittered_count += 1
                extra += draw
        return FilterVerdict.deliver(extra=extra, mutate=mutate)

    @staticmethod
    def _tamper(message: Message) -> Optional[Message]:
        """Flip the challenge nonce inside a dict payload; ``None`` if
        the payload carries nothing tamperable."""
        payload = message.payload
        if not isinstance(payload, dict):
            return None
        nonce = payload.get("nonce")
        if not isinstance(nonce, bytes) or not nonce:
            return None
        damaged = dict(payload)
        damaged["nonce"] = bytes(b ^ 0xFF for b in nonce)
        return dc_replace(message, payload=damaged)
