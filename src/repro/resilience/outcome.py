"""Degradation reporting: what actually happened to every exchange.

A resilient protocol does not just succeed or fail -- it succeeds
cleanly, succeeds after retries, gives up, or is cut short by a prover
reset.  :class:`OutcomeReport` is the ledger that keeps those apart,
feeding the fire-alarm availability metrics, fleet run telemetry and
the ``repro faults`` CLI table.

Outcome taxonomy (docs/resilience.md):

``ok``
    Report verified on the first transmission.
``retried-ok``
    Report verified, but only after at least one retransmission.
``timed-out``
    Every transmission went unanswered (or unverifiable) within the
    retry budget, with no reset in the exchange window.
``reset-aborted``
    The exchange failed *and* a prover reset fell inside its window --
    the failure is attributed to the brownout, not the channel.
``deferred-ok``
    Report verified, but only after sitting in a served verifier's
    request queue past the queue-latency SLO (admission succeeded,
    service was late).
``rejected``
    A served verifier refused the report at admission time -- queue
    full or per-tenant rate limit -- so it never reached verification.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

OUTCOME_OK = "ok"
OUTCOME_RETRIED_OK = "retried-ok"
OUTCOME_TIMED_OUT = "timed-out"
OUTCOME_RESET_ABORTED = "reset-aborted"
OUTCOME_DEFERRED_OK = "deferred-ok"
OUTCOME_REJECTED = "rejected"

#: the order tables and dicts render the taxonomy in
OUTCOME_ORDER = (
    OUTCOME_OK,
    OUTCOME_RETRIED_OK,
    OUTCOME_DEFERRED_OK,
    OUTCOME_TIMED_OUT,
    OUTCOME_RESET_ABORTED,
    OUTCOME_REJECTED,
)

#: outcomes that delivered a verified report
COMPLETED_OUTCOMES = frozenset(
    (OUTCOME_OK, OUTCOME_RETRIED_OK, OUTCOME_DEFERRED_OK)
)


@dataclass
class ExchangeOutcome:
    """One classified exchange."""

    device: str
    nonce: str  # hex prefix, enough to join against traces
    requested_at: float
    concluded_at: float
    attempts: int
    classification: str
    verdict: str = ""

    @property
    def completed(self) -> bool:
        return self.classification in COMPLETED_OUTCOMES

    @property
    def elapsed(self) -> float:
        return self.concluded_at - self.requested_at


class OutcomeReport:
    """Classifies exchanges and aggregates the degradation picture.

    Wire :meth:`note_reset` to the device's reset hook (``FaultPlan``
    and ``Scenario.build`` do this) so failures during a brownout
    window are attributed to the reset rather than the channel.
    """

    def __init__(self) -> None:
        self.exchanges: List[ExchangeOutcome] = []
        self.resets: List[float] = []

    # -- recording --------------------------------------------------------

    def note_reset(self, time: float) -> None:
        self.resets.append(time)

    def record(
        self,
        *,
        device: str,
        nonce: bytes,
        requested_at: float,
        concluded_at: float,
        attempts: int,
        completed: bool,
        verdict: str = "",
        classification: Optional[str] = None,
    ) -> ExchangeOutcome:
        """Classify and store one finished exchange.

        ``classification`` overrides the retry-layer heuristic for
        service-level outcomes the heuristic cannot see (a served
        verifier's admission rejections and SLO-late verdicts).
        """
        if classification is not None:
            if classification not in OUTCOME_ORDER:
                raise ConfigurationError(
                    f"unknown outcome classification {classification!r}"
                )
        elif completed:
            classification = (
                OUTCOME_OK if attempts <= 1 else OUTCOME_RETRIED_OK
            )
        elif self._reset_within(requested_at, concluded_at):
            classification = OUTCOME_RESET_ABORTED
        else:
            classification = OUTCOME_TIMED_OUT
        outcome = ExchangeOutcome(
            device=device,
            nonce=nonce.hex()[:8],
            requested_at=requested_at,
            concluded_at=concluded_at,
            attempts=attempts,
            classification=classification,
            verdict=verdict,
        )
        self.exchanges.append(outcome)
        return outcome

    def _reset_within(self, start: float, end: float) -> bool:
        return any(start <= at <= end for at in self.resets)

    # -- aggregation ------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """``{classification: count}`` in taxonomy order, zero-free."""
        tally: Dict[str, int] = {}
        for outcome in self.exchanges:
            tally[outcome.classification] = (
                tally.get(outcome.classification, 0) + 1
            )
        return {
            name: tally[name] for name in OUTCOME_ORDER if name in tally
        }

    @property
    def total(self) -> int:
        return len(self.exchanges)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.exchanges if o.completed)

    @property
    def completion_rate(self) -> float:
        if not self.exchanges:
            return 0.0
        return self.completed / len(self.exchanges)

    def retries_total(self) -> int:
        """Retransmissions summed over all exchanges."""
        return sum(max(0, o.attempts - 1) for o in self.exchanges)

    # -- folding ----------------------------------------------------------

    def fold_into(self, availability) -> None:
        """Attach the outcome histogram to an
        :class:`~repro.apps.metrics.AvailabilityReport` so degradation
        travels with the fire-alarm availability numbers."""
        availability.exchange_outcomes = self.counts()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts(),
            "total": self.total,
            "completed": self.completed,
            "completion_rate": self.completion_rate,
            "retries": self.retries_total(),
            "resets": len(self.resets),
            "exchanges": [asdict(o) for o in self.exchanges],
        }

    def render(self, title: Optional[str] = None) -> str:
        """Human-readable summary table."""
        lines = []
        if title:
            lines.append(title)
        counts = self.counts()
        width = max((len(n) for n in OUTCOME_ORDER), default=8)
        for name in OUTCOME_ORDER:
            if name in counts:
                lines.append(f"  {name:<{width}} {counts[name]:>5}")
        lines.append(
            f"  {'total':<{width}} {self.total:>5}  "
            f"(completion {self.completion_rate:.1%}, "
            f"{self.retries_total()} retransmissions, "
            f"{len(self.resets)} resets)"
        )
        return "\n".join(lines)
