"""Command-line experiment driver: ``python -m repro <experiment>``.

Each subcommand regenerates one paper artifact on stdout::

    repro fig1            # on-demand RA timeline (Figure 1)
    repro fig2            # hash/signature timing curves (Figure 2)
    repro fig3            # solution taxonomy (Figure 3)
    repro fig4            # consistency vs locking policy (Figure 4)
    repro fig5            # QoA timeline (Figure 5)
    repro table1          # the feature matrix, empirical vs claimed
    repro firealarm       # the Section 2.5 scenario
    repro smarm           # SMARM escape probabilities (Section 3.2)
    repro faults          # RA under loss/resets (docs/resilience.md)
    repro all             # everything

and the fleet campaign runner (docs/fleet.md)::

    repro fleet plan      # expand a campaign into its run list
    repro fleet run       # staged pipeline: shard / execute / stream
    repro fleet worker    # claim spooled shards (remote-worker stub)
    repro fleet summarize # re-aggregate existing artifacts

plus the in-tree static analyzer (docs/static_analysis.md)::

    repro lint [paths]    # determinism & crypto-safety lint

and the observability layer (docs/observability.md)::

    repro obs export-trace    # Perfetto-loadable Chrome trace JSON
    repro obs export-metrics  # Prometheus-text / JSONL metric snapshot
    repro profile             # event-loop hot-spot table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.units import parse_size


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Reconciling Remote Attestation and "
            "Safety-Critical Operation on Simple IoT Devices' (DAC'18)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig1 = sub.add_parser("fig1", help="on-demand RA timeline")
    fig1.add_argument("--memory", default="64MiB",
                      help="attested memory size (default 64MiB)")
    fig1.add_argument("--deferral", type=float, default=0.05,
                      help="request deferral on the prover, seconds")

    fig2 = sub.add_parser("fig2", help="hash/signature timing curves")
    fig2.add_argument("--points", type=int, default=1,
                      help="points per decade in the size sweep")

    sub.add_parser("fig3", help="solution taxonomy and Table 1 text")

    sub.add_parser("fig4", help="consistency timeline per locking policy")

    fig5 = sub.add_parser("fig5", help="QoA timeline (self-measurement)")
    fig5.add_argument("--tm", type=float, default=4.0, help="T_M seconds")
    fig5.add_argument("--tc", type=float, default=16.0, help="T_C seconds")

    sub.add_parser("table1", help="empirical feature matrix vs claims")

    fire = sub.add_parser("firealarm", help="Section 2.5 fire alarm")
    fire.add_argument("--memory", default="1GiB",
                      help="attested memory size (default 1GiB)")

    smarm = sub.add_parser("smarm", help="SMARM escape probabilities")
    smarm.add_argument("--blocks", type=int, default=64)
    smarm.add_argument("--trials", type=int, default=4000)

    faults = sub.add_parser(
        "faults", help="on-demand RA under an adversarial channel"
    )
    faults.add_argument(
        "--plan", default="loss=0.3@0:40;reset@6",
        help="FaultPlan DSL (docs/resilience.md)",
    )
    faults.add_argument("--exchanges", type=int, default=20,
                        help="attestation exchanges per mechanism")
    faults.add_argument(
        "--mechanisms", nargs="*",
        default=["smart", "inc-lock", "smarm"],
        help="on-demand mechanisms to drive",
    )
    faults.add_argument("--seed", type=int, default=7)

    swarm = sub.add_parser("swarm", help="collective attestation demo")
    swarm.add_argument("--count", type=int, default=15,
                       help="number of devices")
    swarm.add_argument("--shape", default="tree",
                       choices=["tree", "star", "line", "random"])
    swarm.add_argument("--infect", type=int, nargs="*", default=[4, 9],
                       help="node indices to infect")

    swatt = sub.add_parser(
        "swatt", help="software-based RA timing game (legacy devices)"
    )
    swatt.add_argument("--penalty", type=float, default=2e-3,
                       help="redirection penalty per read, seconds")
    swatt.add_argument("--speedup", type=float, default=0.5,
                       help="the optimized adversary's speed factor")

    fleet = sub.add_parser(
        "fleet", help="campaign runner: plan / run / worker / summarize"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_campaign_options(p):
        p.add_argument("--campaign", default="qoa",
                       help="canned campaign name "
                            "(qoa, matrix, locking, hetero)")
        p.add_argument("--spec", default=None,
                       help="JSON campaign spec file (overrides --campaign)")
        p.add_argument("--seeds", type=int, default=None,
                       help="seed count override for canned campaigns")
        p.add_argument("--limit", type=int, default=None,
                       help="truncate the plan to the first N runs")

    plan = fleet_sub.add_parser("plan", help="expand and print the run list")
    add_campaign_options(plan)

    run = fleet_sub.add_parser(
        "run", help="execute a campaign through the staged pipeline"
    )
    add_campaign_options(run)
    run.add_argument(
        "--backend", default=None,
        help="execution backend: serial, process[:N], spool:DIR "
             "(overrides --workers/--mode)",
    )
    run.add_argument("--workers", type=int, default=0,
                     help="worker processes (0/1 = serial)")
    run.add_argument("--mode", default="auto",
                     choices=["auto", "serial", "parallel"])
    run.add_argument("--shard-size", type=int, default=8)
    run.add_argument("--retries", type=int, default=1,
                     help="extra attempts for a raising run")
    run.add_argument("--timeout", type=float, default=0.0,
                     help="per-run wall-clock budget, seconds (0 = none)")
    run.add_argument("--out", default="fleet-artifacts",
                     help="artifact output directory")
    run.add_argument(
        "--resume", action="store_true",
        help="restore checkpointed shards / prior results for the "
             "same plan and execute only what is missing",
    )
    run.add_argument(
        "--incremental", action="store_true",
        help=(
            "reuse prior ok results whose run_id and source-tree "
            "fingerprint both match (stricter than --resume, which "
            "it subsumes)"
        ),
    )
    run.add_argument(
        "--keep-checkpoints", action="store_true",
        help="keep the shards/ checkpoint directory after finalize "
             "(debugging aid)",
    )

    worker = fleet_sub.add_parser(
        "worker", help="spool worker: claim and execute spooled shards"
    )
    worker.add_argument(
        "--spool", required=True,
        help="spool directory shared with `fleet run --backend spool:DIR`",
    )
    worker.add_argument("--once", action="store_true",
                        help="drain the current inbox and exit")
    worker.add_argument(
        "--idle-timeout", type=float, default=0.0,
        help="exit after this many idle seconds (0 = run forever)",
    )
    worker.add_argument("--poll", type=float, default=0.05,
                        help="inbox poll interval, seconds")

    summ = fleet_sub.add_parser(
        "summarize", help="re-aggregate an existing runs.jsonl"
    )
    summ.add_argument("--campaign", default="qoa")
    summ.add_argument("--out", default="fleet-artifacts")

    lint = sub.add_parser(
        "lint", help="determinism & crypto-safety static analysis"
    )
    from repro.staticlint.cli import add_lint_arguments

    add_lint_arguments(lint)

    serve = sub.add_parser(
        "serve",
        help="served-verifier load test (docs/verifier_service.md)",
    )
    from repro.vserver.cli import add_serve_arguments

    add_serve_arguments(serve)

    bench = sub.add_parser(
        "bench", help="wall-clock regression bench suite (docs/performance.md)"
    )
    bench.add_argument("action", nargs="?", default="run",
                       choices=["run", "history"],
                       help="'run' the suite (default) or tabulate the "
                            "committed 'history' of BENCH_*.json artifacts")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads for CI smoke runs")
    bench.add_argument("--out", default=None,
                       help="artifact path (default BENCH_<rev>.json)")
    bench.add_argument("--against", default=None,
                       help="baseline BENCH_*.json to compare with "
                            "(exit 1 on regression)")
    bench.add_argument("--threshold", type=float, default=0.20,
                       help="regression threshold as a fraction "
                            "(default 0.20 = 20%%)")
    bench.add_argument("--dir", default="benchmarks",
                       help="artifact directory the 'history' action "
                            "tabulates (default: benchmarks/)")

    obs = sub.add_parser(
        "obs", help="observability exports: trace / metrics"
    )
    from repro.obs.cli import add_obs_arguments, add_profile_arguments

    add_obs_arguments(obs)

    profile = sub.add_parser(
        "profile", help="event-loop hot-spot profiling"
    )
    add_profile_arguments(profile)

    sub.add_parser("all", help="run every experiment")
    return parser


def _run(command: str, args: argparse.Namespace) -> str:
    # Imports are deferred so `repro --help` stays fast.
    import repro.experiments as experiments

    if command == "fig1":
        memory = parse_size(args.memory)
        from repro.units import MiB

        return experiments.fig1_timeline(
            memory_mib=max(1, memory // MiB), deferral=args.deferral
        ).render()
    if command == "fig2":
        return experiments.fig2_report(points_per_decade=args.points).render()
    if command == "fig3":
        return experiments.fig3_overview().render()
    if command == "fig4":
        return experiments.fig4_consistency().render()
    if command == "fig5":
        return experiments.fig5_qoa(t_m=args.tm, t_c=args.tc).render()
    if command == "table1":
        return experiments.table1().render()
    if command == "firealarm":
        return experiments.sec25_firealarm(
            memory_bytes=parse_size(args.memory)
        ).render()
    if command == "smarm":
        return experiments.sec32_smarm(
            n_blocks=args.blocks, trials=args.trials
        ).render()
    if command == "faults":
        return _run_faults(args)
    if command == "swarm":
        return _run_swarm(args)
    if command == "swatt":
        return _run_swatt(args)
    if command == "fleet":
        return _run_fleet(args)
    if command == "serve":
        from repro.vserver.cli import run_serve

        return run_serve(args)
    if command == "obs":
        from repro.obs.cli import run_obs

        return run_obs(args)
    if command == "profile":
        from repro.obs.cli import run_profile

        return run_profile(args)
    raise AssertionError(f"unhandled command {command!r}")


def _fleet_campaign(args: argparse.Namespace):
    import json

    from repro.fleet import CampaignSpec, canned_campaign

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            return CampaignSpec.from_dict(json.load(handle))
    return canned_campaign(args.campaign, seed_count=args.seeds)


def _run_fleet(args: argparse.Namespace) -> str:
    from repro import fleet

    if args.fleet_command == "summarize":
        paths = fleet.artifact_paths(args.out, args.campaign)
        if not paths.runs.exists():
            raise SystemExit(
                f"no artifacts at {paths.runs}; run "
                f"`repro fleet run --campaign {args.campaign}` first"
            )
        results = fleet.read_results_jsonl(paths.runs)
        return fleet.summarize(results, campaign=args.campaign).render()

    if args.fleet_command == "worker":
        lines = []
        spool_worker = fleet.SpoolWorker(args.spool)
        processed = spool_worker.run(
            once=args.once,
            poll_interval=args.poll,
            idle_timeout=args.idle_timeout,
            log=lines.append,
        )
        lines.append(f"processed {processed} shard(s) from {args.spool}")
        return "\n".join(lines)

    campaign = _fleet_campaign(args)
    specs = campaign.plan()
    if args.limit is not None:
        specs = specs[: args.limit]

    if args.fleet_command == "plan":
        lines = [
            f"campaign {campaign.name} (hash {campaign.spec_hash}): "
            f"{len(specs)} runs",
            f"{'run_id':<44} {'mechanism':<10} {'adversary':<11} "
            f"{'seed':>5}  swept fields",
        ]
        axis_keys = sorted(campaign.axes)
        for spec in specs:
            swept = " ".join(
                f"{key}={getattr(spec, key)}" for key in axis_keys
            )
            lines.append(
                f"{spec.run_id:<44} {spec.mechanism:<10} "
                f"{spec.adversary:<11} {spec.seed:>5}  {swept}"
            )
        return "\n".join(lines)

    # fleet run: the staged pipeline (plan -> shard -> execute ->
    # stream -> reduce); results checkpoint per shard and fold through
    # a memory-bounded streaming reducer (docs/fleet.md).
    if args.timeout > 0:
        specs = [spec.with_overrides(timeout=args.timeout) for spec in specs]
    lines = []
    if args.backend:
        backend = fleet.resolve_backend(args.backend)
    elif args.mode == "parallel" or (args.mode == "auto" and args.workers > 1):
        backend = fleet.ProcessPoolBackend(workers=args.workers)
    else:
        backend = fleet.SerialBackend()
    config = fleet.PipelineConfig(
        shard_size=args.shard_size,
        retries=args.retries,
        resume=args.resume,
        incremental=args.incremental,
        keep_checkpoints=args.keep_checkpoints,
    )
    report = fleet.run_pipeline(
        campaign,
        specs,
        out_dir=args.out,
        backend=backend,
        config=config,
        log=lines.append,
    )
    lines.extend([
        report.summary_line(),
        f"artifacts: {report.paths.root}",
        "",
        report.summary.render(),
    ])
    return "\n".join(lines)


def _run_faults(args: argparse.Namespace) -> str:
    """Drive on-demand mechanisms through a seeded FaultPlan and print
    the degradation ledger (docs/resilience.md)."""
    from repro.core.tradeoff import ScenarioConfig
    from repro.ra.report import Verdict
    from repro.resilience import RetryPolicy
    from repro.scenario import Scenario
    from repro.units import MiB

    spacing = 2.0
    horizon = 1.0 + spacing * args.exchanges + 10.0
    lines = [
        f"fault plan: {args.plan!r}  "
        f"({args.exchanges} exchanges per mechanism, seed {args.seed})",
    ]
    for mechanism in args.mechanisms:
        scenario = Scenario.build(
            mechanism=mechanism,
            faults=args.plan,
            config=ScenarioConfig(
                block_count=8, sim_block_size=MiB, horizon=horizon,
            ),
            seed=args.seed,
            retry=RetryPolicy(
                timeout=1.0, max_retries=6, backoff=1.5,
                max_timeout=4.0,
                seed=f"faults-cli-{args.seed}".encode(),
            ),
            fault_seed=f"faults-cli-{args.seed}-{mechanism}".encode(),
        )
        for index in range(args.exchanges):
            scenario.schedule_request(1.0 + spacing * index)
        scenario.run()
        false_alarms = sum(
            1 for r in scenario.verifier.results
            if r.verdict is Verdict.COMPROMISED
        )
        lines.append("")
        lines.append(scenario.outcomes.render(title=f"{mechanism}:"))
        if false_alarms:
            lines.append(
                f"  WARNING: {false_alarms} false 'compromised' "
                "verdict(s) on a benign device"
            )
    return "\n".join(lines)


def _run_swarm(args: argparse.Namespace) -> str:
    from repro.malware import TransientMalware
    from repro.ra.verifier import Verifier
    from repro.sim.engine import Simulator
    from repro.swarm import SwarmAttestation, make_topology

    sim = Simulator()
    topology = make_topology(sim, count=args.count, shape=args.shape)
    verifier = Verifier(sim)
    swarm = SwarmAttestation(topology, verifier)
    for index in args.infect:
        if 0 <= index < args.count:
            TransientMalware(
                topology.devices[index], target_block=3, infect_at=0.0,
                name=f"mal-{index}",
            )
    nonce = swarm.attest(timeout=60.0)
    sim.run(until=120.0)
    result = swarm.result_for(nonce)
    lines = [
        f"swarm of {args.count} devices ({args.shape})",
        f"aggregate valid : {result.valid}",
        f"healthy         : {result.healthy}/{result.total}",
        f"dirty nodes     : {', '.join(result.dirty_nodes) or '(none)'}",
        f"completed at    : t = {result.completed_at:.3f} s",
    ]
    return "\n".join(lines)


def _run_swatt(args: argparse.Namespace) -> str:
    from repro.malware import TransientMalware
    from repro.ra.software import SoftwareAttestation, SoftwareVerifier
    from repro.sim import Channel, Device, Simulator
    from repro.units import MiB

    def play(redirect_penalty, speedup, infected):
        sim = Simulator()
        device = Device(sim, block_count=16, block_size=32,
                        sim_block_size=MiB)
        channel = Channel(sim, latency=0.005)
        device.attach_network(channel)
        service = SoftwareAttestation(
            device, redirect_penalty=redirect_penalty,
            forgery_speedup=speedup,
        )
        service.install()
        reads = device.block_count * service.iterations
        honest = device.timing.hash_time(
            "sha256", device.memory.sim_block_size * reads
        )
        swatt_verifier = SoftwareVerifier(
            channel, list(device.memory.benign_image()), honest
        )
        if infected:
            TransientMalware(device, target_block=5, infect_at=0.0)
        sim.schedule_at(0.5, swatt_verifier.challenge, device.name)
        sim.run(until=60)
        return swatt_verifier.verdicts[0]

    rows = [
        ("honest device", play(0.0, 1.0, False)),
        ("naive malware", play(0.0, 1.0, True)),
        ("redirecting malware", play(args.penalty, 1.0, True)),
        ("optimized adversary", play(args.penalty, args.speedup, True)),
    ]
    lines = ["software-based RA timing game"]
    for label, verdict in rows:
        mark = "ACCEPTED" if verdict.accepted else "rejected"
        lines.append(
            f"  {label:<22} checksum "
            f"{'ok' if verdict.correct else 'BAD'}  "
            f"elapsed {verdict.elapsed:7.4f}s "
            f"(limit {verdict.threshold:.4f}s)  -> {mark}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        # lint owns its exit code: 0 clean, 1 findings, 2 usage errors
        from repro.staticlint.cli import run_lint

        return run_lint(args)
    if args.command == "bench":
        # bench owns its exit code: 0 clean, 1 regression vs --against
        from repro.perf.bench import run_bench

        return run_bench(args)
    if args.command == "all":
        import repro.experiments as experiments

        sections = [
            ("FIG1", experiments.fig1_timeline().render()),
            ("FIG2", experiments.fig2_report().render()),
            ("FIG3", experiments.fig3_overview().render()),
            ("FIG4", experiments.fig4_consistency().render()),
            ("FIG5", experiments.fig5_qoa().render()),
            ("TABLE1", experiments.table1().render()),
            ("SEC25", experiments.sec25_firealarm().render()),
            ("SEC32", experiments.sec32_smarm().render()),
        ]
        for title, body in sections:
            print(f"\n===== {title} =====")
            print(body)
        return 0
    print(_run(args.command, args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
