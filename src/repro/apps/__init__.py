"""Safety-critical application models.

* :mod:`repro.apps.firealarm` -- the Section 2.5 scenario: a bare-metal
  sensor/actuator fire alarm whose reaction latency is destroyed by
  atomic attestation;
* :mod:`repro.apps.workloads` -- generic periodic control workloads
  (compute-only and memory-writing tasks) used by the locking
  availability benchmarks;
* :mod:`repro.apps.metrics` -- availability metric aggregation.
"""

from repro.apps.firealarm import FireAlarmApp, FireAlarmOutcome
from repro.apps.workloads import (
    make_compute_task,
    make_writer_task,
    WriterWorkload,
)
from repro.apps.metrics import AvailabilityReport, summarize_tasks

__all__ = [
    "FireAlarmApp",
    "FireAlarmOutcome",
    "make_compute_task",
    "make_writer_task",
    "WriterWorkload",
    "AvailabilityReport",
    "summarize_tasks",
]
