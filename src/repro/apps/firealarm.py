"""The Section 2.5 fire alarm: sense every second, sound the alarm fast.

    "consider a sensor-actuator fire alarm application running over
    'bare-metal' on a low-end embedded Prv ... checks the value of its
    temperature sensor [every second] and triggers an alarm whenever
    that value exceeds a certain threshold ... Assuming attested memory
    size of 1GB, MP would run for approximately 7sec.  However, if an
    actual fire breaks out soon after MP starts, it would take a very
    long time for the application to regain control, sense the fire and
    sound the alarm."

:class:`FireAlarmApp` is a periodic sampling task on the device CPU.
The ambient temperature is a plain function of simulated time (the
environment needs no CPU); a *fire* is a step to a value above the
threshold.  The application only notices a fire when its job actually
runs -- so if an atomic MP is hogging the CPU, detection waits, and
:attr:`FireAlarmOutcome.alarm_latency` records exactly the damage the
paper warns about.

Each sample is also written to a data block, so locking mechanisms
that hold the data region read-only delay the job (counted as write
faults / blocked time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.process import Compute, Process
from repro.sim.task import PeriodicTask, write_with_retry


@dataclass
class FireAlarmOutcome:
    """What happened, for the Section 2.5 benchmark."""

    fire_at: Optional[float]
    alarm_at: Optional[float]
    samples: int
    deadline_misses: int
    worst_response: float

    @property
    def alarm_latency(self) -> Optional[float]:
        if self.fire_at is None or self.alarm_at is None:
            return None
        return self.alarm_at - self.fire_at

    @property
    def alarm_sounded(self) -> bool:
        return self.alarm_at is not None


class FireAlarmApp:
    """Periodic temperature sampling with a threshold alarm.

    Parameters
    ----------
    device:
        The prover hosting the application.
    period:
        Sampling period (the paper: "say, every second").
    sample_wcet:
        CPU time of one sample-and-compare job.
    priority:
        Task priority; above normal services, but powerless against an
        atomic MP (which masks everything).
    data_block:
        Block the latest reading is stored into (exercises locking);
        ``None`` disables the write.
    threshold / ambient / fire_temperature:
        The sensed value is ``ambient`` until a fire starts, then
        ``fire_temperature``; the alarm fires when a *sample* observes
        a value above ``threshold``.
    """

    def __init__(
        self,
        device: Device,
        period: float = 1.0,
        sample_wcet: float = 0.001,
        priority: int = 100,
        data_block: Optional[int] = None,
        threshold: float = 60.0,
        ambient: float = 22.0,
        fire_temperature: float = 400.0,
    ) -> None:
        if fire_temperature <= threshold:
            raise ConfigurationError(
                "fire_temperature must exceed threshold"
            )
        self.device = device
        self.period = period
        self.threshold = threshold
        self.ambient = ambient
        self.fire_temperature = fire_temperature
        self.data_block = data_block
        self.fire_at: Optional[float] = None
        self.alarm_at: Optional[float] = None
        self.samples = 0
        self.readings: List[float] = []
        self.task = PeriodicTask(
            device.cpu,
            name=f"{device.name}.firealarm",
            period=period,
            wcet=sample_wcet,
            priority=priority,
            job=self._job,
        )

    # -- environment -------------------------------------------------------

    def start_fire(self, at: float) -> None:
        """Schedule the fire (environment event, not a CPU event)."""
        self.device.sim.schedule_at(at, self._ignite)

    def _ignite(self) -> None:
        self.fire_at = self.device.sim.now
        self.device.trace.record(self.fire_at, "fire.start", "environment")

    def temperature(self) -> float:
        """Currently sensed temperature."""
        if self.fire_at is not None and self.device.sim.now >= self.fire_at:
            return self.fire_temperature
        return self.ambient

    # -- the sampling job --------------------------------------------------------

    def _job(self, proc: Process, task: PeriodicTask, index: int):
        yield Compute(task.wcet)
        reading = self.temperature()
        self.samples += 1
        self.readings.append(reading)
        obs = self.device.obs
        if obs.enabled:
            obs.metrics.counter(
                "app.samples", "temperature samples taken",
            ).inc()
        if self.data_block is not None:
            record = task.jobs[-1]
            encoded = int(reading * 100).to_bytes(4, "big")
            data = encoded.ljust(self.device.memory.block_size, b"\x00")
            yield from write_with_retry(
                proc, self.device.memory, self.data_block, data,
                actor=task.name, record=record,
            )
        if reading > self.threshold and self.alarm_at is None:
            self.alarm_at = self.device.sim.now
            self.device.trace.record(
                self.alarm_at, "alarm.sound", task.name,
                latency=(
                    round(self.alarm_at - self.fire_at, 6)
                    if self.fire_at is not None else None
                ),
            )
            if obs.enabled and self.fire_at is not None:
                # The fire-to-alarm interval is the paper's Section 2.5
                # damage metric; its endpoints live in different
                # events, hence retrospective recording.
                obs.spans.add_span(
                    "app.fire_to_alarm", self.fire_at, self.alarm_at,
                    category="app", task=task.name,
                )
                obs.metrics.histogram(
                    "app.alarm.latency",
                    "fire start to alarm sounded (sim s)",
                ).observe(self.alarm_at - self.fire_at)

    # -- results ------------------------------------------------------------------

    def outcome(self) -> FireAlarmOutcome:
        stats = self.task.stats()
        return FireAlarmOutcome(
            fire_at=self.fire_at,
            alarm_at=self.alarm_at,
            samples=self.samples,
            deadline_misses=stats.deadline_misses,
            worst_response=stats.worst_response,
        )
