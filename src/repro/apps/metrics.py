"""Availability metric aggregation.

Turns per-task statistics and MPU accounting into the quantities the
Table 1 columns summarize qualitatively: worst-case task response,
deadline-miss rate, blocked-write counts and lock hold times.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, Optional

from repro.sim.device import Device
from repro.sim.task import PeriodicTask, TaskStats


@dataclass
class AvailabilityReport:
    """Aggregate availability damage over an experiment run."""

    elapsed: float
    jobs_released: int = 0
    jobs_finished: int = 0
    deadline_misses: int = 0
    worst_response: float = 0.0
    mean_response: float = 0.0
    write_faults: int = 0
    locked_block_seconds: float = 0.0
    lock_ops: int = 0
    cpu_idle_fraction: float = 0.0
    per_task: Dict[str, TaskStats] = field(default_factory=dict)
    #: attestation-exchange outcome histogram (ok / retried-ok /
    #: timed-out / reset-aborted), folded in by
    #: :meth:`repro.resilience.outcome.OutcomeReport.fold_into`;
    #: omitted from serialization when no resilience layer ran
    exchange_outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        if self.jobs_released == 0:
            return 0.0
        return self.deadline_misses / self.jobs_released

    def summary_line(self) -> str:
        return (
            f"jobs={self.jobs_finished}/{self.jobs_released} "
            f"misses={self.deadline_misses} ({self.miss_rate:.1%}) "
            f"worst_resp={self.worst_response * 1e3:.2f}ms "
            f"write_faults={self.write_faults} "
            f"locked={self.locked_block_seconds:.3f} block-s"
        )

    # -- serialization (reports cross process boundaries in fleet runs)

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON representation, inverse of :meth:`from_dict`."""
        data = asdict(self)
        data["per_task"] = {
            name: asdict(stats) for name, stats in sorted(self.per_task.items())
        }
        if not data["exchange_outcomes"]:
            del data["exchange_outcomes"]
        else:
            data["exchange_outcomes"] = dict(self.exchange_outcomes)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AvailabilityReport":
        payload = dict(data)
        per_task = {
            name: TaskStats(**stats)
            for name, stats in payload.pop("per_task", {}).items()
        }
        known = {f.name for f in fields(cls)}
        report = cls(**{k: v for k, v in payload.items() if k in known})
        report.per_task = per_task
        return report


def summarize_tasks(
    device: Device,
    tasks: Iterable[PeriodicTask],
    elapsed: Optional[float] = None,
) -> AvailabilityReport:
    """Aggregate ``tasks`` plus the device's MPU accounting."""
    elapsed = device.sim.now if elapsed is None else elapsed
    report = AvailabilityReport(elapsed=elapsed)
    total_response = 0.0
    for task in tasks:
        stats = task.stats()
        report.per_task[task.name] = stats
        report.jobs_released += stats.jobs_released
        report.jobs_finished += stats.jobs_finished
        report.deadline_misses += stats.deadline_misses
        report.write_faults += stats.write_faults
        total_response += stats.total_response
        if stats.worst_response > report.worst_response:
            report.worst_response = stats.worst_response
    if report.jobs_finished:
        report.mean_response = total_response / report.jobs_finished
    report.locked_block_seconds = device.mpu.total_locked_time()
    report.lock_ops = device.mpu.lock_ops + device.mpu.unlock_ops
    report.cpu_idle_fraction = device.cpu.idle_fraction(elapsed)
    return report
