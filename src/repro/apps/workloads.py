"""Generic periodic workloads for availability experiments.

Locking mechanisms trade "writable memory availability" (Table 1) for
consistency.  To measure that trade we need tasks that actually write:
:func:`make_writer_task` builds a periodic task whose job writes one or
more data blocks (waiting politely on MPU faults, counting them), and
:class:`WriterWorkload` assembles a whole task set over a device's data
region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.process import Compute, Process
from repro.sim.task import PeriodicTask, write_with_retry


def make_compute_task(
    device: Device,
    name: str,
    period: float,
    wcet: float,
    priority: int = 20,
) -> PeriodicTask:
    """A CPU-only periodic task (no memory writes)."""
    return PeriodicTask(
        device.cpu, name=name, period=period, wcet=wcet, priority=priority
    )


def make_writer_task(
    device: Device,
    name: str,
    period: float,
    wcet: float,
    blocks: Sequence[int],
    priority: int = 20,
    payload_tag: int = 0,
) -> PeriodicTask:
    """A periodic task whose job writes ``blocks`` every period.

    Writes block on MPU faults (waiting for lock release) and each
    fault is counted on the job record, so locking damage is visible in
    :meth:`~repro.sim.task.PeriodicTask.stats`.
    """
    if not blocks:
        raise ConfigurationError("writer task needs at least one block")
    block_size = device.memory.block_size

    def job(proc: Process, task: PeriodicTask, index: int):
        yield Compute(task.wcet)
        record = task.jobs[-1]
        for block_index in blocks:
            stamp = (
                payload_tag.to_bytes(4, "big")
                + index.to_bytes(4, "big")
                + block_index.to_bytes(4, "big")
            )
            data = stamp.ljust(block_size, b"\xA5")[:block_size]
            yield from write_with_retry(
                proc, device.memory, block_index, data,
                actor=task.name, record=record,
            )

    return PeriodicTask(
        device.cpu, name=name, period=period, wcet=wcet,
        priority=priority, job=job,
    )


@dataclass
class WriterWorkload:
    """A set of writer tasks spread over the device's data region.

    ``build`` carves the data region into per-task block groups so
    tasks never contend with each other -- all observed write faults
    are caused by attestation locking, which is what the experiment
    wants to isolate.
    """

    device: Device
    task_count: int = 4
    period: float = 0.05
    wcet: float = 0.002
    blocks_per_task: int = 2
    priority: int = 20
    tasks: List[PeriodicTask] = field(default_factory=list)

    def build(self, region_name: str = "data") -> "WriterWorkload":
        region = self.device.memory.regions.get(region_name)
        if region is None:
            raise ConfigurationError(
                f"device has no region {region_name!r}; call "
                "standard_layout() first"
            )
        needed = self.task_count * self.blocks_per_task
        if needed > region.length:
            raise ConfigurationError(
                f"workload needs {needed} blocks, region has {region.length}"
            )
        for task_index in range(self.task_count):
            start = region.start + task_index * self.blocks_per_task
            blocks = list(range(start, start + self.blocks_per_task))
            self.tasks.append(
                make_writer_task(
                    self.device,
                    name=f"writer{task_index}",
                    period=self.period,
                    wcet=self.wcet,
                    blocks=blocks,
                    priority=self.priority,
                    payload_tag=task_index,
                )
            )
        return self

    def total_write_faults(self) -> int:
        return sum(task.stats().write_faults for task in self.tasks)

    def total_deadline_misses(self) -> int:
        return sum(task.stats().deadline_misses for task in self.tasks)

    def worst_response(self) -> float:
        if not self.tasks:
            return 0.0
        return max(task.stats().worst_response for task in self.tasks)
