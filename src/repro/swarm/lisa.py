"""LISA: Lightweight Swarm Attestation, "a tale of two LISAs" [4].

The paper's background (Section 2.1) cites LISA alongside SEDA: swarm
protocols differ in *Quality of Swarm Attestation* (QoSA) -- how much
information the verifier ends up with:

* **LISA-α (asynchronous)**: every device attests independently; each
  authenticated report is *forwarded* hop-by-hop to the verifier.  The
  verifier learns per-device health (high QoSA) at the cost of one
  report per device crossing the network.
* **LISA-s (synchronous)**: devices attest their children and submit
  one cumulative report up the spanning tree (like our SEDA-style
  :mod:`repro.swarm.collective`), so the verifier learns a binary/
  counter answer (lower QoSA) with O(depth) latency and O(1) traffic
  at the sink.

This module implements LISA-α on the same topology substrate, so the
QoSA-vs-traffic trade is measurable against the aggregated protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracectx import TraceContext
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport, Verdict
from repro.ra.service import listen
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.network import Message
from repro.swarm.topology import SwarmTopology


@dataclass
class LisaAlphaResult:
    """Verifier-side outcome of one LISA-α round."""

    nonce: bytes
    per_device: Dict[str, Verdict] = field(default_factory=dict)
    completed_at: Optional[float] = None
    expected: int = 0

    @property
    def complete(self) -> bool:
        return len(self.per_device) >= self.expected

    @property
    def healthy_count(self) -> int:
        return sum(
            1 for verdict in self.per_device.values()
            if verdict is Verdict.HEALTHY
        )

    @property
    def dirty_nodes(self) -> List[str]:
        return sorted(
            name for name, verdict in self.per_device.items()
            if verdict is not Verdict.HEALTHY
        )


class LisaAlphaNode:
    """Per-node engine: flood the request, attest, forward reports.

    Reports travel toward the verifier along the spanning tree
    (children send to parent, the root sends to the verifier), so
    every individual report really crosses multiple hops -- the QoSA
    price LISA-α pays is visible as channel traffic.
    """

    def __init__(
        self,
        device: Device,
        parent: str,
        children: List[str],
        algorithm: str = "blake2s",
        priority: int = 40,
    ) -> None:
        self.device = device
        self.parent = parent
        self.children = children
        self.config = MeasurementConfig(
            algorithm=algorithm, order="sequential", atomic=False,
            priority=priority,
        )
        self.online = True
        self._counter = 0
        self._seen_nonces = set()
        listen(device.nic, self._on_message,
               kinds=frozenset({"lisa_attest", "lisa_report"}))

    def _on_message(self, message: Message) -> None:
        if not self.online:
            return
        if message.kind == "lisa_attest":
            self._start(message)
        else:
            # Forward a descendant's report toward the verifier,
            # preserving its hop-spanning trace context.
            self.device.nic.send(self.parent, "lisa_report",
                                 message.payload, ctx=message.ctx)

    def _start(self, message: Message) -> None:
        nonce = message.payload["nonce"]
        if nonce in self._seen_nonces:
            return  # flood duplicate
        self._seen_nonces.add(nonce)
        for child in self.children:
            self.device.nic.send(
                child, "lisa_attest", {"nonce": nonce}, ctx=message.ctx
            )
        self._counter += 1
        mp = MeasurementProcess(
            self.device, self.config, nonce=nonce,
            counter=self._counter, mechanism="lisa-alpha",
        )
        proc = self.device.cpu.spawn(
            f"{self.device.name}.lisa.{self._counter}",
            mp.run,
            priority=self.config.priority,
        )

        def send_report(_record, mp=mp, ctx=message.ctx) -> None:
            report = AttestationReport.authenticate(
                self.device.attestation_key, self.device.name,
                [mp.record], sent_counter=self._counter,
            )
            self.device.nic.send(self.parent, "lisa_report", report,
                                 ctx=ctx)

        proc.done_signal.wait(send_report)


class LisaAlphaAttestation:
    """Verifier-side driver for LISA-α over a :class:`SwarmTopology`."""

    def __init__(
        self,
        topology: SwarmTopology,
        verifier: Verifier,
        endpoint_name: str = "lisa-vrf",
        algorithm: str = "blake2s",
    ) -> None:
        self.topology = topology
        self.verifier = verifier
        self.endpoint = topology.channel.make_endpoint(endpoint_name)
        self.results: List[LisaAlphaResult] = []
        self._by_nonce: Dict[bytes, LisaAlphaResult] = {}
        self._nonce_counter = 0
        children_map = topology.spanning_tree_children(root=0)
        parent_map = {0: endpoint_name}
        for parent_index, child_indices in children_map.items():
            for child_index in child_indices:
                parent_map[child_index] = topology.devices[
                    parent_index
                ].name
        self.nodes = []
        for index, device in enumerate(topology.devices):
            if device.name not in verifier.devices:
                verifier.enroll(device)
            self.nodes.append(
                LisaAlphaNode(
                    device,
                    parent=parent_map[index],
                    children=[
                        topology.devices[c].name
                        for c in children_map[index]
                    ],
                    algorithm=algorithm,
                )
            )
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"lisa_report"}))

    def attest(self) -> bytes:
        self._nonce_counter += 1
        nonce = b"lisa" + self._nonce_counter.to_bytes(8, "big")
        result = LisaAlphaResult(
            nonce=nonce, expected=len(self.topology.devices)
        )
        self.results.append(result)
        self._by_nonce[nonce] = result
        ctx = (
            TraceContext.mint("lisa", nonce)
            if self.verifier.sim.obs.enabled else None
        )
        self.endpoint.send(
            self.topology.devices[0].name, "lisa_attest",
            {"nonce": nonce}, ctx=ctx,
        )
        return nonce

    def _on_message(self, message: Message) -> None:
        report: AttestationReport = message.payload
        nonce = report.newest.nonce
        result = self._by_nonce.get(nonce)
        if result is None or report.device in result.per_device:
            return
        profile = self.verifier.devices.get(report.device)
        if profile is None or not report.verify_tag(profile.key):
            result.per_device[report.device] = Verdict.INVALID
        else:
            result.per_device[report.device] = (
                self.verifier.verify_record(report.newest)
            )
        if result.complete and result.completed_at is None:
            result.completed_at = self.verifier.sim.now

    def result_for(self, nonce: bytes) -> Optional[LisaAlphaResult]:
        return self._by_nonce.get(nonce)
