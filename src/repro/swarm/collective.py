"""SEDA-style spanning-tree collective attestation.

Protocol sketch (after SEDA [2], simplified to the aggregation core):

1. the verifier sends ``swarm_attest`` (a global nonce) to the root;
2. each node forwards the request to its spanning-tree children and
   measures itself (an ordinary interruptible MP run);
3. leaves reply with ``(healthy_count, total_count, digest)``; interior
   nodes wait for all children, fold the children's aggregates and
   their own measurement into one MAC'd aggregate, and reply upward;
4. the verifier checks the root's aggregate: it learns how many swarm
   members are in a known-good state (SEDA's result granularity) and,
   in this implementation's verbose mode, which ones diverged.

Each node verifies its *children's* aggregate MACs with pairwise keys
(we reuse each child's attestation key, which the parent would hold
after SEDA's join phase).  Self-measurements are honest-device
verifiable by the global verifier, which knows every node's reference
image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.hmac import constant_time_equal, hmac_digest
from repro.errors import ConfigurationError
from repro.obs.tracectx import TraceContext
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.service import listen
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.network import Message
from repro.swarm.topology import SwarmTopology


@dataclass
class NodeAggregate:
    """What one node reports to its parent."""

    node: str
    healthy: int
    total: int
    dirty_nodes: List[str]
    tag: bytes

    def tag_input(self, nonce: bytes) -> bytes:
        body = ",".join(sorted(self.dirty_nodes)).encode()
        return b"|".join(
            (
                self.node.encode(),
                nonce,
                self.healthy.to_bytes(4, "big"),
                self.total.to_bytes(4, "big"),
                body,
            )
        )


@dataclass
class SwarmResult:
    """Verifier-side outcome of one collective attestation."""

    nonce: bytes
    healthy: int
    total: int
    dirty_nodes: List[str]
    completed_at: float
    valid: bool
    #: True when no root aggregate arrived before the round deadline --
    #: a dead/partitioned node somewhere in the tree (DARPA's "absence
    #: detection" concern, at round granularity)
    timed_out: bool = False

    @property
    def all_healthy(self) -> bool:
        return self.valid and not self.timed_out and (
            self.healthy == self.total
        )


class SwarmNodeService:
    """Per-node protocol engine."""

    def __init__(
        self,
        device: Device,
        children: List[str],
        verifier: Verifier,
        algorithm: str = "blake2s",
        priority: int = 40,
    ) -> None:
        self.device = device
        self.children = children
        self.verifier = verifier  # used only to self-check measurements
        self.config = MeasurementConfig(
            algorithm=algorithm, order="sequential", atomic=False,
            priority=priority,
        )
        #: a powered-off / crashed / partitioned node stops answering
        self.online = True
        self._counter = 0
        self._collecting: Dict[bytes, dict] = {}
        listen(device.nic, self._on_message,
               kinds=frozenset({"swarm_attest", "swarm_reply"}))

    # -- message handling --------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if not self.online:
            return
        if message.kind == "swarm_attest":
            self._start_round(message)
        elif message.kind == "swarm_reply":
            self._on_child_reply(message)

    def _start_round(self, message: Message) -> None:
        payload = message.payload
        nonce = payload["nonce"]
        state = {
            "nonce": nonce,
            "parent": message.src,
            "pending": set(self.children),
            "child_aggs": [],
            "own": None,
            # the round's TraceContext rides down the flood and back up
            # the aggregate, so the whole tree round is one trace
            "ctx": message.ctx,
        }
        self._collecting[nonce] = state
        for child in self.children:
            self.device.nic.send(
                child, "swarm_attest", {"nonce": nonce}, ctx=message.ctx
            )
        self._counter += 1
        mp = MeasurementProcess(
            self.device, self.config, nonce=nonce, counter=self._counter,
            mechanism="swarm",
        )
        proc = self.device.cpu.spawn(
            f"{self.device.name}.swarm-mp.{self._counter}",
            mp.run,
            priority=self.config.priority,
        )

        def own_done(_record, mp=mp, nonce=nonce) -> None:
            round_state = self._collecting.get(nonce)
            if round_state is None:
                return
            round_state["own"] = mp.record
            self._maybe_reply(nonce)

        proc.done_signal.wait(own_done)

    def _on_child_reply(self, message: Message) -> None:
        aggregate: NodeAggregate = message.payload["aggregate"]
        nonce = message.payload["nonce"]
        state = self._collecting.get(nonce)
        if state is None or aggregate.node not in state["pending"]:
            return
        # Parent verifies the child's aggregate MAC (pairwise key from
        # SEDA's join phase; we reuse the child's attestation key).
        child_key = self._child_key(aggregate.node)
        expected = hmac_digest(child_key, aggregate.tag_input(nonce))
        if not constant_time_equal(expected, aggregate.tag):
            # A forged aggregate counts its whole subtree as dirty.
            aggregate = NodeAggregate(
                node=aggregate.node,
                healthy=0,
                total=aggregate.total,
                dirty_nodes=[aggregate.node + "?forged"],
                tag=b"",
            )
        state["pending"].discard(aggregate.node)
        state["child_aggs"].append(aggregate)
        self._maybe_reply(nonce)

    def _child_key(self, child_name: str) -> bytes:
        profile = self.verifier.devices.get(child_name)
        if profile is None:
            raise ConfigurationError(f"unknown child {child_name!r}")
        return profile.key

    # -- aggregation ----------------------------------------------------------

    def _maybe_reply(self, nonce: bytes) -> None:
        state = self._collecting.get(nonce)
        if state is None or state["own"] is None or state["pending"]:
            return
        record = state["own"]
        own_healthy = (
            self.verifier.verify_record(record).value == "healthy"
        )
        healthy = int(own_healthy)
        total = 1
        dirty: List[str] = [] if own_healthy else [self.device.name]
        for child_agg in state["child_aggs"]:
            healthy += child_agg.healthy
            total += child_agg.total
            dirty.extend(child_agg.dirty_nodes)
        aggregate = NodeAggregate(
            node=self.device.name,
            healthy=healthy,
            total=total,
            dirty_nodes=sorted(dirty),
            tag=b"",
        )
        aggregate.tag = hmac_digest(
            self.device.attestation_key, aggregate.tag_input(nonce)
        )
        self.device.nic.send(
            state["parent"], "swarm_reply",
            {"nonce": nonce, "aggregate": aggregate},
            ctx=state["ctx"],
        )
        del self._collecting[nonce]


class SwarmAttestation:
    """Verifier-side driver over a :class:`SwarmTopology`."""

    def __init__(
        self,
        topology: SwarmTopology,
        verifier: Verifier,
        endpoint_name: str = "vrf",
        algorithm: str = "blake2s",
    ) -> None:
        self.topology = topology
        self.verifier = verifier
        self.endpoint = topology.channel.make_endpoint(endpoint_name)
        self.results: List[SwarmResult] = []
        self._nonce_counter = 0
        self._outstanding: Dict[bytes, bool] = {}
        children_map = topology.spanning_tree_children(root=0)
        self.services = []
        for index, device in enumerate(topology.devices):
            verifier.enroll(device)
            self.services.append(
                SwarmNodeService(
                    device,
                    children=[
                        topology.devices[c].name
                        for c in children_map[index]
                    ],
                    verifier=verifier,
                    algorithm=algorithm,
                )
            )
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"swarm_reply"}))

    def attest(self, timeout: Optional[float] = None) -> bytes:
        """Kick off one collective attestation; returns its nonce.

        ``timeout`` arms a round deadline: if no root aggregate arrives
        in time, a ``timed_out`` :class:`SwarmResult` is recorded --
        the verifier's only signal when a node somewhere in the tree is
        dead or partitioned.
        """
        self._nonce_counter += 1
        nonce = b"swarm" + self._nonce_counter.to_bytes(8, "big")
        self._outstanding[nonce] = True
        ctx = (
            TraceContext.mint("swarm", nonce)
            if self.verifier.sim.obs.enabled else None
        )
        self.endpoint.send(
            self.topology.devices[0].name, "swarm_attest",
            {"nonce": nonce}, ctx=ctx,
        )
        if timeout is not None:
            self.verifier.sim.schedule(timeout, self._deadline, nonce)
        return nonce

    def _deadline(self, nonce: bytes) -> None:
        if nonce not in self._outstanding:
            return  # completed in time
        del self._outstanding[nonce]
        self.results.append(
            SwarmResult(
                nonce=nonce,
                healthy=0,
                total=len(self.topology.devices),
                dirty_nodes=[],
                completed_at=self.verifier.sim.now,
                valid=False,
                timed_out=True,
            )
        )

    def _on_message(self, message: Message) -> None:
        if message.kind != "swarm_reply":
            return
        aggregate: NodeAggregate = message.payload["aggregate"]
        nonce = message.payload["nonce"]
        if nonce not in self._outstanding:
            return
        del self._outstanding[nonce]
        root_key = self.topology.devices[0].attestation_key
        expected = hmac_digest(root_key, aggregate.tag_input(nonce))
        self.results.append(
            SwarmResult(
                nonce=nonce,
                healthy=aggregate.healthy,
                total=aggregate.total,
                dirty_nodes=list(aggregate.dirty_nodes),
                completed_at=self.verifier.sim.now,
                valid=constant_time_equal(expected, aggregate.tag),
            )
        )

    def result_for(self, nonce: bytes) -> Optional[SwarmResult]:
        for result in self.results:
            if result.nonce == nonce:
                return result
        return None
