"""Collective (swarm) attestation -- the Section 2.1 extension.

The paper's background surveys swarm RA (SEDA [2], LISA [4], SANA
[23]): when many interconnected devices must be attested, a dedicated
protocol aggregates results over the network instead of attesting each
device point-to-point.

* :mod:`repro.swarm.topology` -- device graphs and hop-latency models;
* :mod:`repro.swarm.collective` -- a SEDA-style spanning-tree
  aggregation protocol over the simulated devices (LISA-s flavour);
* :mod:`repro.swarm.lisa` -- LISA-alpha: per-device reports forwarded
  to the verifier (higher QoSA, more traffic);
* :mod:`repro.swarm.darpa` -- DARPA-style heartbeat absence detection
  against physical attacks.
"""

from repro.swarm.topology import SwarmTopology, make_topology
from repro.swarm.collective import (
    SwarmAttestation,
    SwarmNodeService,
    SwarmResult,
)
from repro.swarm.lisa import (
    LisaAlphaAttestation,
    LisaAlphaNode,
    LisaAlphaResult,
)
from repro.swarm.darpa import AbsenceEvent, HeartbeatProtocol

__all__ = [
    "SwarmTopology",
    "make_topology",
    "SwarmAttestation",
    "SwarmNodeService",
    "SwarmResult",
    "LisaAlphaAttestation",
    "LisaAlphaNode",
    "LisaAlphaResult",
    "AbsenceEvent",
    "HeartbeatProtocol",
]
