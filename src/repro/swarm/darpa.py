"""DARPA-style absence detection (Section 2.1, after [13]).

Remote attestation checks *software* state; a physical attacker simply
takes the device away, extracts secrets at leisure, and returns it.
DARPA's observation: extraction takes time, and a device being worked
on is **absent** -- so neighbours exchanging periodic authenticated
heartbeats can detect the tell-tale gap.

:class:`HeartbeatProtocol` runs over a :class:`~repro.swarm.topology.
SwarmTopology`: every node emits a MAC'd heartbeat to each neighbour
every ``period`` (with per-node phase jitter so the channel isn't
bursty); each node tracks its neighbours' last-seen times and flags an
:class:`AbsenceEvent` once ``miss_threshold`` periods elapse in
silence.  A verifier collects the union of absence logs alongside
normal attestation.

Heartbeat emission is modelled at the engine level (the CPU cost of a
32-byte MAC every few seconds is noise next to measurement costs; the
*protocol* behaviour is what matters here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.crypto.hmac import constant_time_equal, hmac_digest
from repro.errors import ConfigurationError
from repro.ra.service import listen
from repro.sim.network import Message
from repro.swarm.topology import SwarmTopology


def pairwise_key(key_a: bytes, key_b: bytes) -> bytes:
    """Symmetric session key for a neighbour pair (order-independent)."""
    low, high = sorted((key_a, key_b))
    return hmac_digest(low, high, "sha256")


@dataclass(frozen=True)
class AbsenceEvent:
    """One detected absence."""

    missing: str
    detected_by: str
    detected_at: float
    last_seen: float

    @property
    def silence(self) -> float:
        return self.detected_at - self.last_seen


class HeartbeatNode:
    """Per-node heartbeat engine."""

    def __init__(
        self,
        protocol: "HeartbeatProtocol",
        index: int,
        neighbours: List[int],
    ) -> None:
        self.protocol = protocol
        self.index = index
        self.device = protocol.topology.devices[index]
        self.neighbours = neighbours
        self.online = True
        self.last_seen: Dict[int, float] = {}
        self.heartbeats_sent = 0
        self.flagged: Set[int] = set()
        listen(self.device.nic, self._on_message,
               kinds=frozenset({"heartbeat"}))

    # -- emission ---------------------------------------------------------

    def start(self) -> None:
        sim = self.device.sim
        # Per-node phase jitter spreads emissions over the period.
        phase = (self.index * 0.37) % 1.0 * self.protocol.period
        sim.schedule(phase, self._tick)
        sim.schedule(
            phase + self.protocol.period / 2, self._check_neighbours
        )
        for neighbour in self.neighbours:
            self.last_seen[neighbour] = sim.now

    def _tick(self) -> None:
        sim = self.device.sim
        if self.online:
            for neighbour in self.neighbours:
                peer = self.protocol.topology.devices[neighbour]
                key = pairwise_key(
                    self.device.attestation_key, peer.attestation_key
                )
                body = (
                    self.device.name.encode()
                    + int(sim.now * 1e6).to_bytes(8, "big")
                )
                self.device.nic.send(
                    peer.name, "heartbeat",
                    {
                        "from_index": self.index,
                        "tag": hmac_digest(key, body),
                        "body": body,
                    },
                )
                self.heartbeats_sent += 1
        sim.schedule(self.protocol.period, self._tick)

    # -- reception / detection ----------------------------------------------

    def _on_message(self, message: Message) -> None:
        if not self.online:
            return
        payload = message.payload
        sender = payload["from_index"]
        if sender not in self.neighbours:
            return
        peer = self.protocol.topology.devices[sender]
        key = pairwise_key(
            self.device.attestation_key, peer.attestation_key
        )
        if not constant_time_equal(
            hmac_digest(key, payload["body"]), payload["tag"]
        ):
            return  # forged heartbeat: ignore (absence will show)
        self.last_seen[sender] = self.device.sim.now
        # A returning neighbour is re-armed for future detection.
        self.flagged.discard(sender)

    def _check_neighbours(self) -> None:
        sim = self.device.sim
        if self.online:
            deadline = (
                self.protocol.period * self.protocol.miss_threshold
            )
            for neighbour in self.neighbours:
                if neighbour in self.flagged:
                    continue
                silence = sim.now - self.last_seen[neighbour]
                if silence > deadline:
                    self.flagged.add(neighbour)
                    event = AbsenceEvent(
                        missing=self.protocol.topology.devices[
                            neighbour
                        ].name,
                        detected_by=self.device.name,
                        detected_at=sim.now,
                        last_seen=self.last_seen[neighbour],
                    )
                    self.protocol.absences.append(event)
        sim.schedule(self.protocol.period, self._check_neighbours)


class HeartbeatProtocol:
    """Swarm-wide absence detection."""

    def __init__(
        self,
        topology: SwarmTopology,
        period: float = 1.0,
        miss_threshold: int = 3,
    ) -> None:
        if period <= 0:
            raise ConfigurationError("heartbeat period must be positive")
        if miss_threshold < 1:
            raise ConfigurationError("miss_threshold must be >= 1")
        self.topology = topology
        self.period = period
        self.miss_threshold = miss_threshold
        self.absences: List[AbsenceEvent] = []
        self.nodes = [
            HeartbeatNode(self, index, topology.neighbours(index))
            for index in range(len(topology.devices))
        ]

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    # -- physical attack modelling ----------------------------------------

    def remove_device(self, index: int, at: float) -> None:
        """The physical attacker unplugs device ``index`` at ``at``."""
        self.topology.sim.schedule_at(
            at, lambda: setattr(self.nodes[index], "online", False)
        )

    def return_device(self, index: int, at: float) -> None:
        """...and quietly returns it later."""
        self.topology.sim.schedule_at(
            at, lambda: setattr(self.nodes[index], "online", True)
        )

    # -- verifier-side queries ------------------------------------------------

    def missing_devices(self) -> List[str]:
        """Devices some neighbour currently flags as absent."""
        return sorted(
            {event.missing for event in self.absences
             if any(
                 self.topology.device_index(event.missing)
                 in node.flagged
                 for node in self.nodes
             )}
        )

    def detection_latency(self, device_name: str) -> Optional[float]:
        """Removal-to-first-detection latency for one device."""
        events = [
            event for event in self.absences
            if event.missing == device_name
        ]
        if not events:
            return None
        first = min(events, key=lambda event: event.detected_at)
        return first.detected_at - first.last_seen
