"""Swarm topologies: device graphs with hop-count latency.

Builds a population of simulated :class:`~repro.sim.device.Device`
objects connected by one shared :class:`~repro.sim.network.Channel`
whose latency between two endpoints is ``per_hop_latency`` times their
hop distance in the topology graph -- a standard abstraction for
multi-hop mesh networks in swarm-attestation papers.

Graph construction uses :mod:`networkx` when available and falls back
to built-in generators for the named shapes otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.device import Device
from repro.sim.engine import Simulator
from repro.sim.network import Channel, Message

try:  # networkx is available in the evaluation environment
    import networkx as nx
except ImportError:  # pragma: no cover - degraded mode
    nx = None


def _edges_for(shape: str, count: int, seed: int) -> List[Tuple[int, int]]:
    """Edge list for a named topology over nodes 0..count-1 (0 = root)."""
    if count < 1:
        raise ConfigurationError("need at least one node")
    if shape == "star":
        return [(0, i) for i in range(1, count)]
    if shape == "line":
        return [(i, i + 1) for i in range(count - 1)]
    if shape == "tree":  # binary tree rooted at 0
        return [((i - 1) // 2, i) for i in range(1, count)]
    if shape == "random":
        if nx is None:
            raise ConfigurationError("random topology requires networkx")
        graph = nx.connected_watts_strogatz_graph(
            count, k=min(4, max(2, count - 1)), p=0.3, seed=seed
        )
        return list(graph.edges())
    raise ConfigurationError(
        f"unknown topology shape {shape!r}; "
        "use star / line / tree / random"
    )


@dataclass
class SwarmTopology:
    """A population of devices plus their connectivity graph."""

    sim: Simulator
    devices: List[Device]
    edges: List[Tuple[int, int]]
    channel: Channel
    per_hop_latency: float
    _distances: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._compute_distances()

    def _compute_distances(self) -> None:
        """All-pairs hop distances (BFS per node; swarms are small)."""
        adjacency: Dict[int, List[int]] = {
            i: [] for i in range(len(self.devices))
        }
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        for source in adjacency:
            seen = {source: 0}
            frontier = [source]
            while frontier:
                next_frontier = []
                for node in frontier:
                    for neighbour in adjacency[node]:
                        if neighbour not in seen:
                            seen[neighbour] = seen[node] + 1
                            next_frontier.append(neighbour)
                frontier = next_frontier
            for target, hops in seen.items():
                self._distances[(source, target)] = hops

    # -- queries --------------------------------------------------------

    def hop_distance(self, a: int, b: int) -> int:
        distance = self._distances.get((a, b))
        if distance is None:
            raise ConfigurationError(f"nodes {a} and {b} are disconnected")
        return distance

    def neighbours(self, node: int) -> List[int]:
        out = []
        for a, b in self.edges:
            if a == node:
                out.append(b)
            elif b == node:
                out.append(a)
        return sorted(set(out))

    def spanning_tree_children(self, root: int = 0) -> Dict[int, List[int]]:
        """BFS spanning tree as a parent -> children map."""
        children: Dict[int, List[int]] = {
            i: [] for i in range(len(self.devices))
        }
        seen = {root}
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbour in self.neighbours(node):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        children[node].append(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return children

    def device_index(self, name: str) -> int:
        for index, device in enumerate(self.devices):
            if device.name == name:
                return index
        raise ConfigurationError(f"no device named {name!r}")


def make_topology(
    sim: Simulator,
    count: int,
    shape: str = "tree",
    per_hop_latency: float = 0.002,
    block_count: int = 16,
    block_size: int = 32,
    seed: int = 7,
) -> SwarmTopology:
    """Build ``count`` devices wired by a named topology."""
    devices = [
        Device(
            sim,
            name=f"node{i}",
            block_count=block_count,
            block_size=block_size,
            seed=seed + i,
        )
        for i in range(count)
    ]
    edges = _edges_for(shape, count, seed)

    topology_holder: List[Optional[SwarmTopology]] = [None]

    def latency(message: Message) -> float:
        topology = topology_holder[0]
        assert topology is not None
        try:
            src = topology.device_index(message.src)
        except ConfigurationError:
            src = 0  # external verifier talks through the root
        try:
            dst = topology.device_index(message.dst)
        except ConfigurationError:
            dst = 0
        hops = max(1, topology.hop_distance(src, dst))
        return hops * per_hop_latency

    channel = Channel(sim, latency=latency)
    for device in devices:
        device.attach_network(channel)
    topology = SwarmTopology(
        sim=sim,
        devices=devices,
        edges=edges,
        channel=channel,
        per_hop_latency=per_hop_latency,
    )
    topology_holder[0] = topology
    return topology
