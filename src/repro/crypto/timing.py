"""Calibrated ODROID-XU4 timing model (Figure 2).

The paper measures MP latency on an ODROID-XU4 for four hash functions
and six signature schemes across memory sizes (Figure 2), and quotes
three anchor numbers in Section 2.4:

* hashing 100 MB takes "about 0.9 sec";
* hashing the full 2 GB of RAM takes "nearly 14 sec";
* above 1 MB, MP takes longer than 0.01 sec, so "the cost of most
  signature algorithms become comparatively insignificant".

We cannot run on the board, so we substitute an explicit cost model:

    time(algorithm, size) = fixed_cost + size / throughput

Hash throughputs are calibrated so SHA-256 hits the 0.9 s / 100 MB
anchor (~111 MB/s) and the fastest hash (BLAKE2s) hits the 14 s / 2 GiB
anchor (~147 MiB/s); relative ordering follows the well-known embedded
ARM profile (SHA-512 slowest on a 32-bit data path, BLAKE2 fastest).
Signature costs are size-independent -- only the digest is signed --
and sit in the openssl-speed class for a ~2 GHz Cortex-A15: RSA signing
grows roughly 6-8x per key-size doubling; ECDSA signing is around a
millisecond; RSA verification is cheap, ECDSA verification ~2x signing.

Every claim Figure 2 makes is a property of this decomposition, which
the analysis module (:mod:`repro.analysis.fig2_model`) checks:
log-log-linear hash curves, flat signature floors, and a hash/sign
crossover near 1 MB / 0.01 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParameterError
from repro.units import GiB, KiB

# Figure 2's algorithm sets.
HASH_NAMES = ("sha256", "sha512", "blake2b", "blake2s")
SIGNATURE_NAMES = (
    "rsa1024",
    "rsa2048",
    "rsa4096",
    "ecdsa160",
    "ecdsa224",
    "ecdsa256",
)


@dataclass(frozen=True)
class HashCost:
    """Affine cost of one hash invocation."""

    fixed: float  # seconds per call (setup + finalization)
    throughput: float  # bytes per second through the compression function

    def time(self, num_bytes: int) -> float:
        return self.fixed + num_bytes / self.throughput


@dataclass(frozen=True)
class SignatureCost:
    """Size-independent signing/verification cost (the digest is fixed)."""

    sign: float  # seconds per signature
    verify: float  # seconds per verification
    hash_name: str = "sha256"  # digest used inside hash-and-sign


class TimingModel:
    """Maps (algorithm, byte count) to simulated seconds.

    Subclass or instantiate with explicit tables; :class:`OdroidXU4Model`
    is the calibrated instance used throughout the reproduction.
    """

    def __init__(
        self,
        hash_costs: Dict[str, HashCost],
        signature_costs: Dict[str, SignatureCost],
        name: str = "custom",
        lock_op_cost: float = 2e-6,
        context_switch_cost: float = 5e-6,
    ) -> None:
        self.name = name
        self.hash_costs = dict(hash_costs)
        self.signature_costs = dict(signature_costs)
        #: cost of one MPU lock/unlock syscall (HYDRA measures these as
        #: microsecond-scale seL4 syscalls)
        self.lock_op_cost = lock_op_cost
        #: cost charged when MP is interrupted and resumed
        self.context_switch_cost = context_switch_cost

    # -- primitive costs ---------------------------------------------------

    def hash_time(self, algorithm: str, num_bytes: int) -> float:
        """Seconds to hash ``num_bytes`` with ``algorithm``."""
        cost = self.hash_costs.get(algorithm)
        if cost is None:
            raise ParameterError(f"no hash cost for {algorithm!r}")
        if num_bytes < 0:
            raise ParameterError("negative byte count")
        return cost.time(num_bytes)

    def sign_time(self, algorithm: str) -> float:
        cost = self.signature_costs.get(algorithm)
        if cost is None:
            raise ParameterError(f"no signature cost for {algorithm!r}")
        return cost.sign

    def verify_time(self, algorithm: str) -> float:
        cost = self.signature_costs.get(algorithm)
        if cost is None:
            raise ParameterError(f"no signature cost for {algorithm!r}")
        return cost.verify

    # -- composite costs -----------------------------------------------------

    def mac_time(self, algorithm: str, num_bytes: int) -> float:
        """HMAC cost: inner hash over the data plus a fixed-size outer
        hash (the paper: outer cost "negligible compared to the inner")."""
        inner = self.hash_time(algorithm, num_bytes)
        digest_size = 64 if algorithm in ("sha512", "blake2b") else 32
        outer = self.hash_time(algorithm, digest_size)
        return inner + outer

    def hash_and_sign_time(
        self, signature: str, num_bytes: int,
        hash_algorithm: Optional[str] = None,
    ) -> float:
        """Digital-signature measurement: hash the memory, sign the digest."""
        sig_cost = self.signature_costs.get(signature)
        if sig_cost is None:
            raise ParameterError(f"no signature cost for {signature!r}")
        hash_name = hash_algorithm or sig_cost.hash_name
        return self.hash_time(hash_name, num_bytes) + sig_cost.sign

    def measurement_time(
        self, num_bytes: int, hash_algorithm: str = "sha256",
        signature: Optional[str] = None,
    ) -> float:
        """Total MP compute time over ``num_bytes``: MAC, or hash+sign."""
        if signature is None:
            return self.mac_time(hash_algorithm, num_bytes)
        return self.hash_and_sign_time(
            signature, num_bytes, hash_algorithm=hash_algorithm
        )

    # -- analysis helpers -----------------------------------------------------

    def crossover_size(self, hash_algorithm: str, signature: str) -> float:
        """Input size (bytes) where hashing cost equals signing cost.

        Below this size the signature dominates MP latency; above it
        hashing does (the Section 2.4 observation)."""
        hash_cost = self.hash_costs[hash_algorithm]
        sign = self.sign_time(signature)
        if sign <= hash_cost.fixed:
            return 0.0
        return (sign - hash_cost.fixed) * hash_cost.throughput

    def sweep(
        self, sizes: List[int], hash_algorithm: str = "sha256",
        signature: Optional[str] = None,
    ) -> List[Tuple[int, float]]:
        """(size, seconds) series for one Figure 2 curve."""
        return [
            (size, self.measurement_time(size, hash_algorithm, signature))
            for size in sizes
        ]


def _odroid_tables() -> Tuple[Dict[str, HashCost], Dict[str, SignatureCost]]:
    """Calibrated constants; see the module docstring for provenance."""
    hash_costs = {
        # 100 MB / 0.9 s anchor -> ~111 MB/s for SHA-256.
        "sha256": HashCost(fixed=5e-6, throughput=111.1 * 1e6),
        # 64-bit arithmetic on a 32-bit data path: slowest of the four.
        "sha512": HashCost(fixed=6e-6, throughput=75.0 * 1e6),
        # BLAKE2b: fast even on ARM; BLAKE2s tuned for 32-bit -> fastest.
        "blake2b": HashCost(fixed=4e-6, throughput=135.0 * 1e6),
        # 2 GiB / 14 s anchor -> ~153 MB/s for the fastest hash.
        "blake2s": HashCost(fixed=4e-6, throughput=2 * GiB / 14.0),
    }
    signature_costs = {
        "rsa1024": SignatureCost(sign=0.9e-3, verify=0.06e-3),
        "rsa2048": SignatureCost(sign=5.6e-3, verify=0.18e-3),
        "rsa4096": SignatureCost(sign=38.0e-3, verify=0.62e-3),
        "ecdsa160": SignatureCost(sign=0.5e-3, verify=1.7e-3),
        "ecdsa224": SignatureCost(sign=0.9e-3, verify=3.1e-3),
        "ecdsa256": SignatureCost(sign=1.1e-3, verify=3.9e-3),
    }
    return hash_costs, signature_costs


class OdroidXU4Model(TimingModel):
    """The calibrated prover platform of the paper (Section 2.4)."""

    #: the board's RAM, the largest size in Figure 2
    RAM_BYTES = 2 * GiB

    def __init__(self) -> None:
        hash_costs, signature_costs = _odroid_tables()
        super().__init__(hash_costs, signature_costs, name="odroid-xu4")


def calibrate_from_anchors(
    hash_anchors: Dict[str, Tuple[int, float]],
    signature_times: Dict[str, Tuple[float, float]],
    name: str = "calibrated",
    fixed_cost: float = 5e-6,
) -> TimingModel:
    """Build a :class:`TimingModel` from measured anchor points.

    Bring-your-own-board calibration: measure each hash once at a
    large-ish size and each signature scheme's (sign, verify) times,
    then feed them here.

    Parameters
    ----------
    hash_anchors:
        ``{algorithm: (num_bytes, seconds)}`` -- one measured hashing
        run per algorithm; throughput is derived after subtracting the
        fixed per-call cost.
    signature_times:
        ``{scheme: (sign_seconds, verify_seconds)}``.
    fixed_cost:
        Per-call setup/finalization cost assumed for every hash.

    >>> model = calibrate_from_anchors(
    ...     {"sha256": (100 * 10**6, 0.9)},
    ...     {"rsa2048": (5.6e-3, 0.18e-3)},
    ... )
    >>> round(model.hash_time("sha256", 100 * 10**6), 3)
    0.9
    """
    hash_costs: Dict[str, HashCost] = {}
    for algorithm, (num_bytes, seconds) in hash_anchors.items():
        if num_bytes <= 0 or seconds <= fixed_cost:
            raise ParameterError(
                f"anchor for {algorithm!r} must measure more than the "
                "fixed cost"
            )
        throughput = num_bytes / (seconds - fixed_cost)
        hash_costs[algorithm] = HashCost(fixed=fixed_cost,
                                         throughput=throughput)
    signature_costs = {}
    for scheme, (sign, verify) in signature_times.items():
        if sign <= 0 or verify <= 0:
            raise ParameterError(
                f"signature times for {scheme!r} must be positive"
            )
        signature_costs[scheme] = SignatureCost(sign=sign, verify=verify)
    return TimingModel(hash_costs, signature_costs, name=name)


def figure2_sizes(points_per_decade: int = 3) -> List[int]:
    """The memory sizes swept in Figure 2: 1 KiB up to 2 GiB, log-spaced."""
    sizes: List[int] = []
    size = KiB
    while size < 2 * GiB:
        sizes.append(size)
        for step in range(1, points_per_decade):
            inter = int(size * (10 ** (step / points_per_decade)))
            if inter < 2 * GiB:
                sizes.append(inter)
        size *= 10
    sizes.append(2 * GiB)
    return sorted(set(s for s in sizes if s <= 2 * GiB))
