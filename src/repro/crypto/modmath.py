"""Modular arithmetic and primality, the number theory under RSA/ECDSA.

Pure-Python implementations of the classical toolbox: extended
Euclid, modular inverse, Miller-Rabin (deterministic for 64-bit
inputs, seeded-random witnesses above), prime generation from a DRBG,
and the Chinese Remainder Theorem used to accelerate RSA signing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.errors import ParameterError

# Deterministic Miller-Rabin witnesses: these prove primality for all
# n < 3,317,044,064,679,887,385,961,981 (Sorenson & Webster 2015).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


def modinv(a: int, modulus: int) -> int:
    """Inverse of ``a`` modulo ``modulus``; raises if not coprime."""
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        # the operand may be secret (ecdsa_sign inverts the nonce):
        # never interpolate it into the exception text
        raise ParameterError(f"value has no inverse modulo {modulus}")
    return x % modulus


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime so far'."""
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40,
                      drbg: Optional[HmacDrbg] = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (and exact) below the Sorenson-Webster bound; above
    it, uses ``rounds`` random witnesses drawn from ``drbg`` (or a
    fixed-seed DRBG, keeping the test reproducible).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses: Sequence[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = drbg if drbg is not None else HmacDrbg(b"miller-rabin")
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(
        _miller_rabin_round(n, d, r, w % n or 2) for w in witnesses
    )


def generate_prime(bits: int, drbg: HmacDrbg) -> int:
    """A random prime of exactly ``bits`` bits from the DRBG stream."""
    if bits < 8:
        raise ParameterError("refusing to generate primes under 8 bits")
    while True:
        candidate = drbg.randint_bits(bits)
        candidate |= (1 << (bits - 1)) | 1  # full length, odd
        if is_probable_prime(candidate, drbg=drbg):
            return candidate


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x = r1 (mod m1), x = r2 (mod m2)`` for coprime moduli."""
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise ParameterError("CRT moduli must be coprime")
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * p) % m2)) % (m1 * m2)


def int_to_bytes(value: int, length: Optional[int] = None) -> bytes:
    """Big-endian encoding, minimal length unless ``length`` is given."""
    if value < 0:
        raise ParameterError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def bit_length_bytes(bits: int) -> int:
    return (bits + 7) // 8
