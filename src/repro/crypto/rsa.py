"""RSA signatures (PKCS#1 v1.5 style), implemented from scratch.

Figure 2 measures RSA-1024 / RSA-2048 / RSA-4096 signing on the
prover.  This module provides the functional counterpart: key
generation from the package DRBG, EMSA-PKCS1-v1_5 encoding with
DigestInfo prefixes, CRT-accelerated signing and verification.

The implementation favours clarity over side-channel hardening -- it
signs simulated attestation reports, not production traffic -- but it
is functionally complete: signatures interoperate at the "verify what
you signed" level and the encoding follows RFC 8017 section 9.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import digest as hash_digest
from repro.crypto.modmath import (
    bit_length_bytes,
    bytes_to_int,
    generate_prime,
    int_to_bytes,
    modinv,
)
from repro.errors import KeySizeError, SignatureError

# DigestInfo DER prefixes (RFC 8017, appendix B.1).
_DIGEST_INFO_PREFIX = {
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
    "sha512": bytes.fromhex("3051300d060960864801650304020305000440"),
}

_MIN_MODULUS_BITS = 256  # small keys allowed for tests; warn below 1024


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return bit_length_bytes(self.bits)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return bit_length_bytes(self.bits)

    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


def rsa_generate(bits: int, seed: bytes = b"rsa-seed",
                 e: int = 65537) -> RsaKeyPair:
    """Generate an RSA key pair deterministically from ``seed``.

    ``bits`` is the modulus size.  Generation retries prime pairs until
    the modulus has exactly ``bits`` bits and ``e`` is invertible.
    """
    if bits < _MIN_MODULUS_BITS:
        raise KeySizeError(f"modulus below {_MIN_MODULUS_BITS} bits")
    drbg = HmacDrbg(seed + bits.to_bytes(4, "big"), "sha256")
    half = bits // 2
    while True:
        p = generate_prime(bits - half, drbg)
        q = generate_prime(half, drbg)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = modinv(e, phi)
        private = RsaPrivateKey(
            n=n, e=e, d=d, p=p, q=q,
            d_p=d % (p - 1), d_q=d % (q - 1), q_inv=modinv(q, p),
        )
        return RsaKeyPair(private.public(), private)


def _emsa_pkcs1_v15(message: bytes, em_len: int, hash_name: str) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of ``message`` into ``em_len`` bytes."""
    if hash_name not in _DIGEST_INFO_PREFIX:
        raise SignatureError(f"no DigestInfo prefix for {hash_name!r}")
    t = _DIGEST_INFO_PREFIX[hash_name] + hash_digest(hash_name, message)
    if em_len < len(t) + 11:
        raise KeySizeError("modulus too small for this digest")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def _crt_power(key: RsaPrivateKey, value: int) -> int:
    """``value ** d mod n`` via the CRT (about 4x faster)."""
    m1 = pow(value % key.p, key.d_p, key.p)
    m2 = pow(value % key.q, key.d_q, key.q)
    h = (key.q_inv * (m1 - m2)) % key.p
    return m2 + key.q * h


def rsa_sign(key: RsaPrivateKey, message: bytes,
             hash_name: str = "sha256") -> bytes:
    """Sign ``message``; returns a signature of the modulus length."""
    em = _emsa_pkcs1_v15(message, key.byte_length, hash_name)
    signature = _crt_power(key, bytes_to_int(em))
    # Cheap fault check (protects against CRT implementation bugs).
    if pow(signature, key.e, key.n) != bytes_to_int(em):
        raise SignatureError("CRT self-check failed")
    return int_to_bytes(signature, key.byte_length)


def rsa_verify(key: RsaPublicKey, message: bytes, signature: bytes,
               hash_name: str = "sha256") -> bool:
    """Verify a signature; returns ``True``/``False`` (never raises on
    a merely-invalid signature)."""
    if len(signature) != key.byte_length:
        return False
    s = bytes_to_int(signature)
    if s >= key.n:
        return False
    em = int_to_bytes(pow(s, key.e, key.n), key.byte_length)
    try:
        expected = _emsa_pkcs1_v15(message, key.byte_length, hash_name)
    except (SignatureError, KeySizeError):
        return False
    return em == expected
