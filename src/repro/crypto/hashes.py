"""Hash algorithm registry.

The four hash functions measured in Figure 2 -- SHA-256, SHA-512,
BLAKE2b and BLAKE2s (the BLAKE2 pair "in particular well suited for
embedded systems") -- behind a uniform interface.  The compression
functions come from :mod:`hashlib`; what this module owns is the
*metadata* the rest of the package needs: digest sizes, block sizes
(for HMAC padding) and canonical names (for the timing model).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ParameterError


@dataclass(frozen=True)
class HashAlgorithm:
    """Metadata for one hash function."""

    name: str
    factory: Callable[..., "hashlib._Hash"]
    digest_size: int
    block_size: int

    def new(self, data: bytes = b"") -> "hashlib._Hash":
        return self.factory(data)


HASH_ALGORITHMS: Dict[str, HashAlgorithm] = {
    "sha256": HashAlgorithm("sha256", hashlib.sha256, 32, 64),
    "sha512": HashAlgorithm("sha512", hashlib.sha512, 64, 128),
    "blake2b": HashAlgorithm("blake2b", hashlib.blake2b, 64, 128),
    "blake2s": HashAlgorithm("blake2s", hashlib.blake2s, 32, 64),
}


def get_algorithm(name: str) -> HashAlgorithm:
    """Look up a registered algorithm; raises :class:`ParameterError`."""
    try:
        return HASH_ALGORITHMS[name]
    except KeyError:
        raise ParameterError(
            f"unknown hash algorithm {name!r}; "
            f"known: {sorted(HASH_ALGORITHMS)}"
        ) from None


def hash_new(name: str, data: bytes = b""):
    """A fresh hash object for ``name``, optionally pre-fed ``data``."""
    return get_algorithm(name).new(data)


def digest(name: str, data: bytes) -> bytes:
    """One-shot digest."""
    return get_algorithm(name).new(data).digest()


def digest_chain(name: str, chunks) -> bytes:
    """Digest of the concatenation of ``chunks`` without joining them."""
    h = get_algorithm(name).new()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()
