"""HMAC, implemented from the RFC 2104 definition.

The paper's measurement function is a keyed integrity-ensuring
function, concretely a hash-based MAC (Section 2.4): the inner hash
processes the attested memory, the outer hash is constant-size (the
paper notes its cost is "negligible compared to the inner one").  We
implement HMAC from scratch over the hash registry rather than using
:mod:`hmac` so the construction itself is part of the reproduction and
is covered by the RFC 4231 test vectors in the test suite.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.hashes import HashAlgorithm, get_algorithm

_IPAD = 0x36
_OPAD = 0x5C


class Hmac:
    """Streaming HMAC.

    >>> mac = Hmac(b"key", "sha256")
    >>> mac.update(b"message")
    >>> len(mac.digest())
    32
    """

    def __init__(self, key: bytes, algorithm: str = "sha256") -> None:
        self.algorithm: HashAlgorithm = get_algorithm(algorithm)
        block_size = self.algorithm.block_size
        if len(key) > block_size:
            key = self.algorithm.new(key).digest()
        key = key.ljust(block_size, b"\x00")
        self._okey = bytes(b ^ _OPAD for b in key)
        inner_key = bytes(b ^ _IPAD for b in key)
        self._inner = self.algorithm.new(inner_key)

    def update(self, data: bytes) -> None:
        """Feed attested bytes to the inner hash."""
        self._inner.update(data)

    def copy(self) -> "Hmac":
        """A snapshot sharing no state with the original."""
        clone = object.__new__(Hmac)
        clone.algorithm = self.algorithm
        clone._okey = self._okey
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        """Finalize (non-destructively): outer hash over the inner digest."""
        outer = self.algorithm.new(self._okey)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        return self.digest().hex()

    @property
    def digest_size(self) -> int:
        return self.algorithm.digest_size


def hmac_digest(key: bytes, data: bytes, algorithm: str = "sha256") -> bytes:
    """One-shot HMAC."""
    mac = Hmac(key, algorithm)
    mac.update(data)
    return mac.digest()


def hmac_chain(
    key: bytes, chunks: Iterable[bytes], algorithm: str = "sha256"
) -> bytes:
    """HMAC over the concatenation of ``chunks`` (block-wise measurement)."""
    mac = Hmac(key, algorithm)
    for chunk in chunks:
        mac.update(chunk)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (the verifier compares MACs with this)."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
