"""ECDSA over short-Weierstrass prime curves, implemented from scratch.

Figure 2 measures ECDSA-160, ECDSA-224 and ECDSA-256; those map to the
SECG curves secp160r1, secp224r1 and secp256r1 (NIST P-224 / P-256).
This module implements affine point arithmetic, double-and-add scalar
multiplication, and ECDSA signing/verification with *deterministic*
nonces derived RFC 6979-style from the package DRBG -- both for
reproducibility and because nonce reuse is the classic ECDSA foot-gun.

Clarity is preferred over constant-time tricks: the signatures protect
simulated attestation reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import digest as hash_digest
from repro.crypto.modmath import bytes_to_int, int_to_bytes, modinv
from repro.errors import ParameterError, SignatureError

Point = Optional[Tuple[int, int]]  # None is the point at infinity


@dataclass(frozen=True)
class Curve:
    """Short-Weierstrass curve ``y^2 = x^3 + a x + b (mod p)``."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int  # order of the base point

    @property
    def generator(self) -> Point:
        return (self.gx, self.gy)

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    # -- point arithmetic -------------------------------------------------

    def is_on_curve(self, point: Point) -> bool:
        if point is None:
            return True
        x, y = point
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def add(self, p1: Point, p2: Point) -> Point:
        """Group law in affine coordinates."""
        if p1 is None:
            return p2
        if p2 is None:
            return p1
        x1, y1 = p1
        x2, y2 = p2
        if x1 == x2:
            if (y1 + y2) % self.p == 0:
                return None  # P + (-P)
            return self.double(p1)
        slope = ((y2 - y1) * modinv(x2 - x1, self.p)) % self.p
        x3 = (slope * slope - x1 - x2) % self.p
        y3 = (slope * (x1 - x3) - y1) % self.p
        return (x3, y3)

    def double(self, point: Point) -> Point:
        if point is None:
            return None
        x, y = point
        if y == 0:
            return None
        slope = ((3 * x * x + self.a) * modinv(2 * y, self.p)) % self.p
        x3 = (slope * slope - 2 * x) % self.p
        y3 = (slope * (x - x3) - y) % self.p
        return (x3, y3)

    def multiply(self, scalar: int, point: Point) -> Point:
        """Left-to-right double-and-add."""
        scalar %= self.n
        result: Point = None
        addend = point
        while scalar:
            if scalar & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            scalar >>= 1
        return result

    def negate(self, point: Point) -> Point:
        if point is None:
            return None
        x, y = point
        return (x, (-y) % self.p)


def _make_curves() -> Dict[str, Curve]:
    secp160r1 = Curve(
        name="secp160r1",
        p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
        a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
        b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
        gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
        gy=0x23A628553168947D59DCC912042351377AC5FB32,
        n=0x0100000000000000000001F4C8F927AED3CA752257,
    )
    secp224r1 = Curve(
        name="secp224r1",
        p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF000000000000000000000001,
        a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFFFFFFFFFE,
        b=0xB4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4,
        gx=0xB70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21,
        gy=0xBD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34,
        n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D,
    )
    secp256r1 = Curve(
        name="secp256r1",
        p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
        a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
        b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
        gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
        gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
        n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    )
    return {
        "secp160r1": secp160r1,
        "secp224r1": secp224r1,
        "secp256r1": secp256r1,
        # Figure 2's labels, as aliases:
        "ecdsa160": secp160r1,
        "ecdsa224": secp224r1,
        "ecdsa256": secp256r1,
    }


CURVES: Dict[str, Curve] = _make_curves()


def get_curve(name: str) -> Curve:
    try:
        return CURVES[name]
    except KeyError:
        raise ParameterError(
            f"unknown curve {name!r}; known: {sorted(set(CURVES))}"
        ) from None


@dataclass(frozen=True)
class EcdsaKeyPair:
    """Private scalar ``d`` and public point ``Q = d*G``."""

    curve: Curve
    d: int
    q: Tuple[int, int]


def ecdsa_generate(curve_name: str, seed: bytes = b"ecdsa-seed") -> EcdsaKeyPair:
    """Deterministic key generation from ``seed``."""
    curve = get_curve(curve_name)
    drbg = HmacDrbg(seed + curve.name.encode())
    d = drbg.randrange(1, curve.n)
    q = curve.multiply(d, curve.generator)
    assert q is not None
    return EcdsaKeyPair(curve, d, q)


def _truncated_digest(curve: Curve, message: bytes, hash_name: str) -> int:
    """Hash the message and truncate to the curve order's bit length."""
    h = bytes_to_int(hash_digest(hash_name, message))
    # FIPS 186-4 truncates by digest bit-length vs n bit-length:
    digest_bits = len(hash_digest(hash_name, b"")) * 8
    shift = max(0, digest_bits - curve.bits)
    return h >> shift if shift else h


def _deterministic_nonce(key: EcdsaKeyPair, message: bytes,
                         hash_name: str) -> int:
    """RFC 6979-flavoured nonce: HMAC-DRBG seeded with (d, H(m))."""
    seed = (
        int_to_bytes(key.d, key.curve.byte_length)
        + hash_digest(hash_name, message)
    )
    drbg = HmacDrbg(seed, "sha256")
    return drbg.randrange(1, key.curve.n)


def ecdsa_sign(key: EcdsaKeyPair, message: bytes,
               hash_name: str = "sha256") -> Tuple[int, int]:
    """Sign ``message``; returns ``(r, s)``."""
    curve = key.curve
    z = _truncated_digest(curve, message, hash_name)
    k = _deterministic_nonce(key, message, hash_name)
    attempt = 0
    while True:
        point = curve.multiply(k, curve.generator)
        if point is not None:
            r = point[0] % curve.n
            if r != 0:
                s = (modinv(k, curve.n) * (z + r * key.d)) % curve.n
                if s != 0:
                    return (r, s)
        # Astronomically unlikely; re-derive a fresh nonce deterministically.
        attempt += 1
        k = (k + attempt) % curve.n or 1
        if attempt > 8:  # pragma: no cover - defensive
            raise SignatureError("could not produce a valid nonce")


def ecdsa_verify(curve_or_key, q_or_message, *rest,
                 hash_name: str = "sha256") -> bool:
    """Verify an ECDSA signature.

    Two call shapes are accepted::

        ecdsa_verify(keypair, message, (r, s))
        ecdsa_verify(curve, q, message, (r, s))
    """
    if isinstance(curve_or_key, EcdsaKeyPair):
        curve = curve_or_key.curve
        q = curve_or_key.q
        message = q_or_message
        (signature,) = rest
    else:
        curve = curve_or_key
        q = q_or_message
        message, signature = rest
    r, s = signature
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        return False
    if not curve.is_on_curve(q):
        return False
    z = _truncated_digest(curve, message, hash_name)
    w = modinv(s, curve.n)
    u1 = (z * w) % curve.n
    u2 = (r * w) % curve.n
    point = curve.add(
        curve.multiply(u1, curve.generator), curve.multiply(u2, q)
    )
    if point is None:
        return False
    return point[0] % curve.n == r
