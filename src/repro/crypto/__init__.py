"""Cryptographic substrate.

Everything Figure 2 of the paper measures is implemented functionally:

* :mod:`repro.crypto.hashes` -- SHA-256, SHA-512, BLAKE2b, BLAKE2s
  behind one registry;
* :mod:`repro.crypto.hmac` -- HMAC (RFC 2104) from scratch;
* :mod:`repro.crypto.drbg` -- deterministic HMAC-DRBG, the package's
  seeded randomness source (SMARM permutations, nonces, key material);
* :mod:`repro.crypto.modmath` -- modular arithmetic and primality;
* :mod:`repro.crypto.rsa` -- RSA key generation, PKCS#1 v1.5-style
  signatures with CRT acceleration;
* :mod:`repro.crypto.ecdsa` -- short-Weierstrass ECDSA over
  secp160r1 / secp224r1 / secp256r1 with deterministic nonces;
* :mod:`repro.crypto.timing` -- the calibrated ODROID-XU4 cost model
  that turns byte counts into simulated seconds (Figure 2's curves).
"""

from repro.crypto.hashes import HASH_ALGORITHMS, digest, hash_new
from repro.crypto.hmac import Hmac, hmac_digest
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, rsa_generate, rsa_sign, rsa_verify
from repro.crypto.ecdsa import (
    CURVES,
    EcdsaKeyPair,
    ecdsa_generate,
    ecdsa_sign,
    ecdsa_verify,
)
from repro.crypto.timing import OdroidXU4Model, TimingModel

__all__ = [
    "HASH_ALGORITHMS",
    "digest",
    "hash_new",
    "Hmac",
    "hmac_digest",
    "HmacDrbg",
    "RsaKeyPair",
    "rsa_generate",
    "rsa_sign",
    "rsa_verify",
    "CURVES",
    "EcdsaKeyPair",
    "ecdsa_generate",
    "ecdsa_sign",
    "ecdsa_verify",
    "OdroidXU4Model",
    "TimingModel",
]
