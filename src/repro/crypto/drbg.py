"""Deterministic random bit generator (HMAC-DRBG, SP 800-90A profile).

Reproducibility is a design requirement: SMARM's secret measurement
order, SeED's pseudorandom trigger schedule, nonce generation and key
generation must all be replayable from a seed -- both so experiments
are deterministic and because SMARM/SeED *derive* their secrets from
keyed PRFs in exactly this way (the verifier must be able to recompute
the prover's permutation / schedule from the shared key).

This is the SP 800-90A HMAC-DRBG update/generate core without the
reseed-counter ceremony (no prediction-resistance requests in a
simulation).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from repro.crypto.hmac import Hmac
from repro.errors import ParameterError

T = TypeVar("T")


class HmacDrbg:
    """HMAC-DRBG over a registered hash algorithm.

    >>> drbg = HmacDrbg(b"seed material")
    >>> a = drbg.generate(16)
    >>> HmacDrbg(b"seed material").generate(16) == a
    True
    """

    def __init__(self, seed: bytes, algorithm: str = "sha256") -> None:
        self.algorithm = algorithm
        digest_size = Hmac(b"\x00", algorithm).digest_size
        self._key = b"\x00" * digest_size
        self._value = b"\x01" * digest_size
        self._update(seed)
        self.bytes_generated = 0

    # -- core ------------------------------------------------------------

    def _hmac(self, key: bytes, *chunks: bytes) -> bytes:
        mac = Hmac(key, self.algorithm)
        for chunk in chunks:
            mac.update(chunk)
        return mac.digest()

    def _update(self, provided: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value, b"\x00", provided)
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value, b"\x01", provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix new seed material into the state."""
        self._update(entropy)

    def generate(self, num_bytes: int) -> bytes:
        """The next ``num_bytes`` of the deterministic stream."""
        if num_bytes < 0:
            raise ParameterError("num_bytes must be non-negative")
        output = bytearray()
        while len(output) < num_bytes:
            self._value = self._hmac(self._key, self._value)
            output.extend(self._value)
        self._update()
        self.bytes_generated += num_bytes
        return bytes(output[:num_bytes])

    # -- convenience samplers -----------------------------------------------

    def randint_bits(self, bits: int) -> int:
        """A uniform integer in ``[0, 2**bits)``."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        num_bytes = (bits + 7) // 8
        value = int.from_bytes(self.generate(num_bytes), "big")
        return value >> (num_bytes * 8 - bits)

    def randbelow(self, upper: int) -> int:
        """A uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ParameterError("upper must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.randint_bits(bits)
            if candidate < upper:
                return candidate

    def randrange(self, lower: int, upper: int) -> int:
        """A uniform integer in ``[lower, upper)``."""
        if lower >= upper:
            raise ParameterError("empty range")
        return lower + self.randbelow(upper - lower)

    def uniform(self) -> float:
        """A float in ``[0, 1)`` with 53 bits of precision."""
        return self.randint_bits(53) / (1 << 53)

    def shuffle(self, items: List[T]) -> List[T]:
        """In-place Fisher-Yates shuffle; returns the list for chaining."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]
        return items

    def permutation(self, n: int) -> List[int]:
        """A uniform permutation of ``range(n)`` -- SMARM's secret order."""
        return self.shuffle(list(range(n)))

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ParameterError("cannot choose from an empty sequence")
        return items[self.randbelow(len(items))]

    def exponential(self, mean: float) -> float:
        """An exponential variate (Poisson-process gaps for SeED triggers)."""
        import math

        if mean <= 0:
            raise ParameterError("mean must be positive")
        u = self.uniform()
        # Guard the log: uniform() may return exactly 0.0.
        return -mean * math.log(1.0 - u)
