"""ERASMUS: periodic self-measurement with occasional collection.

ERASMUS [6] decouples the two halves of Quality of Attestation
(Section 3.3, Figure 5):

* the prover measures *itself* every ``T_M`` seconds and stores the
  results locally;
* the verifier occasionally (every ``T_C``) collects and verifies the
  stored measurements.

Measurements can therefore be frequent without verifier involvement --
the window of opportunity for transient malware is ``T_M``, not
``T_C`` -- and the measurement schedule can be made context-aware so
it never collides with the safety-critical application (the paper's
compromise (2); see :mod:`repro.core.scheduler_policy`).

:class:`ErasmusService` is the prover side (scheduler + history);
:class:`CollectorVerifier` is the verifier side; a
:class:`CollectionResult` reports per-record verdicts so infection
windows can be localized in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.obs.tracectx import TraceContext
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import (
    AttestationReport,
    MeasurementRecord,
    Verdict,
    VerificationResult,
)
from repro.ra.service import listen, send_report
from repro.ra.verifier import Verifier
from repro.resilience.retry import RetryPolicy
from repro.sim.device import Device
from repro.sim.network import Channel, Message
from repro.sim.process import Process, Sleep


class ErasmusService:
    """Prover-side self-measurement.

    Parameters
    ----------
    device:
        The prover.
    period:
        ``T_M``, seconds between self-measurements.
    config:
        Measurement configuration; ERASMUS measurements are
        interruptible by default (compromise (1) of Section 3.3:
        the application may preempt MP, which is then simply resumed).
    history_size:
        Ring-buffer capacity for stored measurements.
    scheduler:
        Optional context-aware policy: callable
        ``scheduler(device, nominal_time, index) -> float`` returning
        the (possibly deferred) actual start time.
    on_demand:
        ERASMUS "can easily be coupled with on-demand attestation ...
        measurements can be made on Prv based on a schedule *as well
        as* when receiving a query by Vrf": when True, the service
        also answers ``att_request`` challenges with a fresh
        challenge-bound measurement (maximum freshness), which is
        stored into the history like any scheduled one.
    """

    def __init__(
        self,
        device: Device,
        period: float,
        config: Optional[MeasurementConfig] = None,
        history_size: int = 64,
        scheduler: Optional[Callable[[Device, float, int], float]] = None,
        priority: int = 40,
        on_demand: bool = False,
    ) -> None:
        if period <= 0:
            raise ConfigurationError("T_M must be positive")
        self.device = device
        self.period = period
        self.config = config if config is not None else MeasurementConfig(
            algorithm="blake2s", order="sequential", atomic=False,
            priority=priority,
        )
        self.history_size = history_size
        self.scheduler = scheduler
        self.on_demand = on_demand
        self.history: List[MeasurementRecord] = []
        self.dropped_records = 0
        self.measurements_done = 0
        self.on_demand_served = 0
        self._counter = 0
        self._sent = 0
        self._index = 0
        self._hooked = False
        self.process: Optional[Process] = None
        self._od_pending: List[Message] = []

    # -- lifecycle --------------------------------------------------------

    def start(self) -> Process:
        """Begin the self-measurement schedule; also start answering
        collection requests if a NIC is attached.  Registers a reset
        hook: a brownout kills the loop process and wipes the NIC
        listeners, so both are reinstalled from "ROM" afterwards."""
        if not self._hooked:
            self.device.add_reset_hook(self._on_reset)
            self._hooked = True
        return self._activate()

    def _activate(self) -> Process:
        self.process = self.device.cpu.spawn(
            f"{self.device.name}.erasmus",
            self._measure_loop,
            priority=self.config.priority,
        )
        if self.device.nic is not None:
            listen(self.device.nic, self._on_message,
                   kinds=frozenset({"collect_request"}))
            if self.on_demand:
                listen(self.device.nic, self._on_challenge,
                       kinds=frozenset({"att_request"}))
        return self.process

    def _on_reset(self) -> None:
        """Brownout: the history ring lives in RAM and survives; the
        loop process and listeners do not.  Come back up mid-schedule
        (an interrupted measurement is simply redone at its slot)."""
        self.device.trace.record(
            self.device.sim.now, "erasmus.reboot", self.device.name
        )
        self._activate()

    def _measure_loop(self, proc: Process):
        device = self.device
        sim = device.sim
        while True:
            index = self._index
            nominal = index * self.period
            start_at = nominal
            if self.scheduler is not None:
                start_at = max(nominal, self.scheduler(device, nominal, index))
            if sim.now < start_at:
                yield Sleep(start_at - sim.now)
            self._counter += 1
            nonce = b"self" + self._counter.to_bytes(8, "big")
            mp = MeasurementProcess(
                device, self.config, nonce=nonce, counter=self._counter,
                mechanism="erasmus",
            )
            # Run in-line: the service process *is* the measurement
            # process (one self-measurement at a time by construction).
            yield from mp.run(proc)
            self._store(mp.record)
            self.measurements_done += 1
            self._index += 1

    def _on_challenge(self, message: Message) -> None:
        """On-demand coupling: answer a Vrf challenge with a fresh,
        challenge-bound measurement (maximum freshness), stored into
        the history alongside the scheduled ones."""
        payload = message.payload or {}
        nonce = payload.get("nonce", b"")
        self._counter += 1
        counter = self._counter
        device = self.device
        mp = MeasurementProcess(
            device, self.config, nonce=nonce, counter=counter,
            mechanism="erasmus-od", ctx=message.ctx,
        )
        proc = device.cpu.spawn(
            f"{device.name}.erasmus-od.{counter}",
            mp.run,
            priority=self.config.priority,
        )

        def reply(_record, mp=mp, counter=counter,
                  src=message.src, ctx=message.ctx) -> None:
            self._store(mp.record)
            self.on_demand_served += 1
            report = AttestationReport.authenticate(
                device.attestation_key, device.name, [mp.record],
                sent_counter=counter,
            )
            send_report(device.nic, src, report, ctx=ctx)

        proc.done_signal.wait(reply)

    def _store(self, record: MeasurementRecord) -> None:
        self.history.append(record)
        obs = self.device.obs
        if obs.enabled:
            obs.metrics.counter(
                "erasmus.measurements.stored",
                "self-measurements appended to the history ring",
            ).inc()
        if len(self.history) > self.history_size:
            self.history.pop(0)
            self.dropped_records += 1
            if obs.enabled:
                obs.metrics.counter(
                    "erasmus.records.dropped",
                    "history-ring evictions before collection",
                ).inc()

    # -- collection ------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.kind != "collect_request":
            return
        # Collection is cheap (read + MAC over stored digests); answer
        # immediately from the event context, like a NIC-driven DMA reply.
        payload = message.payload or {}
        self._sent += 1
        report = AttestationReport.authenticate(
            self.device.attestation_key,
            self.device.name,
            list(self.history),
            sent_counter=self._sent,
        )
        self.device.nic.send(
            message.src,
            "collect_reply",
            {"report": report, "nonce": payload.get("nonce", b"")},
            ctx=message.ctx,
        )
        self.device.trace.record(
            self.device.sim.now, "erasmus.collect", self.device.name,
            records=len(self.history),
        )


@dataclass
class CollectionResult:
    """Outcome of one ERASMUS collection."""

    device: str
    collected_at: float
    result: VerificationResult
    records: List[MeasurementRecord] = field(default_factory=list)
    #: the raw authenticated report, kept for replay experiments
    report: Optional[AttestationReport] = None

    @property
    def dirty_intervals(self) -> List[tuple]:
        """(t_start, t_end) of each measurement that diverged -- the
        verifier's localization of when the prover was compromised."""
        out = []
        for record, verdict in zip(
            self.records, self.result.record_verdicts
        ):
            if verdict is not Verdict.HEALTHY:
                out.append((record.t_start, record.t_end))
        return out

    def cadence_gaps(self, period: float,
                     tolerance: float = 1.8) -> List[tuple]:
        """Suspicious holes in the self-measurement schedule.

        Malware cannot forge stored records (no key access), but it
        *can delete* them to hide the window in which it was resident.
        The verifier knows T_M, so any two consecutive records more
        than ``tolerance * period`` apart -- beyond scheduling jitter
        from context-aware deferral -- expose exactly the hole.

        Returns (gap_start, gap_end) pairs, including a trailing gap
        if the newest record is older than ``tolerance * period``
        before the collection instant.
        """
        gaps = []
        times = sorted(record.t_end for record in self.records)
        for earlier, later in zip(times, times[1:]):
            if later - earlier > tolerance * period:
                gaps.append((earlier, later))
        if times and self.collected_at - times[-1] > tolerance * period:
            gaps.append((times[-1], self.collected_at))
        return gaps


@dataclass
class _PendingCollection:
    """Book-keeping for one outstanding collect_request."""

    device: str
    on_result: Optional[Callable[[CollectionResult], None]]
    requested_at: float
    attempts: int = 1
    drbg: Optional[object] = None
    timeout: Optional[object] = None
    ctx: Optional[TraceContext] = None


class CollectorVerifier:
    """Verifier-side collection driver (defines ``T_C`` when polled
    periodically; see the QoA benchmarks).

    With ``retry=None`` (the default) a lost ``collect_reply`` is
    silently never noticed -- the classic behavior, and zero extra
    simulator events.  Passing a :class:`RetryPolicy` arms missed-report
    detection: an unanswered collection is counted as missed and the
    *same-nonce* request is retransmitted with exponential backoff (the
    prover is stateless per collection, so catch-up simply serves the
    current history)."""

    def __init__(
        self,
        verifier: Verifier,
        channel: Channel,
        endpoint_name: str = "vrf",
        verify_latency: float = 1e-3,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.verifier = verifier
        self.channel = channel
        self.endpoint = channel.make_endpoint(endpoint_name)
        self.verify_latency = verify_latency
        self.retry = retry
        self.collections: List[CollectionResult] = []
        self.missed = 0  # collections abandoned after the retry budget
        self._nonce_counter = 0
        self._outstanding = {}
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"collect_reply"}))

    def collect(self, device_name: str,
                on_result: Optional[Callable[[CollectionResult], None]] = None
                ) -> None:
        """Ask ``device_name`` for its stored measurements."""
        self._nonce_counter += 1
        nonce = b"collect" + self._nonce_counter.to_bytes(8, "big")
        pending = _PendingCollection(
            device=device_name,
            on_result=on_result,
            requested_at=self.verifier.sim.now,
            ctx=(
                TraceContext.mint("erasmus", device_name, nonce)
                if self.verifier.sim.obs.enabled else None
            ),
        )
        if self.retry is not None:
            pending.drbg = self.retry.drbg_for(nonce)
        self._outstanding[nonce] = pending
        self._transmit(nonce, pending)

    def _transmit(self, nonce: bytes, pending: _PendingCollection) -> None:
        self.endpoint.send(
            pending.device, "collect_request", {"nonce": nonce},
            ctx=pending.ctx,
        )
        if self.retry is not None:
            wait = self.retry.wait_before(pending.attempts, pending.drbg)
            pending.timeout = self.verifier.sim.schedule(
                wait, self._on_timeout, nonce
            )

    def _on_timeout(self, nonce: bytes) -> None:
        pending = self._outstanding.get(nonce)
        if pending is None:
            return  # reply arrived meanwhile
        pending.timeout = None
        obs = self.verifier.sim.obs
        if pending.attempts >= self.retry.max_attempts:
            del self._outstanding[nonce]
            self.missed += 1
            if obs.enabled:
                obs.metrics.counter(
                    "erasmus.collections.missed",
                    "collections abandoned after the retry budget",
                ).inc()
                obs.metrics.counter(
                    "ra.timeouts.total",
                    "attestation exchanges abandoned after the retry budget",
                ).inc()
            if pending.on_result is not None:
                pending.on_result(None)
            return
        pending.attempts += 1
        if obs.enabled:
            obs.metrics.counter(
                "ra.retries.total", "attestation challenge retransmissions",
            ).inc()
        self._transmit(nonce, pending)

    def collect_every(self, device_name: str, period: float,
                      count: int) -> None:
        """Schedule ``count`` collections spaced ``period`` apart (T_C)."""
        for index in range(count):
            self.verifier.sim.schedule(
                (index + 1) * period, self.collect, device_name
            )

    def _on_message(self, message: Message) -> None:
        if message.kind != "collect_reply":
            return
        payload = message.payload
        nonce = payload.get("nonce", b"")
        pending = self._outstanding.pop(nonce, None)
        if pending is None:
            return  # stale, replayed, or duplicate collection reply
        if pending.timeout is not None:
            pending.timeout.cancel()
            pending.timeout = None
        report: AttestationReport = payload["report"]
        self.verifier.sim.schedule(
            self.verify_latency, self._finish, report, pending.on_result,
            pending.requested_at, pending.ctx,
        )

    def _finish(self, report: AttestationReport, on_result,
                requested_at: float,
                ctx: Optional[TraceContext] = None) -> None:
        result = self.verifier.verify_report(
            report, enforce_counter=True, counter_stream="erasmus-collect"
        )
        collection = CollectionResult(
            device=report.device,
            collected_at=self.verifier.sim.now,
            result=result,
            records=list(report.records),
            report=report,
        )
        self.collections.append(collection)
        obs = self.verifier.sim.obs
        if obs.enabled:
            now = self.verifier.sim.now
            span_args = dict(
                device=report.device, records=len(report.records),
            )
            if ctx is not None:
                span_args["trace_id"] = ctx.trace_id
            obs.spans.add_span(
                "erasmus.collection", requested_at, now,
                category="ra.verifier", **span_args,
            )
            obs.metrics.counter(
                "erasmus.collections", "completed collection round trips",
            ).inc()
            obs.metrics.histogram(
                "erasmus.collection.latency",
                "collect request to verdict (sim s)",
            ).observe(
                now - requested_at,
                exemplar=ctx.trace_id if ctx is not None else None,
            )
        if on_result is not None:
            on_result(collection)


#: the ERASMUS collection counter stream (one monotonic sequence per
#: prover, independent of SeED pushes on the same device)
COLLECT_STREAM = "erasmus-collect"


def verify_collections_batch(verifier, reports):
    """Epoch-batch verify ERASMUS collection replies.

    The served-verifier entry point: all same-epoch collection reports
    share one expected-digest precomputation pass
    (:meth:`~repro.ra.verifier.Verifier.verify_batch`), with the
    per-report counter-replay defense applied in arrival order exactly
    as :class:`CollectorVerifier` does one report at a time.
    """
    return verifier.verify_batch(
        [
            (
                report,
                {"enforce_counter": True, "counter_stream": COLLECT_STREAM},
            )
            for report in reports
        ]
    )
