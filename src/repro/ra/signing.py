"""Report signing: the Section 2.4 non-repudiation option.

MACs are cheap but deniable (verifier and prover share the key);
"if non-repudiation or strong origin authentication is required,
signatures are justified".  This module packages the from-scratch RSA
and ECDSA implementations behind a scheme-name interface matching
Figure 2's labels (``rsa1024`` ... ``ecdsa256``), with a clean
public/private split so the verifier never holds signing material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    ecdsa_generate,
    ecdsa_sign,
    ecdsa_verify,
    get_curve,
)
from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPublicKey,
    rsa_generate,
    rsa_sign,
    rsa_verify,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SigningIdentity:
    """A prover's signing credential (private half included)."""

    scheme: str
    keypair: Union[RsaKeyPair, EcdsaKeyPair]

    def public(self) -> "PublicIdentity":
        if isinstance(self.keypair, RsaKeyPair):
            return PublicIdentity(self.scheme, self.keypair.public)
        return PublicIdentity(
            self.scheme, (self.keypair.curve.name, self.keypair.q)
        )


@dataclass(frozen=True)
class PublicIdentity:
    """What the verifier stores: scheme plus public material only."""

    scheme: str
    material: Union[RsaPublicKey, Tuple[str, Tuple[int, int]]]


def make_signing_identity(scheme: str, seed: bytes) -> SigningIdentity:
    """Deterministically derive a signing key pair for ``scheme``.

    ``scheme`` is one of Figure 2's names: ``rsa1024`` / ``rsa2048`` /
    ``rsa4096`` / ``ecdsa160`` / ``ecdsa224`` / ``ecdsa256``.
    """
    if scheme.startswith("rsa"):
        bits = int(scheme[3:])
        return SigningIdentity(scheme, rsa_generate(bits, seed=seed))
    if scheme.startswith("ecdsa"):
        return SigningIdentity(scheme, ecdsa_generate(scheme, seed=seed))
    raise ConfigurationError(f"unknown signature scheme {scheme!r}")


def sign_data(identity: SigningIdentity, data: bytes) -> bytes:
    """Sign ``data``; ECDSA (r, s) is serialized fixed-width."""
    keypair = identity.keypair
    if isinstance(keypair, RsaKeyPair):
        return rsa_sign(keypair.private, data)
    r, s = ecdsa_sign(keypair, data)
    width = keypair.curve.byte_length
    return r.to_bytes(width, "big") + s.to_bytes(width, "big")


def verify_data(public: PublicIdentity, data: bytes,
                signature: bytes) -> bool:
    """Verify ``signature`` over ``data`` with public material only."""
    if isinstance(public.material, RsaPublicKey):
        return rsa_verify(public.material, data, signature)
    curve_name, q = public.material
    curve = get_curve(curve_name)
    width = curve.byte_length
    if len(signature) != 2 * width:
        return False
    r = int.from_bytes(signature[:width], "big")
    s = int.from_bytes(signature[width:], "big")
    return ecdsa_verify(curve, q, data, (r, s))
