"""SMART-style atomic on-demand attestation -- the baseline.

SMART [12] runs MP uninterruptibly: interrupts are disabled as the
first step, the whole of M is measured sequentially, and only then is
control returned.  This gives (coincidental) temporal consistency and
defeats both self-relocating and transient malware *that is resident
when MP starts* -- at the price of blocking every other task for the
entire measurement, which Section 2.5's fire-alarm scenario shows can
be disastrous.

:class:`SmartAttestation` is a thin configuration of the shared
:class:`~repro.ra.service.AttestationService`:

* ``atomic=True`` -- the measurement masks interrupts;
* sequential traversal, no locking (the atomic section *is* the lock);
* highest priority (HYDRA's implementation detail: the attestation
  process out-prioritizes everything, on top of atomicity).

The optional ``signature`` argument switches report authentication
from HMAC to a real digital signature (RSA or ECDSA from
:mod:`repro.crypto`), matching Section 2.4's discussion of
non-repudiation; the signing cost is charged to the prover CPU.
"""

from __future__ import annotations

from typing import Optional

from repro.ra.measurement import MeasurementConfig
from repro.ra.service import AttestationService
from repro.ra.signing import SigningIdentity, make_signing_identity
from repro.sim.device import Device

#: priority above any application task: the HYDRA convention
MP_PRIORITY = 1000


class SmartAttestation(AttestationService):
    """Atomic, sequential, uninterruptible on-demand RA."""

    def __init__(
        self,
        device: Device,
        algorithm: str = "blake2s",
        signature: Optional[str] = None,
    ) -> None:
        config = MeasurementConfig(
            algorithm=algorithm,
            order="sequential",
            atomic=True,
            locking=None,
            priority=MP_PRIORITY,
        )
        super().__init__(device, config, mechanism="smart")
        self.signature = signature
        if signature is not None:
            seed = f"prv-key:{device.name}:{signature}".encode()
            self.signer = make_signing_identity(signature, seed)

    @property
    def signing_identity(self) -> Optional[SigningIdentity]:
        """The prover's signing credential (None when MAC-only)."""
        return self.signer
