"""Measurement records, attestation reports, verification results.

A :class:`MeasurementRecord` is the outcome of one run of the
measurement process MP: the keyed digest over the traversed memory plus
the protocol metadata the verifier needs to recompute the expected
value (nonce, traversal-order seed, counter).  An
:class:`AttestationReport` wraps one or more records (ERASMUS
collection returns many) and authenticates them with an HMAC under the
shared attestation key, or optionally a digital signature.

Records also carry *audit* fields -- per-block snapshot times and
truncated content hashes -- that exist only for the simulation's
consistency analysis (Figure 4).  They are excluded from the
authenticated serialization, because a real prover would not ship
them.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.hmac import constant_time_equal, hmac_digest
from repro.errors import VerificationError
# Re-exported: measurement.py and downstream tooling import the audit
# hash helpers from the report layer, not from sim.memory directly.
from repro.sim.memory import FINGERPRINT_LEN as AUDIT_HASH_LEN  # noqa: F401
from repro.sim.memory import content_fingerprint as audit_hash  # noqa: F401


@dataclass(frozen=True)
class MeasurementRecord:
    """One completed measurement of prover memory."""

    device: str
    mechanism: str
    algorithm: str
    nonce: bytes
    counter: int
    digest: bytes
    t_start: float
    t_end: float
    block_count: int
    order_seed: bytes = b""
    #: named region measured ("" = all of M); TyTAN measures per process
    region: str = ""
    #: True when mutable (data) regions contributed zeros to the digest
    #: -- Section 2.3's "Prv can easily zero it out before executing MP"
    normalized: bool = False
    #: Section 2.3's alternative: a verbatim, *authenticated* copy of
    #: the mutable region's measured contents, shipped with the report
    #: so the verifier can reproduce the digest ("accompanied by a copy
    #: of D"); empty unless the measurement used ``attach_mutable``
    data_copy: Tuple[Tuple[int, bytes], ...] = ()
    #: when the lock (if any) was finally released; None = no hold
    t_release: Optional[float] = None
    #: how many times MP lost the CPU during this measurement
    interruptions: int = 0
    #: audit-only: time each block was snapshotted, indexed by block id
    audit_block_times: Tuple[float, ...] = ()
    #: audit-only: truncated hash of each measured block, by block id
    audit_block_hashes: Tuple[bytes, ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization of the authenticated fields."""
        head = "|".join(
            (self.device, self.mechanism, self.algorithm, self.region)
        ).encode() + (b"\x01" if self.normalized else b"\x00")
        times = struct.pack(">dd", self.t_start, self.t_end)
        attached = b"".join(
            struct.pack(">I", index) + content
            for index, content in self.data_copy
        )
        return b"|".join(
            (
                head,
                self.nonce,
                struct.pack(">QI", self.counter, self.block_count),
                self.digest,
                self.order_seed,
                times,
                attached,
            )
        )


class Verdict(enum.Enum):
    """Outcome of verifying one record or report."""

    HEALTHY = "healthy"
    COMPROMISED = "compromised"
    INVALID = "invalid"  # bad authentication / malformed
    REPLAY = "replay"
    MISSING = "missing"  # expected (SeED) report never arrived


@dataclass
class VerificationResult:
    """The verifier's conclusion about one report."""

    verdict: Verdict
    device: str
    verified_at: float
    detail: str = ""
    #: per-record verdicts for multi-record (ERASMUS) reports
    record_verdicts: List[Verdict] = field(default_factory=list)
    #: freshness: age of the newest measurement at verification time
    freshness: Optional[float] = None

    @property
    def healthy(self) -> bool:
        return self.verdict is Verdict.HEALTHY

    def __str__(self) -> str:
        base = f"{self.device}: {self.verdict.value} @ {self.verified_at:.3f}"
        return f"{base} ({self.detail})" if self.detail else base


@dataclass(frozen=True)
class AttestationReport:
    """Authenticated container of measurement records.

    ``auth_tag`` is an HMAC over all records' canonical bytes under the
    attestation key; :meth:`authenticate` builds it, :meth:`verify_tag`
    checks it.  When non-repudiation is required the same canonical
    bytes can instead be signed (see :mod:`repro.ra.smart`'s signature
    option), matching Section 2.4's MAC-vs-signature discussion.
    """

    device: str
    records: Tuple[MeasurementRecord, ...]
    auth_tag: bytes
    sent_counter: int = 0
    #: optional digital signature over the tag input (Section 2.4's
    #: non-repudiation option); empty for MAC-only reports
    signature: bytes = b""
    #: signature scheme name ("rsa2048", "ecdsa256", ...) or ""
    scheme: str = ""

    @staticmethod
    def _tag_input(device: str, records: Tuple[MeasurementRecord, ...],
                   sent_counter: int) -> bytes:
        body = b"\x1f".join(rec.canonical_bytes() for rec in records)
        return device.encode() + struct.pack(">Q", sent_counter) + body

    @classmethod
    def authenticate(
        cls,
        key: bytes,
        device: str,
        records: List[MeasurementRecord],
        sent_counter: int = 0,
        algorithm: str = "sha256",
    ) -> "AttestationReport":
        """Build a report with a fresh HMAC tag."""
        recs = tuple(records)
        tag = hmac_digest(
            key, cls._tag_input(device, recs, sent_counter), algorithm
        )
        return cls(device, recs, tag, sent_counter)

    def verify_tag(self, key: bytes, algorithm: str = "sha256") -> bool:
        expected = hmac_digest(
            key,
            self._tag_input(self.device, self.records, self.sent_counter),
            algorithm,
        )
        return constant_time_equal(expected, self.auth_tag)

    def signing_input(self) -> bytes:
        """The bytes a digital signature covers (same as the MAC)."""
        return self._tag_input(self.device, self.records,
                               self.sent_counter)

    def with_signature(self, signature: bytes,
                       scheme: str) -> "AttestationReport":
        """A copy of this report carrying a digital signature."""
        import dataclasses

        return dataclasses.replace(
            self, signature=signature, scheme=scheme
        )

    @property
    def newest(self) -> MeasurementRecord:
        if not self.records:
            raise VerificationError("empty report")
        return max(self.records, key=lambda r: r.t_end)

    def __len__(self) -> int:
        return len(self.records)
