"""Memory-locking consistency mechanisms (Section 3.1, after [5]).

A locking policy decides *when* each attested block is read-only
relative to the measurement timeline of Figure 4:

====================  =============================================
``No-Lock``           never locks; no consistency guarantee
``All-Lock``          everything locked in [t_s, t_e]; consistent
                      with M throughout [t_s, t_e]
``All-Lock-Ext``      everything locked in [t_s, t_r]; adds the
                      "prover is in this state *now*" guarantee
``Dec-Lock``          all locked at t_s, each block released once
                      measured; consistent with M **at t_s**
``Inc-Lock``          each block locked when measured, all released
                      at t_e; consistent with M **at t_e**
``Inc-Lock-Ext``      Inc-Lock, released at t_r instead of t_e
====================  =============================================

Policies drive the simulated MPU; each mutation returns the number of
MPU operations performed so the measurement engine can charge the
syscall time (HYDRA implements these as seL4 capability operations).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.device import Device


class LockingPolicy:
    """Base class: the do-nothing (No-Lock) behaviour.

    Subclasses override the hook methods; each hook returns the number
    of MPU lock/unlock operations it performed (0 for no-ops).

    A policy instance is single-use per measurement: :meth:`reset` is
    called by the measurement engine at t_s.
    """

    #: canonical mechanism name, overridden by subclasses
    name = "no-lock"
    #: whether the digest is consistent with full-memory states, and when
    consistency = "none"
    #: does the policy keep a lock after t_e (needs an explicit release)?
    holds_after_end = False

    def __init__(self) -> None:
        self.device: Optional[Device] = None
        self.order: Sequence[int] = ()
        self._hold_start: Optional[float] = None

    def reset(self, device: Device, order: Sequence[int]) -> None:
        """Bind to a device and traversal order at measurement start."""
        self.device = device
        self.order = list(order)
        self._hold_start = None

    # -- observability ---------------------------------------------------

    def _mark_hold_start(self) -> None:
        """Stamp the moment this policy first takes a lock."""
        if self.device is not None and self._hold_start is None:
            self._hold_start = self.device.sim.now

    def _record_hold_end(self, blocks: int) -> None:
        """Record the completed lock-hold window as a span.

        Retrospective (``add_span``) because the release may fire in a
        different callback than the acquisition -- the extended
        policies release from a t_r timer.
        """
        device = self.device
        if device is None or self._hold_start is None:
            return
        obs = device.obs
        if obs.enabled:
            now = device.sim.now
            obs.spans.add_span(
                "ra.lock_hold", self._hold_start, now,
                category="ra.locking", policy=self.name, blocks=blocks,
            )
            obs.metrics.histogram(
                "ra.lock_hold.duration",
                "time attested memory stayed locked (sim s)",
                policy=self.name,
            ).observe(now - self._hold_start)
        self._hold_start = None

    # -- hooks (all return MPU op counts) -------------------------------

    def on_start(self) -> int:
        """Called at t_s, before the first block is read."""
        return 0

    def before_block(self, block_index: int) -> int:
        """Called immediately before a block is snapshotted."""
        return 0

    def after_block(self, block_index: int) -> int:
        """Called after a block's hash contribution is computed."""
        return 0

    def on_end(self) -> int:
        """Called at t_e, after the last block."""
        return 0

    def on_release(self) -> int:
        """Called at t_r for extended policies (no-op otherwise)."""
        return 0

    # -- cleanup ------------------------------------------------------------

    def abort(self) -> None:
        """Unlock everything this policy still holds (error recovery)."""
        if self.device is None:
            return
        mpu = self.device.mpu
        for block_index in mpu.locked_blocks():
            mpu.unlock(block_index)


class NoLock(LockingPolicy):
    """The strawman: memory is never locked (TrustLite-style)."""

    name = "no-lock"
    consistency = "none"


class AllLock(LockingPolicy):
    """Lock all of M for the whole measurement.

    ``extended=True`` gives All-Lock-Ext: the lock is held past t_e
    until an explicit release at t_r.
    """

    def __init__(self, extended: bool = False) -> None:
        super().__init__()
        self.extended = extended
        self.name = "all-lock-ext" if extended else "all-lock"
        self.consistency = (
            "interval [t_s, t_r]" if extended else "interval [t_s, t_e]"
        )
        self.holds_after_end = extended

    def on_start(self) -> int:
        self.device.mpu.lock_all()
        self._mark_hold_start()
        return self.device.block_count

    def on_end(self) -> int:
        if self.extended:
            return 0
        self.device.mpu.unlock_all()
        self._record_hold_end(self.device.block_count)
        return self.device.block_count

    def on_release(self) -> int:
        if not self.extended:
            return 0
        self.device.mpu.unlock_all()
        self._record_hold_end(self.device.block_count)
        return self.device.block_count


class DecLock(LockingPolicy):
    """Decreasing Lock: all locked at t_s, released block by block.

    The measurement is consistent with M exactly at t_s, so anything
    resident at t_s -- including transient malware that would like to
    erase itself -- is captured (Section 3.1.2).
    """

    name = "dec-lock"
    consistency = "instant t_s"
    _released = 0

    def reset(self, device: Device, order: Sequence[int]) -> None:
        super().reset(device, order)
        self._released = 0

    def on_start(self) -> int:
        self.device.mpu.lock_all()
        self._mark_hold_start()
        return self.device.block_count

    def after_block(self, block_index: int) -> int:
        self.device.mpu.unlock(block_index)
        self._released += 1
        if self._released == len(self.order):
            # The last measured block just unlocked; blocks outside a
            # region-restricted traversal stay locked until abort().
            self._record_hold_end(self.device.block_count)
        return 1


class IncLock(LockingPolicy):
    """Increasing Lock: each block locked as it is measured.

    All of M is locked only at t_e; the measurement is consistent with
    M exactly at t_e.  Self-relocating malware cannot outrun the lock
    front (it would have to write into a measured-and-locked block),
    but transient malware can still erase itself from a not-yet-locked
    block (Section 3.1.2).

    ``extended=True`` (Inc-Lock-Ext) holds the full lock until t_r.
    """

    def __init__(self, extended: bool = False) -> None:
        super().__init__()
        self.extended = extended
        self.name = "inc-lock-ext" if extended else "inc-lock"
        self.consistency = (
            "interval [t_e, t_r]" if extended else "instant t_e"
        )
        self.holds_after_end = extended

    def before_block(self, block_index: int) -> int:
        self.device.mpu.lock(block_index)
        self._mark_hold_start()
        return 1

    def on_end(self) -> int:
        if self.extended:
            return 0
        self.device.mpu.unlock_all()
        self._record_hold_end(len(self.order))
        return self.device.block_count

    def on_release(self) -> int:
        if not self.extended:
            return 0
        self.device.mpu.unlock_all()
        self._record_hold_end(len(self.order))
        return self.device.block_count


_POLICY_FACTORIES = {
    "no-lock": lambda: NoLock(),
    "all-lock": lambda: AllLock(extended=False),
    "all-lock-ext": lambda: AllLock(extended=True),
    "dec-lock": lambda: DecLock(),
    "inc-lock": lambda: IncLock(extended=False),
    "inc-lock-ext": lambda: IncLock(extended=True),
}

POLICY_NAMES = tuple(_POLICY_FACTORIES)


def make_policy(name: str) -> LockingPolicy:
    """Instantiate a locking policy by its canonical name."""
    factory = _POLICY_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown locking policy {name!r}; known: {POLICY_NAMES}"
        )
    return factory()
