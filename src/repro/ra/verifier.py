"""The trusted verifier (Vrf).

Vrf keeps a database of registered provers: shared attestation key,
reference (benign) memory image and region layout.  For every incoming
record it recomputes the digest MP *should* have produced over the
reference image -- same nonce, same counter, same traversal order
(recomputable because the shuffled order is derived from the shared
key, Section 3.2) -- and compares.

Replay defenses follow the paper: on-demand reports must answer the
outstanding challenge nonce; prover-initiated (SeED) reports must carry
a strictly increasing monotonic counter (Section 3.3).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hmac import Hmac, constant_time_equal
from repro.errors import ConfigurationError
from repro.ra.measurement import expected_digest
from repro.ra.report import (
    AttestationReport,
    MeasurementRecord,
    Verdict,
    VerificationResult,
)
from repro.sim.engine import Simulator

#: deprecated-entry-point names already warned about (warn once per
#: process, not once per call -- shims stay quiet in loops)
_DEPRECATION_WARNED: set = set()


def _warn_deprecated(old: str) -> None:
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    warnings.warn(
        f"Verifier.{old} is deprecated; use Verifier.enroll(device, "
        f"*, signing=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class DeviceProfile:
    """Everything Vrf knows about one prover."""

    name: str
    key: bytes
    reference: Tuple[bytes, ...]
    region_map: Dict[str, List[int]] = field(default_factory=dict)
    #: blocks in mutable (data) regions, zeroed when records are
    #: normalized (Section 2.3)
    mutable_blocks: frozenset = frozenset()
    #: highest accepted monotonic counter, per report stream -- SeED
    #: pushes and ERASMUS collections each keep their own sequence
    last_counters: Dict[str, int] = field(default_factory=dict)
    #: public signing identity for non-repudiable reports (§2.4);
    #: None means MAC-only operation
    public_identity: Optional[object] = None
    outstanding_nonce: Optional[bytes] = None
    #: verification timing cost model hook (seconds per record verify)
    verify_cost: float = 0.0


@dataclass(frozen=True)
class VerifyCostModel:
    """Sim-time cost of verifying one report on the verifier host.

    ``per_report`` is the fixed overhead (parse + MAC + bookkeeping),
    ``per_record`` the marginal cost of each contained measurement
    record; a per-device surcharge comes from
    :attr:`DeviceProfile.verify_cost` (seconds per record).  The
    default model everywhere is ``None`` -- zero cost, instantaneous
    verdicts, byte-identical golden ledgers; services opt in via
    config (e.g. the ``smoke-cost`` preset).
    """

    per_report: float = 0.0
    per_record: float = 0.0

    def __post_init__(self) -> None:
        if self.per_report < 0 or self.per_record < 0:
            raise ConfigurationError("verify costs must be >= 0")


class Verifier:
    """Vrf: challenge generation, report verification, result history."""

    def __init__(self, sim: Simulator, name: str = "vrf",
                 nonce_seed: bytes = b"vrf-nonces", trace=None) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace
        self.devices: Dict[str, DeviceProfile] = {}
        self.results: List[VerificationResult] = []
        #: optional :class:`VerifyCostModel`; when set, callers that
        #: schedule verdict delivery (the served verifier, drivers)
        #: charge :meth:`verify_cost` sim-seconds per report
        self.cost_model: Optional[VerifyCostModel] = None
        self._nonce_drbg = HmacDrbg(nonce_seed)
        self._seen_nonces: Dict[str, set] = {}
        # lazily resolved instrument handles (see repro.sim.network.
        # Endpoint.deliver): one registry lookup per instrument instead
        # of one per verdict; first-use resolution keeps instrument
        # creation order -- and snapshots -- unchanged
        self._verdict_counters: Dict[str, Any] = {}
        self._freshness_hist: Optional[Any] = None
        #: batch-scoped expected-digest memo; populated only inside
        #: :meth:`verify_batch` so one-by-one verification stays on the
        #: seed-identical recomputation path
        self._expected_memo: Optional[Dict[tuple, bytes]] = None

    def verify_cost(self, report: AttestationReport) -> float:
        """Sim-seconds this report costs under the active cost model.

        0.0 without a model, so default paths schedule nothing extra
        and existing event sequences are untouched.
        """
        model = self.cost_model
        if model is None:
            return 0.0
        profile = self.devices.get(report.device)
        per_record = model.per_record + (
            profile.verify_cost if profile is not None else 0.0
        )
        return model.per_report + len(report.records) * per_record

    # -- registry ---------------------------------------------------------

    def enroll(
        self,
        device,
        *,
        signing=None,
        key: Optional[bytes] = None,
        reference: Optional[Sequence[bytes]] = None,
        region_map: Optional[Dict[str, List[int]]] = None,
        mutable_blocks: Optional[frozenset] = None,
    ) -> DeviceProfile:
        """Enroll a prover: the one registry entry point.

        ``device`` is either a simulated
        :class:`~repro.sim.device.Device` -- whose pristine image,
        region layout and key become the reference state -- or a bare
        device name, in which case ``key`` and ``reference`` must be
        supplied.  ``signing`` attaches a public identity for
        non-repudiable reports (Section 2.4).

        Enrolling an already-known device is idempotent: the existing
        profile is returned (reference state is *not* refreshed), with
        ``signing`` applied when given -- so attaching a signing
        identity after enrollment is just a second ``enroll`` call.

        Replaces the deprecated ``register_device`` /
        ``register_from_device`` / ``register_signing_identity`` trio.
        """
        if isinstance(device, str):
            name = device
            if name not in self.devices:
                if key is None or reference is None:
                    raise ConfigurationError(
                        "enrolling by name requires key= and reference="
                    )
                self._new_profile(
                    name, key, reference, region_map, mutable_blocks
                )
            profile = self.profile(name)
        else:
            name = device.name
            if name not in self.devices:
                if region_map is None:
                    region_map = {
                        region.name: list(region.blocks())
                        for region in device.memory.regions.values()
                    }
                if mutable_blocks is None:
                    mutable_blocks = frozenset(
                        block
                        for region in device.memory.regions.values()
                        if region.mutable
                        for block in region.blocks()
                    )
                self._new_profile(
                    name,
                    device.attestation_key if key is None else key,
                    (
                        list(device.memory.benign_image())
                        if reference is None
                        else reference
                    ),
                    region_map,
                    mutable_blocks,
                )
            profile = self.profile(name)
        if signing is not None:
            profile.public_identity = signing
        return profile

    def _new_profile(
        self,
        name: str,
        key: bytes,
        reference: Sequence[bytes],
        region_map: Optional[Dict[str, List[int]]],
        mutable_blocks: Optional[frozenset],
    ) -> DeviceProfile:
        profile = DeviceProfile(
            name=name,
            key=key,
            reference=tuple(bytes(b) for b in reference),
            region_map=dict(region_map or {}),
            mutable_blocks=mutable_blocks or frozenset(),
        )
        self.devices[name] = profile
        self._seen_nonces[name] = set()
        return profile

    # -- deprecated registry shims (pre-enroll API) -----------------------

    def register_device(
        self,
        name: str,
        key: bytes,
        reference: Sequence[bytes],
        region_map: Optional[Dict[str, List[int]]] = None,
        mutable_blocks: Optional[frozenset] = None,
    ) -> DeviceProfile:
        """Deprecated: use :meth:`enroll`.  Kept (with the historical
        duplicate-registration error) for old call sites."""
        _warn_deprecated("register_device")
        if name in self.devices:
            raise ConfigurationError(f"device {name!r} already registered")
        return self._new_profile(
            name, key, reference, region_map, mutable_blocks
        )

    def register_from_device(self, device) -> DeviceProfile:
        """Deprecated: use :meth:`enroll`."""
        _warn_deprecated("register_from_device")
        if device.name in self.devices:
            raise ConfigurationError(
                f"device {device.name!r} already registered"
            )
        return self.enroll(device)

    def register_signing_identity(self, device_name: str,
                                  public_identity) -> None:
        """Deprecated: use ``enroll(device, signing=...)``."""
        _warn_deprecated("register_signing_identity")
        self.profile(device_name).public_identity = public_identity

    def profile(self, device_name: str) -> DeviceProfile:
        profile = self.devices.get(device_name)
        if profile is None:
            raise ConfigurationError(f"unknown device {device_name!r}")
        return profile

    # -- challenges ---------------------------------------------------------

    def new_nonce(self, device_name: str, length: int = 16) -> bytes:
        """A fresh challenge; recorded as the outstanding one."""
        profile = self.profile(device_name)
        nonce = self._nonce_drbg.generate(length)
        profile.outstanding_nonce = nonce
        return nonce

    # -- verification ---------------------------------------------------------

    def _measured_blocks(
        self, profile: DeviceProfile, record: MeasurementRecord
    ) -> List[int]:
        if not record.region:
            return list(range(len(profile.reference)))
        blocks = profile.region_map.get(record.region)
        if blocks is None:
            raise ConfigurationError(
                f"record references unknown region {record.region!r}"
            )
        return list(blocks)

    @staticmethod
    def _memo_key(record: MeasurementRecord) -> tuple:
        """Everything :meth:`expected_for` depends on, hashable."""
        return (
            record.device,
            record.algorithm,
            record.region,
            record.nonce,
            record.counter,
            record.order_seed,
            record.normalized,
            record.data_copy,
        )

    def expected_for(self, record: MeasurementRecord) -> bytes:
        """Digest MP should produce over the reference image.

        When the record ships a copy of D (Section 2.3), the attached
        contents stand in for the reference's data blocks -- the code
        region must still match the golden image exactly.
        """
        if self._expected_memo is not None:
            cached = self._expected_memo.get(self._memo_key(record))
            if cached is not None:
                return cached
        profile = self.profile(record.device)
        order = "shuffled" if record.order_seed else "sequential"
        reference = profile.reference
        if record.data_copy:
            blocks = list(reference)
            for block_index, content in record.data_copy:
                blocks[block_index] = bytes(content)
            reference = tuple(blocks)
        return expected_digest(
            profile.key,
            reference,
            record.algorithm,
            record.nonce,
            record.counter,
            self._measured_blocks(profile, record),
            order,
            record.order_seed,
            normalized_blocks=(
                profile.mutable_blocks if record.normalized else None
            ),
        )

    def verify_record(self, record: MeasurementRecord) -> Verdict:
        """HEALTHY iff the record's digest matches the reference state.

        A shipped copy of D may only cover blocks the verifier knows to
        be mutable: a prover substituting *code* blocks this way is
        trying to launder malware as data and is flagged outright.
        """
        profile = self.profile(record.device)
        if record.data_copy:
            for block_index, _content in record.data_copy:
                if block_index not in profile.mutable_blocks:
                    return Verdict.COMPROMISED
        if constant_time_equal(self.expected_for(record), record.digest):
            return Verdict.HEALTHY
        return Verdict.COMPROMISED

    def verify_report(
        self,
        report: AttestationReport,
        expected_nonce: Optional[bytes] = None,
        enforce_counter: bool = False,
        counter_stream: str = "default",
    ) -> VerificationResult:
        """Full report verification: authenticity, replay, then state.

        ``expected_nonce``: require the newest record to answer this
        challenge (on-demand mode).  ``enforce_counter``: require the
        report's ``sent_counter`` to strictly increase within
        ``counter_stream`` (SeED pushes and ERASMUS collections are
        independent sequences on the same prover).
        """
        profile = self.profile(report.device)
        now = self.sim.now

        def conclude(verdict: Verdict, detail: str,
                     record_verdicts: Optional[List[Verdict]] = None,
                     freshness: Optional[float] = None) -> VerificationResult:
            result = VerificationResult(
                verdict=verdict,
                device=report.device,
                verified_at=now,
                detail=detail,
                record_verdicts=record_verdicts or [],
                freshness=freshness,
            )
            self.results.append(result)
            if self.trace is not None:
                self.trace.record(
                    now, "vrf.verdict", self.name,
                    device=report.device, verdict=verdict.value,
                )
            obs = self.sim.obs
            if obs.enabled:
                counter = self._verdict_counters.get(verdict.value)
                if counter is None:
                    counter = self._verdict_counters[verdict.value] = (
                        obs.metrics.counter(
                            "ra.verdicts", "verification outcomes",
                            verdict=verdict.value,
                        )
                    )
                counter.inc()
                if freshness is not None:
                    hist = self._freshness_hist
                    if hist is None:
                        hist = self._freshness_hist = (
                            obs.metrics.histogram(
                                "ra.report.freshness",
                                "verdict time minus newest t_e (sim s)",
                            )
                        )
                    hist.observe(freshness)
            return result

        if not report.records:
            return conclude(Verdict.INVALID, "empty report")
        if not report.verify_tag(profile.key):
            return conclude(Verdict.INVALID, "bad authentication tag")

        if report.scheme:
            from repro.ra.signing import verify_data

            identity = profile.public_identity
            if identity is None or identity.scheme != report.scheme:
                return conclude(
                    Verdict.INVALID,
                    f"no public key for scheme {report.scheme!r}",
                )
            if not verify_data(
                identity, report.signing_input(), report.signature
            ):
                return conclude(Verdict.INVALID, "bad signature")

        if enforce_counter:
            last = profile.last_counters.get(counter_stream, -1)
            if report.sent_counter <= last:
                return conclude(
                    Verdict.REPLAY,
                    f"counter {report.sent_counter} <= {last} "
                    f"in stream {counter_stream!r}",
                )
            profile.last_counters[counter_stream] = report.sent_counter

        if expected_nonce is not None:
            if report.newest.nonce != expected_nonce:
                return conclude(Verdict.REPLAY, "nonce mismatch")
            if expected_nonce in self._seen_nonces[report.device]:
                return conclude(Verdict.REPLAY, "nonce already used")
            self._seen_nonces[report.device].add(expected_nonce)

        record_verdicts = [self.verify_record(r) for r in report.records]
        freshness = now - report.newest.t_end
        bad = sum(1 for v in record_verdicts if v is not Verdict.HEALTHY)
        if bad:
            return conclude(
                Verdict.COMPROMISED,
                f"{bad}/{len(record_verdicts)} measurements diverge "
                "from reference",
                record_verdicts, freshness,
            )
        return conclude(
            Verdict.HEALTHY,
            f"{len(record_verdicts)} measurement(s) match reference",
            record_verdicts, freshness,
        )

    # -- epoch batching -------------------------------------------------------

    def _precompute_expected(
        self, entries: Sequence[Tuple[AttestationReport, Dict]]
    ) -> Dict[tuple, bytes]:
        """Expected digests for every distinct record in ``entries``.

        Sequential-order records without an attached data copy share
        the per-device reference traversal: all their keyed MACs are
        advanced together in one pass over the reference image, so a
        batch of k same-epoch reports pays one block walk instead of
        k.  Shuffled (SMARM) and data-copy records fall back to the
        per-record recomputation, still deduplicated by memo key.
        """
        memo: Dict[tuple, bytes] = {}
        groups: Dict[tuple, List[Tuple[tuple, MeasurementRecord]]] = {}
        for report, _kwargs in entries:
            if report.device not in self.devices:
                continue  # verify_report raises at this entry's turn
            for record in report.records:
                key = self._memo_key(record)
                if key in memo:
                    continue
                if record.order_seed or record.data_copy:
                    try:
                        memo[key] = self.expected_for(record)
                    except ConfigurationError:
                        pass  # surfaces identically at verify time
                    continue
                sig = (
                    record.device,
                    record.algorithm,
                    record.region,
                    record.normalized,
                )
                members = groups.get(sig)
                if members is None:
                    members = groups[sig] = []
                members.append((key, record))
                memo[key] = b""  # claimed; overwritten by the pass
        for sig, members in groups.items():
            device, algorithm, _region, normalized = sig
            profile = self.devices[device]
            try:
                blocks = self._measured_blocks(profile, members[0][1])
            except ConfigurationError:
                for key, _record in members:
                    del memo[key]
                continue
            macs: List[Hmac] = []
            for _key, record in members:
                mac = Hmac(profile.key, algorithm)
                mac.update(record.nonce + record.counter.to_bytes(8, "big"))
                macs.append(mac)
            zeroed = profile.mutable_blocks if normalized else frozenset()
            reference = profile.reference
            for block_index in blocks:
                if block_index in zeroed:
                    chunk = b"\x00" * len(reference[block_index])
                else:
                    chunk = reference[block_index]
                for mac in macs:
                    mac.update(chunk)
            for (key, _record), mac in zip(members, macs):
                memo[key] = mac.digest()
        return memo

    def verify_batch(
        self, entries: Sequence[Tuple[AttestationReport, Dict]]
    ) -> List[VerificationResult]:
        """Verify a same-epoch batch of reports in arrival order.

        ``entries`` is ``[(report, verify_kwargs), ...]`` where each
        kwargs dict holds that report's :meth:`verify_report` keyword
        arguments (``expected_nonce`` / ``enforce_counter`` /
        ``counter_stream``).  Verdicts, details and result-history
        side effects are byte-identical to calling
        :meth:`verify_report` once per entry in the same order -- the
        batch only amortizes expected-digest recomputation by
        precomputing one memo for the whole epoch (shared reference
        traversals, duplicate records digested once).
        """
        self._expected_memo = self._precompute_expected(entries)
        try:
            return [
                self.verify_report(report, **kwargs)
                for report, kwargs in entries
            ]
        finally:
            self._expected_memo = None

    # -- statistics -----------------------------------------------------------

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            key = result.verdict.value
            counts[key] = counts.get(key, 0) + 1
        return counts
