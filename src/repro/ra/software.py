"""Software-based attestation (Section 2.1, after Pioneer [26]).

For legacy devices with no hardware trust anchor at all, RA can only
rely on *timing*: the verifier sends a challenge, the prover computes a
custom checksum over its memory in a pseudorandom (challenge-derived)
traversal, and the verifier accepts only if the response is both
correct **and** fast.  The security argument: malware that wants to
survive must keep its real bytes somewhere and redirect the checksum's
reads around them, and every redirected read costs extra time ("any
interference ... is detectable by extra latency incurred by
self-relocating malware moving itself (in parts) while trying to avoid
being 'caught'").

This module models that game faithfully enough to exhibit both the
defense and its documented fragility ([8]):

* :class:`SoftwareAttestation` -- prover-side checksum service.  The
  checksum is keyless (everything is public); traversal order and the
  mixing constants derive from the challenge alone.
* a *redirection adversary*: malware that keeps a clean copy of the
  block it displaced and serves reads from the copy, paying
  ``redirect_penalty`` extra per touched word -- the verifier sees a
  correct checksum, late.
* a *fast forger* knob (``forgery_speedup``): the Castelluccia et al.
  attack class where a cleverer implementation (or a faster CPU than
  the verifier assumed) hides the penalty, defeating the scheme -- the
  reproduction of "security of this approach is uncertain".

The verifier accepts iff checksum correct and elapsed <= threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hmac import constant_time_equal
from repro.errors import ConfigurationError
from repro.ra.service import listen
from repro.sim.device import Device
from repro.sim.network import Channel, Message
from repro.sim.process import Compute, Process

#: multiplier over plain hashing for the software checksum (Pioneer's
#: checksum is deliberately simple but strongly ordered)
CHECKSUM_SLOWDOWN = 1.0


def software_checksum(
    blocks: List[bytes], challenge: bytes, iterations: int = 2
) -> int:
    """The keyless, order-sensitive checksum.

    A strongly-ordered mix over the memory words in a challenge-derived
    pseudorandom traversal.  Order sensitivity matters: a malware that
    knows the final checksum of a clean image cannot replay it because
    every challenge induces a fresh traversal and fresh mixing
    constants.
    """
    drbg = HmacDrbg(challenge + b"traversal")
    state = int.from_bytes(drbg.generate(8), "big")
    n = len(blocks)
    for _ in range(iterations):
        order = drbg.permutation(n)
        for index in order:
            word = int.from_bytes(blocks[index][:8].ljust(8, b"\0"), "big")
            state ^= word
            state = ((state << 13) | (state >> 51)) & (2**64 - 1)
            state = (state + 0x9E3779B97F4A7C15 + index) & (2**64 - 1)
    return state


@dataclass
class ChecksumResponse:
    """What the prover returns."""

    device: str
    challenge: bytes
    checksum: int
    started_at: float
    finished_at: float


@dataclass
class TimedVerdict:
    """Verifier decision: correctness x timeliness."""

    correct: bool
    elapsed: float
    threshold: float
    accepted: bool
    detail: str = ""


class SoftwareAttestation:
    """Prover-side software-only checksum service.

    Parameters
    ----------
    device:
        Prover (no key material is used -- the point of the approach).
    redirect_penalty:
        Extra seconds per *block read* that resident malware's
        redirection logic costs.  0.0 models an honest device.
    forgery_speedup:
        Factor (<1) by which an adversary's optimized checksum beats
        the verifier's timing assumption -- the [8] attack class.
    """

    def __init__(
        self,
        device: Device,
        iterations: int = 2,
        redirect_penalty: float = 0.0,
        forgery_speedup: float = 1.0,
    ) -> None:
        if device.nic is None:
            raise ConfigurationError("device needs a NIC")
        if forgery_speedup <= 0:
            raise ConfigurationError("forgery_speedup must be positive")
        self.device = device
        self.iterations = iterations
        self.redirect_penalty = redirect_penalty
        self.forgery_speedup = forgery_speedup
        self.responses: List[ChecksumResponse] = []
        self._counter = 0

    def install(self) -> None:
        listen(self.device.nic, self._on_message,
               kinds=frozenset({"swatt_challenge"}))

    def _on_message(self, message: Message) -> None:
        challenge = message.payload["challenge"]
        self._counter += 1
        device = self.device

        def body(proc: Process):
            started = device.sim.now
            redirecting = self.redirect_penalty > 0.0
            dirty = set(device.memory.dirty_blocks())
            blocks = []
            for index in range(device.block_count):
                if redirecting and index in dirty:
                    # Malware serves the stashed clean copy of the
                    # block it displaced: checksum stays correct...
                    blocks.append(device.memory.benign_block(index))
                else:
                    blocks.append(device.memory.read_block(index))
            checksum = software_checksum(blocks, challenge,
                                         self.iterations)
            reads = device.block_count * self.iterations
            base = (
                device.timing.hash_time(
                    "sha256",
                    device.memory.sim_block_size * reads,
                )
                * CHECKSUM_SLOWDOWN
            )
            penalty = 0.0
            if redirecting and dirty:
                # ...but every read goes through the redirection check,
                # and that conditional is exactly the latency Pioneer
                # detects.
                penalty = self.redirect_penalty * reads
            yield Compute((base + penalty) * self.forgery_speedup)
            response = ChecksumResponse(
                device=device.name,
                challenge=challenge,
                checksum=checksum,
                started_at=started,
                finished_at=device.sim.now,
            )
            self.responses.append(response)
            device.nic.send(message.src, "swatt_response", response)

        device.cpu.spawn(
            f"{device.name}.swatt.{self._counter}", body, priority=50
        )


class SoftwareVerifier:
    """Verifier for the timing game.

    Knows the prover's reference image (public) and its honest
    computation speed; accepts a response iff the checksum matches the
    reference value for the challenge and the response arrived within
    ``slack`` of the honest time.
    """

    def __init__(
        self,
        channel: Channel,
        reference_blocks: List[bytes],
        honest_time: float,
        network_budget: float = 0.02,
        slack: float = 0.10,
        iterations: int = 2,
        endpoint_name: str = "swatt-vrf",
    ) -> None:
        self.channel = channel
        self.reference = [bytes(b) for b in reference_blocks]
        self.honest_time = honest_time
        self.network_budget = network_budget
        self.slack = slack
        self.iterations = iterations
        self.endpoint = channel.make_endpoint(endpoint_name)
        self.verdicts: List[TimedVerdict] = []
        self._sent_at = {}
        self._nonce_drbg = HmacDrbg(b"swatt-nonces")
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"swatt_response"}))

    @property
    def threshold(self) -> float:
        return self.honest_time * (1.0 + self.slack) + self.network_budget

    def challenge(self, device_name: str) -> bytes:
        nonce = self._nonce_drbg.generate(16)
        self._sent_at[nonce] = self.channel.sim.now
        self.endpoint.send(
            device_name, "swatt_challenge", {"challenge": nonce}
        )
        return nonce

    def _on_message(self, message: Message) -> None:
        response: ChecksumResponse = message.payload
        sent_at = self._sent_at.pop(response.challenge, None)
        if sent_at is None:
            return  # unsolicited
        elapsed = self.channel.sim.now - sent_at
        expected = software_checksum(
            self.reference, response.challenge, self.iterations
        )
        correct = constant_time_equal(
            response.checksum.to_bytes(8, "big"),
            expected.to_bytes(8, "big"),
        )
        timely = elapsed <= self.threshold
        detail = []
        if not correct:
            detail.append("checksum mismatch")
        if not timely:
            detail.append(
                f"late: {elapsed:.4f}s > {self.threshold:.4f}s"
            )
        self.verdicts.append(
            TimedVerdict(
                correct=correct,
                elapsed=elapsed,
                threshold=self.threshold,
                accepted=correct and timely,
                detail="; ".join(detail) or "on time, correct",
            )
        )
