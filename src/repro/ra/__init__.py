"""Remote attestation mechanisms -- the paper's subject matter.

One module per point in the solution landscape (Section 3):

* :mod:`repro.ra.smart` -- the baseline: atomic on-demand RA (SMART);
* :mod:`repro.ra.locking` -- No-Lock / All-Lock / All-Lock-Ext /
  Dec-Lock / Inc-Lock / Inc-Lock-Ext consistency mechanisms;
* :mod:`repro.ra.smarm` -- interruptible shuffled measurements (SMARM);
* :mod:`repro.ra.erasmus` -- periodic self-measurement (ERASMUS);
* :mod:`repro.ra.seed` -- prover-initiated non-interactive RA (SeED);
* :mod:`repro.ra.tytan` -- per-process measurement (TyTAN model);
* :mod:`repro.ra.software` -- software-only timing-based RA for legacy
  devices (Pioneer model, including its documented failure mode);
* :mod:`repro.ra.signing` -- signed (non-repudiable) reports, §2.4;
* :mod:`repro.ra.update` -- secure update and secure erasure services
  built on attestation (§1's "other security services");

supported by:

* :mod:`repro.ra.report` -- measurement records and attestation reports;
* :mod:`repro.ra.measurement` -- the block-traversal measurement engine;
* :mod:`repro.ra.verifier` -- the trusted verifier.
"""

from repro.ra.report import (
    AttestationReport,
    MeasurementRecord,
    VerificationResult,
    Verdict,
)
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.locking import (
    LockingPolicy,
    NoLock,
    AllLock,
    DecLock,
    IncLock,
    make_policy,
    POLICY_NAMES,
)
from repro.ra.verifier import Verifier
from repro.ra.smart import SmartAttestation
from repro.ra.smarm import SmarmAttestation
from repro.ra.erasmus import ErasmusService, CollectionResult
from repro.ra.seed import SeedService
from repro.ra.tytan import TytanAttestation, ProcessPartition
from repro.ra.software import SoftwareAttestation, SoftwareVerifier
from repro.ra.signing import (
    PublicIdentity,
    SigningIdentity,
    make_signing_identity,
)
from repro.ra.update import UpdateCoordinator, UpdateService

__all__ = [
    "AttestationReport",
    "MeasurementRecord",
    "VerificationResult",
    "Verdict",
    "MeasurementConfig",
    "MeasurementProcess",
    "LockingPolicy",
    "NoLock",
    "AllLock",
    "DecLock",
    "IncLock",
    "make_policy",
    "POLICY_NAMES",
    "Verifier",
    "SmartAttestation",
    "SmarmAttestation",
    "ErasmusService",
    "CollectionResult",
    "SeedService",
    "TytanAttestation",
    "ProcessPartition",
    "SoftwareAttestation",
    "SoftwareVerifier",
    "PublicIdentity",
    "SigningIdentity",
    "make_signing_identity",
    "UpdateCoordinator",
    "UpdateService",
]
