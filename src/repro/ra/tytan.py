"""TyTAN-style per-process measurement (Section 3.1, after [3]).

TyTAN measures the memory of each process individually.  Higher
priority processes may interrupt MP to meet real-time requirements,
but *the process being measured* may not -- so single-process malware
cannot move itself while its own pages are under measurement.  The
paper's caveat, reproduced in the malware model
(:mod:`repro.malware.colluding`): malware spread over several
colluding processes defeats this, because the not-currently-measured
partner can act on behalf of the measured one (at the cost of a
process-isolation violation, e.g. an OS vulnerability).

Implementation notes: regions registered on the device's memory stand
in for per-process address spaces.  Each region is measured by its own
:class:`~repro.ra.measurement.MeasurementProcess` run (sequential
order, interruptible) producing a region-tagged record; the report
carries one record per process.  Malware agents receive the region
name with every progress notification and enforce the "may not
interrupt own measurement" rule on themselves -- the honest-hardware
equivalent of the EA-MPU blocking them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport
from repro.ra.service import AttestationService, send_report
from repro.sim.device import Device
from repro.sim.process import Process, WaitSignal


@dataclass(frozen=True)
class ProcessPartition:
    """One 'process' in the TyTAN sense: a named slice of memory."""

    name: str
    start: int
    length: int


def install_partitions(device: Device,
                       partitions: Sequence[ProcessPartition]) -> None:
    """Register each partition as a mutable region on the device."""
    for part in partitions:
        device.add_region(
            part.name, part.start, part.length, mutable=True,
            description=f"process {part.name}",
        )


class TytanAttestation(AttestationService):
    """Per-process on-demand attestation.

    Overrides the dispatcher's measurement step: instead of one MP over
    all of M, it runs one MP per region and packs all region records
    into a single report.
    """

    def __init__(
        self,
        device: Device,
        regions: Optional[Sequence[str]] = None,
        algorithm: str = "blake2s",
        priority: int = 40,
    ) -> None:
        config = MeasurementConfig(
            algorithm=algorithm,
            order="sequential",
            atomic=False,
            priority=priority,
        )
        super().__init__(device, config, mechanism="tytan")
        if regions is None:
            regions = list(device.memory.regions)
        if not regions:
            raise ConfigurationError("TyTAN needs at least one region")
        self.regions = list(regions)

    def _dispatcher(self, proc: Process):
        device = self.device
        while True:
            if not self._pending:
                yield WaitSignal(self._request_signal)
                continue
            message = self._pending.pop(0)
            payload = message.payload or {}
            nonce = payload.get("nonce", b"")
            records = []
            for region_name in self.regions:
                self._counter += 1
                region_config = MeasurementConfig(
                    algorithm=self.config.algorithm,
                    order="sequential",
                    atomic=False,
                    priority=self.config.priority,
                    region=region_name,
                )
                mp = MeasurementProcess(
                    device, region_config, nonce=nonce,
                    counter=self._counter, mechanism="tytan",
                )
                mp_proc = device.cpu.spawn(
                    f"{device.name}.tytan.{region_name}.{self._counter}",
                    mp.run,
                    priority=self.config.priority,
                )
                yield WaitSignal(mp_proc.done_signal)
                records.append(mp.record)
            report = AttestationReport.authenticate(
                device.attestation_key, device.name, records,
                sent_counter=self._counter,
            )
            self.reports_sent.append(report)
            self.requests_handled += 1
            send_report(device.nic, message.src, report)
