"""SMARM: shuffled measurements against roving malware (Section 3.2).

SMARM keeps MP fully interruptible and locks nothing.  Its defense
against self-relocating malware is *secrecy of the traversal order*:
blocks are measured in a random permutation derived from the
attestation key, so malware -- which can observe only how many blocks
have been measured -- cannot tell whether any given block is already
covered.  The optimal adversary relocates to a uniformly random block
between block measurements and still escapes a single measurement with
probability about :math:`e^{-1} \\approx 0.37`; k independent
measurements drive the escape probability down exponentially
(about :math:`e^{-k}`; the paper: "after 13 checks that probability
is below 10^-6").

:class:`SmarmAttestation` configures the shared service for shuffled,
interruptible, multi-round measurement.  The closed-form math lives in
:mod:`repro.analysis.smarm_math`; the Monte-Carlo experiment that
checks the simulation against it lives in
:func:`repro.ra.smarm.escape_trial` / :func:`escape_probability`.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.ra.measurement import MeasurementConfig
from repro.ra.service import AttestationService
from repro.sim.device import Device

#: rounds after which the residual escape probability drops below 1e-6
#: when each round is escaped with probability ~e^-1 (ceil(6 ln 10) = 14,
#: the paper rounds to "13 checks" using the exact finite-n probability)
DEFAULT_ROUNDS = 13


class SmarmAttestation(AttestationService):
    """Interruptible shuffled-order on-demand RA."""

    def __init__(
        self,
        device: Device,
        algorithm: str = "blake2s",
        rounds: int = DEFAULT_ROUNDS,
        priority: int = 40,
        inter_round_gap: float = 0.0,
    ) -> None:
        config = MeasurementConfig(
            algorithm=algorithm,
            order="shuffled",
            atomic=False,
            locking=None,
            priority=priority,
        )
        super().__init__(
            device, config, mechanism="smarm",
            inter_round_gap=inter_round_gap,
        )
        self.rounds = rounds


def escape_trial(n_blocks: int, drbg: HmacDrbg,
                 moves_per_block: int = 1) -> bool:
    """One abstract SMARM round: does uniform-relocating malware escape?

    This is the *analytical game* of [7], detached from the device
    simulator (the full-stack version runs in the integration tests):
    a secret permutation over ``n_blocks``; malware starts in a random
    block; before each block measurement it relocates to a uniformly
    random block ``moves_per_block`` times.  It escapes iff it is never
    inside the block being measured at measurement time.

    Returns True if the malware escaped.
    """
    order = drbg.permutation(n_blocks)
    position = drbg.randbelow(n_blocks)
    for measured_block in order:
        for _ in range(moves_per_block):
            position = drbg.randbelow(n_blocks)
        if position == measured_block:
            return False
    return True


def escape_probability(
    n_blocks: int,
    trials: int = 2000,
    seed: bytes = b"smarm-mc",
    moves_per_block: int = 1,
    metrics=None,
) -> float:
    """Monte-Carlo estimate of the single-round escape probability.

    Converges to ``((n-1)/n)**n`` -> ``e^-1`` for the uniform strategy
    (checked against :mod:`repro.analysis.smarm_math` in the tests).
    ``metrics`` optionally takes a
    :class:`repro.obs.metrics.MetricsRegistry` that accumulates trial
    and escape counts across experiment batches.
    """
    drbg = HmacDrbg(seed)
    escapes = sum(
        escape_trial(n_blocks, drbg, moves_per_block)
        for _ in range(trials)
    )
    if metrics is not None:
        game = f"uniform-{moves_per_block}"
        metrics.counter(
            "smarm.trials", "Monte-Carlo escape games played", game=game,
        ).inc(trials)
        metrics.counter(
            "smarm.escapes", "games the malware survived", game=game,
        ).inc(escapes)
    return escapes / trials


def multi_round_escape_probability(
    n_blocks: int,
    rounds: int,
    trials: int = 2000,
    seed: bytes = b"smarm-mc-rounds",
    metrics=None,
) -> float:
    """Monte-Carlo estimate that malware escapes ``rounds`` independent
    measurements in a row."""
    drbg = HmacDrbg(seed)
    survived = 0
    for _ in range(trials):
        if all(escape_trial(n_blocks, drbg) for _ in range(rounds)):
            survived += 1
    if metrics is not None:
        game = f"multi-{rounds}"
        metrics.counter(
            "smarm.trials", "Monte-Carlo escape games played", game=game,
        ).inc(trials)
        metrics.counter(
            "smarm.escapes", "games the malware survived", game=game,
        ).inc(survived)
    return survived / trials


def escape_trial_move_once(n_blocks: int, drbg: HmacDrbg) -> bool:
    """The suboptimal single-move strategy, as a game.

    Malware picks one random boundary (after ``j`` of ``n`` blocks are
    measured) and one uniform destination, and relocates exactly once.
    Used to validate :func:`repro.analysis.smarm_math.move_once_escape`
    (~1/6 for large n, vs e^-1 for the per-block mover).
    """
    order = drbg.permutation(n_blocks)
    position = drbg.randbelow(n_blocks)
    move_after = drbg.randbelow(n_blocks)  # boundary index j
    for step, measured_block in enumerate(order):
        if step == move_after:
            position = drbg.randbelow(n_blocks)
        if position == measured_block:
            return False
    return True


def move_once_escape_probability(
    n_blocks: int,
    trials: int = 2000,
    seed: bytes = b"smarm-mc-once",
) -> float:
    """Monte-Carlo estimate for the single-move strategy."""
    drbg = HmacDrbg(seed)
    escapes = sum(
        escape_trial_move_once(n_blocks, drbg) for _ in range(trials)
    )
    return escapes / trials
