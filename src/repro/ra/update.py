"""RA as a building block: secure update and secure erasure.

Section 1: "RA can help Vrf establish a static or dynamic root of
trust in Prv and can also be used to construct other security
services, such as software updates [25] and secure deletion [21]".
This module builds both on top of the measurement stack:

**Secure update** (SCUBA [25] flavour).  The verifier ships new
firmware blocks; the prover applies them and immediately runs a
challenge-bound measurement over the *updated* reference image.  Only
a prover that really installed the update can produce the expected
digest, so verification of the report *is* the installation receipt.

**Secure erasure / deletion** (PoSE [21] flavour).  The verifier sends
a random seed; the prover overwrites **all writable memory** with the
seed-derived stream -- destroying anything (malware included) that
lived there -- and proves it by measuring the filled memory.  Because
the fill occupies every block, the prover provably has nothing else
resident; the verifier then reflashes or re-trusts the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport, VerificationResult
from repro.ra.service import listen
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.network import Channel, Message
from repro.sim.process import Compute, Process


def erasure_fill(seed: bytes, block_index: int, block_size: int) -> bytes:
    """The content block ``block_index`` must hold after secure erasure."""
    return HmacDrbg(seed + block_index.to_bytes(4, "big")).generate(
        block_size
    )


@dataclass
class UpdateOutcome:
    """Verifier-side result of one update (or erasure) round."""

    device: str
    kind: str  # "update" | "erasure"
    result: Optional[VerificationResult] = None
    requested_at: float = 0.0
    confirmed_at: Optional[float] = None

    @property
    def installed(self) -> bool:
        return self.result is not None and self.result.healthy


class UpdateService:
    """Prover side: applies updates / erasure, then attests them."""

    def __init__(
        self,
        device: Device,
        config: Optional[MeasurementConfig] = None,
        write_time_per_block: float = 1e-5,
    ) -> None:
        if device.nic is None:
            raise ConfigurationError("device needs a NIC")
        self.device = device
        self.config = config if config is not None else MeasurementConfig(
            algorithm="blake2s", order="sequential", atomic=True,
            priority=900,
        )
        self.write_time_per_block = write_time_per_block
        self.updates_applied = 0
        self.erasures_done = 0
        self._counter = 0

    def install(self) -> None:
        listen(self.device.nic, self._on_message,
               kinds=frozenset({"update_request", "erase_request"}))

    # -- handlers ----------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.kind == "update_request":
            self._spawn(self._apply_update, message)
        else:
            self._spawn(self._apply_erasure, message)

    def _spawn(self, body, message: Message) -> None:
        self._counter += 1
        self.device.cpu.spawn(
            f"{self.device.name}.update.{self._counter}",
            lambda proc: body(proc, message),
            priority=self.config.priority,
        )

    def _measure_and_reply(self, proc: Process, nonce: bytes, src: str,
                           kind: str):
        self._counter += 1
        mp = MeasurementProcess(
            self.device, self.config, nonce=nonce,
            counter=self._counter, mechanism=kind,
        )
        yield from mp.run(proc)
        report = AttestationReport.authenticate(
            self.device.attestation_key, self.device.name, [mp.record],
            sent_counter=self._counter,
        )
        self.device.nic.send(src, f"{kind}_report", report)

    def _apply_update(self, proc: Process, message: Message):
        payload = message.payload
        blocks: Dict[int, bytes] = payload["blocks"]
        for block_index, content in sorted(blocks.items()):
            yield Compute(self.write_time_per_block)
            self.device.memory.write(block_index, content, "update")
        self.updates_applied += 1
        self.device.trace.record(
            self.device.sim.now, "update.applied", self.device.name,
            blocks=len(blocks),
        )
        yield from self._measure_and_reply(
            proc, payload["nonce"], message.src, "update"
        )

    def _apply_erasure(self, proc: Process, message: Message):
        payload = message.payload
        seed: bytes = payload["seed"]
        memory = self.device.memory
        for block_index in range(memory.block_count):
            yield Compute(self.write_time_per_block)
            memory.write(
                block_index,
                erasure_fill(seed, block_index, memory.block_size),
                "erase",
            )
        self.erasures_done += 1
        self.device.trace.record(
            self.device.sim.now, "erase.done", self.device.name
        )
        yield from self._measure_and_reply(
            proc, payload["nonce"], message.src, "erasure"
        )


class UpdateCoordinator:
    """Verifier side: ships updates/erasures and checks the receipts."""

    def __init__(
        self,
        verifier: Verifier,
        channel: Channel,
        endpoint_name: str = "vrf-update",
        verify_latency: float = 1e-3,
    ) -> None:
        self.verifier = verifier
        self.channel = channel
        self.endpoint = channel.make_endpoint(endpoint_name)
        self.verify_latency = verify_latency
        self.outcomes: List[UpdateOutcome] = []
        self._outstanding: Dict[bytes, UpdateOutcome] = {}
        self._nonces = HmacDrbg(b"update-nonces")
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"update_report", "erasure_report"}))

    # -- operations -----------------------------------------------------------

    def push_update(self, device_name: str,
                    blocks: Dict[int, bytes]) -> UpdateOutcome:
        """Ship new firmware blocks; the reference image is updated
        *first*, so only a prover that installed them verifies."""
        profile = self.verifier.profile(device_name)
        reference = list(profile.reference)
        for block_index, content in blocks.items():
            if not 0 <= block_index < len(reference):
                raise ConfigurationError(
                    f"update block {block_index} out of range"
                )
            if len(content) != len(reference[block_index]):
                raise ConfigurationError("update block size mismatch")
            reference[block_index] = bytes(content)
        profile.reference = tuple(reference)
        return self._send(
            device_name, "update_request",
            {"blocks": dict(blocks)}, kind="update",
        )

    def push_erasure(self, device_name: str,
                     seed: Optional[bytes] = None) -> UpdateOutcome:
        """Request a proof of secure erasure: all memory overwritten
        with a verifier-chosen stream, then measured."""
        profile = self.verifier.profile(device_name)
        if seed is None:
            seed = self._nonces.generate(16)
        block_size = len(profile.reference[0])
        profile.reference = tuple(
            erasure_fill(seed, index, block_size)
            for index in range(len(profile.reference))
        )
        return self._send(
            device_name, "erase_request", {"seed": seed}, kind="erasure",
        )

    # -- plumbing ---------------------------------------------------------------

    def _send(self, device_name: str, msg_kind: str, payload: dict,
              kind: str) -> UpdateOutcome:
        nonce = self._nonces.generate(16)
        payload = dict(payload)
        payload["nonce"] = nonce
        outcome = UpdateOutcome(
            device=device_name, kind=kind,
            requested_at=self.verifier.sim.now,
        )
        self.outcomes.append(outcome)
        self._outstanding[nonce] = outcome
        self.endpoint.send(device_name, msg_kind, payload)
        return outcome

    def _on_message(self, message: Message) -> None:
        report: AttestationReport = message.payload
        nonce = report.newest.nonce
        outcome = self._outstanding.pop(nonce, None)
        if outcome is None:
            return
        self.verifier.sim.schedule(
            self.verify_latency, self._finish, outcome, report, nonce
        )

    def _finish(self, outcome: UpdateOutcome,
                report: AttestationReport, nonce: bytes) -> None:
        outcome.result = self.verifier.verify_report(
            report, expected_nonce=nonce
        )
        outcome.confirmed_at = self.verifier.sim.now
