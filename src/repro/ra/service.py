"""On-demand attestation plumbing shared by SMART, locking and SMARM.

Prover side: :class:`AttestationService` -- a device process that waits
for ``att_request`` messages, runs the configured measurement (one or
more rounds), and replies with an authenticated report.

Verifier side: :class:`OnDemandVerifier` -- sends challenges, matches
responses to outstanding nonces, verifies, and keeps the Figure 1
timeline (request sent / received / t_s / t_e / report received /
verified).

The verifier host is not CPU-modelled (Vrf is a resource-rich machine);
its verification latency is charged as a configurable engine delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.tracectx import TraceContext
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport, Verdict, VerificationResult
from repro.ra.verifier import Verifier
from repro.resilience.retry import RetryPolicy
from repro.sim.device import Device
from repro.sim.engine import Signal
from repro.sim.network import Channel, Endpoint, Message
from repro.sim.process import Compute, Process, Sleep, WaitSignal

#: how many settled challenge nonces the prover remembers for dedup
DEDUP_CACHE_SIZE = 64


def send_report(endpoint: Endpoint, dst: str, report: Any,
                kind: str = "att_report",
                ctx: Optional[TraceContext] = None) -> Message:
    """The one sanctioned way attestation traffic enters the channel.

    Retransmission safety lives in the retry/dedup layer of this
    module; protocol code elsewhere must route ``att_*`` sends through
    here (or :class:`OnDemandVerifier`) so a send is never silently
    unrecoverable -- the ``ra-naked-send`` lint rule enforces exactly
    that boundary.  ``ctx`` carries the exchange's trace context across
    the hop (out-of-band; the report bytes are untouched).
    """
    return endpoint.send(dst, kind, report, ctx=ctx)


def listen(
    endpoint: Endpoint,
    handler: Callable[[Message], None],
    kinds: Optional[frozenset] = None,
) -> None:
    """Invoke ``handler`` for every matching message at ``endpoint``.

    ``kinds`` restricts the listener to specific message kinds; a
    listener consumes *only* its own kinds from the mailbox, so several
    protocol services (SMART + ERASMUS + SeED on one prover) can share
    one NIC without stealing each other's traffic.  ``kinds=None``
    consumes everything -- only safe for a dedicated endpoint.

    Signals are edges, so the listener re-arms itself before draining;
    draining (rather than using the fired value) makes same-instant
    bursts safe.
    """

    def matches(message: Message) -> bool:
        return kinds is None or message.kind in kinds

    def on_rx(_value) -> None:
        endpoint.rx_signal.wait(on_rx)
        taken = [m for m in endpoint.inbox if matches(m)]
        for message in taken:
            endpoint.inbox.remove(message)
            handler(message)

    endpoint.rx_signal.wait(on_rx)


class AttestationService:
    """The prover-side RA service.

    Parameters
    ----------
    device:
        The prover; must have a NIC attached.
    config:
        Measurement configuration (atomicity, order, locking, priority).
    mechanism:
        Name stamped into records ("smart", "dec-lock", "smarm", ...).
    inter_round_gap:
        Idle time between successive rounds of a multi-round request
        (SMARM needs *independent* measurements; a gap lets the
        application run in between).
    service_priority:
        Priority of the dispatcher process itself (cheap bookkeeping).
    """

    def __init__(
        self,
        device: Device,
        config: MeasurementConfig,
        mechanism: str = "ondemand",
        inter_round_gap: float = 0.0,
        service_priority: int = 60,
    ) -> None:
        if device.nic is None:
            raise ConfigurationError(
                "attach the device to a channel before installing RA"
            )
        self.device = device
        self.config = config
        self.mechanism = mechanism
        self.inter_round_gap = inter_round_gap
        self.service_priority = service_priority
        self.requests_handled = 0
        self.reports_sent: List[AttestationReport] = []
        #: optional SigningIdentity for non-repudiable reports (§2.4)
        self.signer = None
        self._counter = 0
        self._request_signal = Signal(device.sim, f"{device.name}.ra.req")
        self._pending: List[Message] = []
        self.process: Optional[Process] = None
        # Nonce dedup: None while that challenge's measurement is in
        # flight, the finished report once settled.  Retransmitted
        # challenges never double-measure -- in-flight duplicates are
        # dropped, settled ones get the cached report resent.  The
        # cache is volatile, so a Device.reset clears it and post-reset
        # retransmissions legitimately re-measure.
        self._dedup: Dict[bytes, Optional[AttestationReport]] = {}
        self._hooked = False

    def install(self) -> Process:
        """Register the message listener and start the dispatcher."""
        if not self._hooked:
            self.device.add_reset_hook(self._on_reset)
            self._hooked = True
        return self._activate()

    # -- internals --------------------------------------------------------

    def _activate(self) -> Process:
        listen(self.device.nic, self._on_message,
               kinds=frozenset({"att_request"}))
        self.process = self.device.cpu.spawn(
            f"{self.device.name}.ra-service",
            self._dispatcher,
            priority=self.service_priority,
        )
        return self.process

    def _on_reset(self) -> None:
        """Brownout: volatile RA state is gone; come back up listening."""
        self._pending.clear()
        self._dedup.clear()
        self._request_signal.clear()
        self.device.trace.record(
            self.device.sim.now, "ra.service.reboot", self.device.name
        )
        self._activate()

    def _on_message(self, message: Message) -> None:
        if message.kind != "att_request":
            return
        payload = message.payload or {}
        nonce = payload.get("nonce", b"")
        if nonce and nonce in self._dedup:
            cached = self._dedup[nonce]
            self.device.trace.record(
                self.device.sim.now, "ra.dedup", self.device.name,
                src=message.src, settled=cached is not None,
            )
            obs = self.device.obs
            if obs.enabled:
                obs.metrics.counter(
                    "ra.dedup.hits",
                    "retransmitted challenges absorbed without re-measuring",
                    mechanism=self.mechanism,
                ).inc()
            if cached is not None:
                # Settled: the report (not the measurement) was lost.
                send_report(self.device.nic, message.src, cached,
                            ctx=message.ctx)
            # In flight: the running measurement will answer.
            return
        if nonce:
            self._dedup[nonce] = None
        self._pending.append(message)
        self._request_signal.fire(message)

    def _trim_dedup(self) -> None:
        while len(self._dedup) > DEDUP_CACHE_SIZE:
            for key, value in self._dedup.items():
                if value is not None:
                    del self._dedup[key]
                    break
            else:
                return

    def _dispatcher(self, proc: Process):
        device = self.device
        while True:
            if not self._pending:
                yield WaitSignal(self._request_signal)
                continue
            message = self._pending.pop(0)
            payload = message.payload or {}
            nonce = payload.get("nonce", b"")
            rounds = int(payload.get("rounds", 1))
            device.trace.record(
                device.sim.now, "ra.request", device.name,
                src=message.src, rounds=rounds,
            )
            obs = device.obs
            round_span = None
            if obs.enabled:
                span_args = dict(
                    mechanism=self.mechanism, src=message.src,
                    rounds=rounds,
                )
                if message.ctx is not None:
                    span_args["trace_id"] = message.ctx.trace_id
                round_span = obs.spans.begin_span(
                    "ra.round", category="ra.service", **span_args
                )
            records = []
            for round_index in range(rounds):
                if round_index > 0 and self.inter_round_gap > 0:
                    yield Sleep(self.inter_round_gap)
                self._counter += 1
                mp = MeasurementProcess(
                    device, self.config, nonce=nonce,
                    counter=self._counter, mechanism=self.mechanism,
                    ctx=message.ctx,
                )
                mp_proc = device.cpu.spawn(
                    f"{device.name}.mp.{self._counter}",
                    mp.run,
                    priority=self.config.priority,
                )
                yield WaitSignal(mp_proc.done_signal)
                records.append(mp.record)
            report = AttestationReport.authenticate(
                device.attestation_key, device.name, records,
                sent_counter=self._counter,
            )
            if self.signer is not None:
                from repro.ra.signing import sign_data

                # Signing the fixed-size digest bundle costs the
                # prover the Figure 2 per-signature time.
                yield Compute(
                    device.timing.sign_time(self.signer.scheme)
                )
                report = report.with_signature(
                    sign_data(self.signer, report.signing_input()),
                    self.signer.scheme,
                )
            self.reports_sent.append(report)
            self.requests_handled += 1
            if nonce:
                self._dedup[nonce] = report
                self._trim_dedup()
            send_report(device.nic, message.src, report, ctx=message.ctx)
            device.trace.record(
                device.sim.now, "ra.reply", device.name,
                records=len(records), signed=self.signer is not None,
            )
            if round_span is not None:
                obs.spans.end_span(round_span, records=len(records))
                obs.metrics.counter(
                    "ra.requests.handled",
                    "attestation requests fully served",
                    mechanism=self.mechanism,
                ).inc()


@dataclass
class AttestationExchange:
    """One challenge/response exchange, with its Figure 1 timeline.

    ``attempts`` counts challenge transmissions (1 = no retransmission);
    ``status`` moves ``pending`` -> ``verified`` | ``timed-out``.
    """

    device: str
    nonce: bytes
    requested_at: float
    rounds: int = 1
    attempts: int = 1
    status: str = "pending"
    report: Optional[AttestationReport] = None
    report_received_at: Optional[float] = None
    result: Optional[VerificationResult] = None
    #: trace context minted for this exchange (None when obs disabled)
    ctx: Optional[TraceContext] = None

    @property
    def round_trip(self) -> Optional[float]:
        if self.result is None:
            return None
        return self.result.verified_at - self.requested_at


class OnDemandVerifier:
    """Verifier-side driver for challenge/response attestation.

    With ``retry=None`` (the default) behavior is exactly the classic
    fire-and-forget exchange and *no* extra simulator events are
    scheduled.  Passing a :class:`RetryPolicy` arms a per-exchange
    timeout: unanswered challenges are retransmitted with the same
    nonce (the prover's dedup cache keeps that idempotent), backing off
    exponentially with DRBG-seeded jitter, until the report verifies or
    the retry budget runs out.  An optional
    :class:`~repro.resilience.outcome.OutcomeReport` receives the
    classified outcome of every exchange.
    """

    def __init__(
        self,
        verifier: Verifier,
        channel: Channel,
        endpoint_name: str = "vrf",
        verify_latency: float = 1e-3,
        retry: Optional[RetryPolicy] = None,
        outcomes: Optional["OutcomeReport"] = None,  # noqa: F821
    ) -> None:
        self.verifier = verifier
        self.channel = channel
        self.endpoint = channel.make_endpoint(endpoint_name)
        self.verify_latency = verify_latency
        self.retry = retry
        self.outcomes = outcomes
        self.exchanges: List[AttestationExchange] = []
        self._outstanding: Dict[bytes, AttestationExchange] = {}
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"att_report"}))

    def request(
        self,
        device_name: str,
        rounds: int = 1,
        on_result: Optional[Callable[[AttestationExchange], None]] = None,
    ) -> AttestationExchange:
        """Send a challenge to ``device_name``; returns the exchange
        object that will be filled in as the protocol completes."""
        nonce = self.verifier.new_nonce(device_name)
        # Minting is gated on obs so NULL_OBS runs stay allocation-free
        # and their traces byte-identical.
        ctx = (
            TraceContext.mint("ondemand", device_name, nonce)
            if self.verifier.sim.obs.enabled else None
        )
        exchange = AttestationExchange(
            device=device_name,
            nonce=nonce,
            requested_at=self.verifier.sim.now,
            rounds=rounds,
            ctx=ctx,
        )
        exchange._on_result = on_result  # type: ignore[attr-defined]
        exchange._timeout = None  # type: ignore[attr-defined]
        exchange._drbg = (  # type: ignore[attr-defined]
            None if self.retry is None else self.retry.drbg_for(nonce)
        )
        self.exchanges.append(exchange)
        self._outstanding[nonce] = exchange
        self._transmit(exchange)
        return exchange

    def _transmit(self, exchange: AttestationExchange) -> None:
        # Retransmissions reuse the same context: one exchange, one
        # trace_id, however many attempts it takes.
        self.endpoint.send(
            exchange.device, "att_request",
            {"nonce": exchange.nonce, "rounds": exchange.rounds},
            ctx=exchange.ctx,
        )
        if self.retry is not None:
            wait = self.retry.wait_before(exchange.attempts, exchange._drbg)
            exchange._timeout = self.verifier.sim.schedule(
                wait, self._on_timeout, exchange
            )

    def _retransmit(self, exchange: AttestationExchange) -> None:
        exchange.attempts += 1
        obs = self.channel.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "ra.retries.total", "attestation challenge retransmissions",
            ).inc()
        if self.channel.trace is not None:
            self.channel.trace.record(
                self.channel.sim.now, "ra.retry", self.endpoint.name,
                device=exchange.device, attempt=exchange.attempts,
            )
        self._transmit(exchange)

    def _on_timeout(self, exchange: AttestationExchange) -> None:
        if exchange.status != "pending" or exchange.report is not None:
            return  # report arrived or exchange settled meanwhile
        exchange._timeout = None
        if exchange.attempts >= self.retry.max_attempts:
            self._conclude_failure(exchange)
            return
        self._retransmit(exchange)

    def _conclude_failure(self, exchange: AttestationExchange) -> None:
        exchange.status = "timed-out"
        self._outstanding.pop(exchange.nonce, None)
        obs = self.channel.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "ra.timeouts.total",
                "attestation exchanges abandoned after the retry budget",
            ).inc()
        if self.outcomes is not None:
            self.outcomes.record(
                device=exchange.device,
                nonce=exchange.nonce,
                requested_at=exchange.requested_at,
                concluded_at=self.channel.sim.now,
                attempts=exchange.attempts,
                completed=False,
            )
        callback = getattr(exchange, "_on_result", None)
        if callback is not None:
            callback(exchange)

    def _on_message(self, message: Message) -> None:
        if message.kind != "att_report":
            return
        report: AttestationReport = message.payload
        exchange = self._outstanding.get(report.newest.nonce)
        if exchange is None:
            # Unsolicited or replayed: verify anyway so replays are logged.
            self.verifier.sim.schedule(
                self.verify_latency,
                self.verifier.verify_report, report, b"\x00",
            )
            return
        if exchange.report is not None:
            return  # duplicate of a report already being verified
        exchange.report = report
        exchange.report_received_at = self.verifier.sim.now
        timeout = getattr(exchange, "_timeout", None)
        if timeout is not None:
            timeout.cancel()
            exchange._timeout = None  # type: ignore[attr-defined]
        self.verifier.sim.schedule(
            self.verify_latency, self._finish, exchange
        )

    def _finish(self, exchange: AttestationExchange) -> None:
        result = self.verifier.verify_report(
            exchange.report, expected_nonce=exchange.nonce
        )
        if (
            self.retry is not None
            and result.verdict in (Verdict.INVALID, Verdict.REPLAY)
            and exchange.attempts < self.retry.max_attempts
        ):
            # The report was damaged or stale, not the device dishonest:
            # spend a retry instead of concluding.
            exchange.report = None
            exchange.report_received_at = None
            self._retransmit(exchange)
            return
        exchange.result = result
        # Concluding on an unverifiable report (budget exhausted, or no
        # retry layer armed) delivered nothing trustworthy: the exchange
        # is timed-out in the outcome taxonomy, not verified.
        verified = result.verdict not in (Verdict.INVALID, Verdict.REPLAY)
        exchange.status = "verified" if verified else "timed-out"
        self._outstanding.pop(exchange.nonce, None)
        obs = self.channel.sim.obs
        if obs.enabled:
            now = self.channel.sim.now
            span_args = dict(
                device=exchange.device,
                verdict=exchange.result.verdict.value,
            )
            exemplar = None
            if exchange.ctx is not None:
                span_args["trace_id"] = exchange.ctx.trace_id
                span_args["attempts"] = exchange.attempts
                exemplar = exchange.ctx.trace_id
            obs.spans.add_span(
                "ra.round_trip", exchange.requested_at, now,
                category="ra.verifier", **span_args,
            )
            obs.metrics.histogram(
                "ra.round_trip.latency",
                "challenge to verdict latency (sim s)",
            ).observe(now - exchange.requested_at, exemplar=exemplar)
        if self.outcomes is not None:
            self.outcomes.record(
                device=exchange.device,
                nonce=exchange.nonce,
                requested_at=exchange.requested_at,
                concluded_at=self.channel.sim.now,
                attempts=exchange.attempts,
                completed=verified,
                verdict=exchange.result.verdict.value,
            )
        callback = getattr(exchange, "_on_result", None)
        if callback is not None:
            callback(exchange)
