"""SeED: secure non-interactive attestation (Section 3.3, after [14]).

In SeED the *prover* initiates attestation at pseudorandom times and
the verifier just listens.  The paper lists three challenges and their
fixes, all modelled here:

1. **Replay** -- responses are not bound to a verifier challenge, so
   each report carries a strictly monotonic counter (we also support a
   synchronized-clock check via a freshness bound).
2. **Transient malware disinfecting itself right before attestation**
   -- trigger times must be *secret from all software on the prover*:
   they are derived from a short seed shared with the verifier and fire
   through the device's :class:`~repro.sim.device.SecureTimer` (the
   "dedicated timeout circuit"), so malware agents get no advance
   notification hook.
3. **A communication adversary dropping responses** -- the verifier
   derives the same trigger schedule from the shared seed and flags a
   MISSING verdict when an expected report does not arrive within a
   grace window.

The paper also notes SeED's DoS resilience (no inbound requests to
exhaust) and low communication overhead; both fall out of the
unidirectional design and are measured in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.obs.tracectx import TraceContext
from repro.ra.measurement import MeasurementConfig, MeasurementProcess
from repro.ra.report import AttestationReport, Verdict, VerificationResult
from repro.ra.service import listen
from repro.ra.verifier import Verifier
from repro.sim.device import Device
from repro.sim.network import Channel, Message


def trigger_schedule(shared_seed: bytes, min_gap: float, max_gap: float,
                     count: int, start: float = 0.0) -> List[float]:
    """The pseudorandom attestation times both sides derive.

    Gaps are uniform in ``[min_gap, max_gap]`` from an HMAC-DRBG keyed
    with the shared seed -- unpredictable without the seed, identical
    on both ends.
    """
    if min_gap <= 0 or max_gap < min_gap:
        raise ConfigurationError("need 0 < min_gap <= max_gap")
    drbg = HmacDrbg(shared_seed + b"seed-triggers")
    times = []
    t = start
    for _ in range(count):
        t += min_gap + drbg.uniform() * (max_gap - min_gap)
        times.append(t)
    return times


class SeedService:
    """Prover side: secret-timer-triggered measurements, pushed reports."""

    def __init__(
        self,
        device: Device,
        shared_seed: bytes,
        verifier_name: str = "vrf",
        min_gap: float = 5.0,
        max_gap: float = 15.0,
        trigger_count: int = 20,
        config: Optional[MeasurementConfig] = None,
        serve_fetch: bool = False,
    ) -> None:
        if device.nic is None:
            raise ConfigurationError("device needs a NIC for SeED")
        self.device = device
        self.shared_seed = shared_seed
        self.verifier_name = verifier_name
        self.config = config if config is not None else MeasurementConfig(
            algorithm="blake2s", order="sequential", atomic=False,
            priority=45,
        )
        self.schedule = trigger_schedule(
            shared_seed, min_gap, max_gap, trigger_count
        )
        #: opt-in: answer ``seed_fetch`` catch-up requests by resending
        #: the stored report (default off -- listening adds NIC events)
        self.serve_fetch = serve_fetch
        self.fetches_served = 0
        self.reports_sent: List[AttestationReport] = []
        self._counter = 0
        self._hooked = False

    def start(self) -> None:
        """Arm the secure timer for every trigger in the schedule.

        Crucially there is **no software-visible armed process**: until
        the timer fires, malware has nothing to observe (challenge 2).
        """
        for trigger_time in self.schedule:
            self.device.secure_timer.at(trigger_time, self._triggered)
        if self.serve_fetch:
            # Device.reset wipes the NIC's rx_signal waiters; re-listen
            # from the hook or the fetch path dies at the first brownout.
            if not self._hooked:
                self.device.add_reset_hook(self._listen_fetch)
                self._hooked = True
            self._listen_fetch()

    def _listen_fetch(self) -> None:
        listen(self.device.nic, self._on_fetch,
               kinds=frozenset({"seed_fetch"}))

    def _on_fetch(self, message: Message) -> None:
        """Catch-up: resend a stored report the verifier never saw.

        Reports are kept in RAM, which survives a brownout, so the
        fetch path also recovers reports generated before a reset."""
        payload = message.payload or {}
        counter = payload.get("counter")
        for report in self.reports_sent:
            if report.sent_counter == counter:
                self.fetches_served += 1
                self.device.trace.record(
                    self.device.sim.now, "seed.fetch", self.device.name,
                    counter=counter,
                )
                self.device.nic.send(
                    message.src, "seed_fetch_reply",
                    {"counter": counter, "report": report},
                    ctx=message.ctx,
                )
                return

    def _triggered(self) -> None:
        self._counter += 1
        counter = self._counter
        nonce = b"seed" + counter.to_bytes(8, "big")
        # The prover is the initiator in SeED's unidirectional design,
        # so the push is where the exchange's trace context is born.
        ctx = (
            TraceContext.mint("seed", self.device.name, counter)
            if self.device.sim.obs.enabled else None
        )
        mp = MeasurementProcess(
            self.device, self.config, nonce=nonce, counter=counter,
            mechanism="seed", ctx=ctx,
        )
        proc = self.device.cpu.spawn(
            f"{self.device.name}.seed-mp.{counter}",
            mp.run,
            priority=self.config.priority,
        )

        def send_report(_record, mp=mp, counter=counter, ctx=ctx) -> None:
            report = AttestationReport.authenticate(
                self.device.attestation_key,
                self.device.name,
                [mp.record],
                sent_counter=counter,
            )
            self.reports_sent.append(report)
            self.device.nic.send(
                self.verifier_name, "seed_report", report, ctx=ctx
            )

        proc.done_signal.wait(send_report)


@dataclass
class ExpectedReport:
    """One slot in the verifier's expectation ledger."""

    counter: int
    trigger_time: float
    deadline: float
    received: bool = False
    fetch_sent: bool = False
    result: Optional[VerificationResult] = None


class SeedMonitor:
    """Verifier side: awaits pushed reports, flags the missing ones.

    Replay defense is selectable per the paper ("SeED requires either
    monotonic counters or synchronized real time clocks"):

    * ``replay_defense="counter"`` -- strictly increasing per-stream
      monotonic counters (the default);
    * ``replay_defense="clock"`` -- synchronized clocks: a report whose
      newest measurement is older than ``clock_skew_bound`` at
      verification time is rejected as stale, catching replays without
      prover-side counter state.
    """

    def __init__(
        self,
        verifier: Verifier,
        channel: Channel,
        device_name: str,
        shared_seed: bytes,
        min_gap: float = 5.0,
        max_gap: float = 15.0,
        trigger_count: int = 20,
        grace: float = 2.0,
        endpoint_name: str = "vrf",
        replay_defense: str = "counter",
        clock_skew_bound: float = 1.0,
        catch_up: bool = False,
    ) -> None:
        if replay_defense not in ("counter", "clock"):
            raise ConfigurationError(
                f"unknown replay defense {replay_defense!r}"
            )
        self.verifier = verifier
        self.device_name = device_name
        self.grace = grace
        self.replay_defense = replay_defense
        self.clock_skew_bound = clock_skew_bound
        #: opt-in missed-report recovery: a slot whose deadline passes
        #: gets one ``seed_fetch`` before being declared MISSING (the
        #: prover must run ``serve_fetch=True``)
        self.catch_up = catch_up
        self.fetched = 0  # slots recovered via catch-up
        self.endpoint = channel.make_endpoint(endpoint_name)
        schedule = trigger_schedule(
            shared_seed, min_gap, max_gap, trigger_count
        )
        self.expected: List[ExpectedReport] = [
            ExpectedReport(
                counter=index + 1,
                trigger_time=t,
                deadline=t + grace,
            )
            for index, t in enumerate(schedule)
        ]
        listen(self.endpoint, self._on_message,
               kinds=frozenset({"seed_report"}))
        if catch_up:
            listen(self.endpoint, self._on_fetch_reply,
                   kinds=frozenset({"seed_fetch_reply"}))
        for slot in self.expected:
            verifier.sim.schedule_at(slot.deadline, self._check_missing, slot)

    def _slot_for(self, counter: int) -> Optional[ExpectedReport]:
        for slot in self.expected:
            if slot.counter == counter:
                return slot
        return None

    def _on_message(self, message: Message) -> None:
        if message.kind != "seed_report":
            return
        report: AttestationReport = message.payload
        if report.device != self.device_name:
            return
        if self.replay_defense == "counter":
            result = self.verifier.verify_report(
                report, enforce_counter=True, counter_stream="seed-push"
            )
        else:
            result = self.verifier.verify_report(report)
            staleness = self.verifier.sim.now - report.newest.t_end
            if result.healthy and staleness > self.clock_skew_bound:
                result = VerificationResult(
                    verdict=Verdict.REPLAY,
                    device=report.device,
                    verified_at=self.verifier.sim.now,
                    detail=(
                        f"stale report: measured {staleness:.3f}s ago, "
                        f"clock bound {self.clock_skew_bound:.3f}s"
                    ),
                )
                self.verifier.results.append(result)
        slot = self._slot_for(report.sent_counter)
        if slot is not None and not slot.received:
            slot.received = True
            slot.result = result
        obs = self.verifier.sim.obs
        if obs.enabled:
            # Push flight + verification, linked to the prover-minted
            # context so SeED exchanges appear in the causal timeline.
            span_args = dict(
                device=report.device, verdict=result.verdict.value,
            )
            if message.ctx is not None:
                span_args["trace_id"] = message.ctx.trace_id
            obs.spans.add_span(
                "seed.push", message.sent_at, self.verifier.sim.now,
                category="ra.verifier", **span_args,
            )

    def _on_fetch_reply(self, message: Message) -> None:
        """A catch-up fetch came back: verify it against its slot.

        The per-stream monotonic counter has usually moved past the
        missing slot by now (later pushes verified first), so the
        fetched report is verified *without* counter enforcement --
        its binding to the slot is the authenticated ``sent_counter``
        (the payload's echoed counter is unauthenticated and ignored:
        a replayed or forged reply can only ever land in the slot its
        report was genuinely generated for, and only a slot we asked
        about), and staleness is expected by construction, so the
        clock defense is skipped too."""
        payload = message.payload or {}
        report = payload.get("report")
        if not isinstance(report, AttestationReport):
            return
        if report.device != self.device_name:
            return
        slot = self._slot_for(report.sent_counter)
        if slot is None or slot.received or not slot.fetch_sent:
            return
        result = self.verifier.verify_report(report)
        slot.received = True
        slot.result = result
        self.fetched += 1
        obs = self.verifier.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "seed.catchup.recovered",
                "missed SeED reports recovered via fetch",
            ).inc()

    def _check_missing(self, slot: ExpectedReport) -> None:
        if slot.received:
            return
        if self.catch_up and not slot.fetch_sent:
            slot.fetch_sent = True
            self.endpoint.send(
                self.device_name, "seed_fetch", {"counter": slot.counter},
                ctx=(
                    TraceContext.mint(
                        "seed-fetch", self.device_name, slot.counter
                    )
                    if self.verifier.sim.obs.enabled else None
                ),
            )
            obs = self.verifier.sim.obs
            if obs.enabled:
                obs.metrics.counter(
                    "seed.catchup.fetches",
                    "catch-up fetches sent for missed SeED reports",
                ).inc()
            # one grace window for the fetch round trip
            self.verifier.sim.schedule(self.grace, self._check_missing, slot)
            return
        result = VerificationResult(
            verdict=Verdict.MISSING,
            device=self.device_name,
            verified_at=self.verifier.sim.now,
            detail=(
                f"expected report #{slot.counter} "
                f"(trigger ~{slot.trigger_time:.3f}) never arrived"
            ),
        )
        slot.result = result
        self.verifier.results.append(result)

    # -- summary -----------------------------------------------------------

    def missing_count(self) -> int:
        return sum(
            1 for slot in self.expected
            if slot.result is not None
            and slot.result.verdict is Verdict.MISSING
        )

    def verdict_series(self) -> List[str]:
        return [
            slot.result.verdict.value if slot.result else "pending"
            for slot in self.expected
        ]


#: the SeED push counter stream (independent of ERASMUS collections)
PUSH_STREAM = "seed-push"


def verify_pushes_batch(verifier, reports):
    """Epoch-batch verify SeED prover-initiated pushes.

    Mirrors :class:`SeedMonitor`'s counter replay defense
    (``enforce_counter`` on the per-device ``"seed-push"`` stream) but
    amortizes the expected-digest recomputation across every
    same-epoch report via
    :meth:`~repro.ra.verifier.Verifier.verify_batch`.
    """
    return verifier.verify_batch(
        [
            (
                report,
                {"enforce_counter": True, "counter_stream": PUSH_STREAM},
            )
            for report in reports
        ]
    )
