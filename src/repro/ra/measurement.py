"""The measurement process MP: keyed block traversal of prover memory.

This is the engine every mechanism in Section 3 shares.  One run of
:class:`MeasurementProcess`:

1. marks t_s and (optionally) enters an atomic section -- SMART's
   "disable interrupts first" (Section 3.1);
2. applies a :class:`~repro.ra.locking.LockingPolicy` start hook,
   charging simulated MPU-syscall time;
3. derives the traversal order -- sequential, or a secret permutation
   derived from the attestation key and nonce (SMARM, Section 3.2), so
   the verifier can recompute it but on-device malware cannot;
4. walks the blocks: snapshot, HMAC update, simulated hash time,
   per-block lock hooks, and -- when interruptible -- a progress
   notification to resident malware, which is exactly the adversary
   model of Section 3.2 ("it may be able to determine how far along
   the measurement is ... and thus deduce how many blocks have been
   measured");
5. marks t_e, finalizes the HMAC (outer hash), releases or schedules
   release of remaining locks, and produces a
   :class:`~repro.ra.report.MeasurementRecord`.

Malware boundary actions are instantaneous: a zero-cost,
perfectly-reactive adversary, i.e. the *worst case* for every
mechanism (any real malware is slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hmac import Hmac, hmac_digest
from repro.errors import ConfigurationError
from repro.ra.locking import LockingPolicy, NoLock
from repro.ra.report import MeasurementRecord, audit_hash
from repro.sim.device import Device
from repro.sim.process import Atomic, Compute, Process
from repro.sim.trace import TraceRecord


@dataclass
class MeasurementConfig:
    """Static parameters of a measurement.

    ``order`` is ``"sequential"`` (SMART, locking mechanisms) or
    ``"shuffled"`` (SMARM).  ``atomic`` masks interrupts for the whole
    traversal.  ``locking`` defaults to No-Lock.  ``release_delay``
    sets t_r = t_e + delay for the extended policies (a
    verifier-triggered release behaves identically; we model the
    timer-based variant).  ``region`` restricts measurement to a named
    region (TyTAN's per-process measurement); ``None`` measures all of
    M.
    """

    algorithm: str = "blake2s"
    order: str = "sequential"
    atomic: bool = False
    locking: Optional[LockingPolicy] = None
    release_delay: float = 0.0
    region: Optional[str] = None
    priority: int = 50
    notify_malware: bool = True
    #: Section 2.3: contribute zeros for blocks in mutable regions so
    #: legitimate data writes do not read as compromise.  The verifier
    #: mirrors this via the record's ``normalized`` flag.
    normalize_mutable: bool = False
    #: Section 2.3's other option: measure everything as-is and attach
    #: a verbatim copy of the mutable (data) region to the record, so
    #: the verifier can reproduce the digest ("Prv can return the
    #: fixed-size measurement result ... accompanied by a copy of D.
    #: Clearly, this only makes sense if |D| is small").  Mutually
    #: exclusive with ``normalize_mutable``.
    attach_mutable: bool = False

    def __post_init__(self) -> None:
        if self.order not in ("sequential", "shuffled"):
            raise ConfigurationError(f"unknown order {self.order!r}")
        if self.release_delay < 0:
            raise ConfigurationError("release_delay must be >= 0")
        if self.normalize_mutable and self.attach_mutable:
            raise ConfigurationError(
                "normalize_mutable and attach_mutable are the two "
                "alternative treatments of D; pick one"
            )


def derive_order_seed(key: bytes, nonce: bytes, counter: int) -> bytes:
    """Key-derived seed for the secret traversal permutation.

    Malware cannot compute it (no key access); the verifier can.
    """
    material = b"smarm-order" + nonce + counter.to_bytes(8, "big")
    return hmac_digest(key, material, "sha256")[:16]


def traversal_order(
    blocks: Sequence[int], order: str, order_seed: bytes
) -> List[int]:
    """The block visit order for a measurement (shared with the verifier)."""
    if order == "sequential":
        return list(blocks)
    return HmacDrbg(order_seed).shuffle(list(blocks))


class MeasurementProcess:
    """One run of MP on a device.

    Spawn it on the device CPU::

        mp = MeasurementProcess(device, config, nonce=b"...", counter=1)
        proc = device.cpu.spawn("mp", mp.run, priority=config.priority)
        sim.run()
        record = mp.record

    The finished :class:`MeasurementRecord` is also the process result
    (``proc.result``), so callers can wait on ``proc.done_signal``.
    """

    def __init__(
        self,
        device: Device,
        config: MeasurementConfig,
        nonce: bytes,
        counter: int = 0,
        mechanism: str = "generic",
        ctx: Optional[Any] = None,
    ) -> None:
        self.device = device
        self.config = config
        self.nonce = nonce
        self.counter = counter
        self.mechanism = mechanism
        #: trace context of the exchange that requested this measurement
        self.ctx = ctx
        self.record: Optional[MeasurementRecord] = None
        self.policy = config.locking if config.locking is not None else NoLock()

    # -- helpers ---------------------------------------------------------

    def _measured_blocks(self) -> List[int]:
        if self.config.region is None:
            return list(range(self.device.block_count))
        region = self.device.memory.regions.get(self.config.region)
        if region is None:
            raise ConfigurationError(
                f"unknown region {self.config.region!r}"
            )
        return list(region.blocks())

    def _lock_cost(self, ops: int) -> float:
        return ops * self.device.timing.lock_op_cost

    # -- the process body ---------------------------------------------------

    def run(self, proc: Process):
        device = self.device
        config = self.config
        sim = device.sim
        timing = device.timing
        interruptible = not config.atomic

        blocks = self._measured_blocks()
        order_seed = b""
        if config.order == "shuffled":
            order_seed = derive_order_seed(
                device.attestation_key, self.nonce, self.counter
            )
        order = traversal_order(blocks, config.order, order_seed)

        t_start = sim.now
        preemptions_before = proc.preemption_count
        device.trace.record(
            sim.now, "mp.start", self.mechanism,
            nonce=self.nonce.hex()[:8], counter=self.counter,
        )

        obs = device.obs
        spans = obs.spans if obs.enabled else None
        if spans is not None:
            span_args = dict(
                mechanism=self.mechanism, order=config.order,
                atomic=config.atomic, blocks=len(order),
            )
            if self.ctx is not None:
                span_args["trace_id"] = self.ctx.trace_id
            measurement_span = spans.begin_span(
                "ra.measurement", category="ra.measurement", **span_args
            )
            m_blocks = obs.metrics.counter(
                "ra.blocks.measured", "attested blocks traversed",
                mechanism=self.mechanism,
            )
            m_bytes = obs.metrics.counter(
                "ra.bytes.measured", "simulated bytes hashed",
                mechanism=self.mechanism,
            )
        else:
            measurement_span = None
            m_blocks = m_bytes = None

        if config.atomic:
            yield Atomic(True)

        self.policy.reset(device, order)
        start_ops = self.policy.on_start()
        if start_ops:
            yield Compute(self._lock_cost(start_ops))

        if config.notify_malware:
            device.notify_measurement_started(
                self.mechanism, interruptible, config.region or ""
            )

        mac = Hmac(device.attestation_key, config.algorithm)
        mac.update(self.nonce + self.counter.to_bytes(8, "big"))

        block_times = [-1.0] * device.block_count
        block_hashes = [b""] * device.block_count
        block_hash_time = timing.hash_time(
            config.algorithm, device.memory.sim_block_size
        )

        zero_block = b"\x00" * device.memory.block_size
        data_copy = []

        # Regions are static for the lifetime of a measurement, so the
        # per-block mutability answers are precomputed once by marking
        # each mutable region's range into a flat array -- no per-block
        # region-table scan on the traversal hot loop.
        mutable_lookup = [False] * device.block_count
        if config.normalize_mutable or config.attach_mutable:
            for marked_region in device.memory.regions.values():
                if marked_region.mutable:
                    for marked_index in marked_region.blocks():
                        mutable_lookup[marked_index] = True

        def digest_content(block_index: int, content: bytes) -> bytes:
            if config.normalize_mutable and mutable_lookup[block_index]:
                return zero_block
            if config.attach_mutable and mutable_lookup[block_index]:
                # Ship the measured data verbatim (Section 2.3's
                # "accompanied by a copy of D").
                data_copy.append((block_index, content))
            return content

        # Digest-cache plumbing (None = seed-identical path).  Hits
        # reuse the frozen content snapshot and audit hash for an
        # unchanged (block, generation) and mark the Compute as
        # coalescible; the HMAC stream and sim-time charges are
        # untouched either way.
        memory = device.memory
        cache = device.digest_cache
        if cache is not None:
            generations = memory.generations
            algorithm = config.algorithm
            key_fp = device.key_fingerprint
            hits_before, misses_before = cache.hits, cache.misses

        # A run of consecutive cache hits OR misses can bypass the
        # generator/event-queue round-trip entirely: per block the
        # engine proves no event (hence no preemption, no interleaved
        # writer) can land inside the compute window
        # (Simulator.can_coalesce), so the clock is advanced inline
        # with identical trace records, block timestamps and CPU
        # accounting.  Miss fills read, audit and store inline -- and
        # still-benign content (recognised by identity against the
        # interned ReferenceStore block in the common case) reuses the
        # precomputed reference audit instead of re-hashing.  Requires
        # the inert NoLock policy -- real locking policies have
        # per-block MPU side effects that must keep their own Compute
        # yields -- and no span instrumentation (spans want one
        # begin/end pair per yield-delimited block).
        inline_ok = (
            cache is not None
            and spans is None
            and type(self.policy) is NoLock
        )
        # Burst mode tightens the inline path further: when no malware
        # agent is registered, nothing inside a run can schedule an
        # event or observe the clock, so the engine's coalesce window
        # is computed ONCE per burst (instead of per block) and
        # ``sim.now``/``_seq``/counters are written back in one batch.
        # The per-step float accumulation (``now += d``) matches
        # ``coalesce_advance`` exactly, and intermediate ``_seq`` values
        # are unobservable, so traces stay byte-identical.  Ring-buffer
        # traces need :meth:`Trace.record`'s dropped-count bookkeeping,
        # hence the ``max_records is None`` gate on the direct-append.
        trace = device.trace
        burst_ok = inline_ok and trace.max_records is None
        normalize = config.normalize_mutable
        plain_content = not (normalize or config.attach_mutable)
        records_append = trace.records.append
        mac_update = mac.update
        cache_lookup = cache.lookup if cache is not None else None
        cache_store = cache.store if cache is not None else None
        read_block = memory.read_block
        benign = memory.reference_blocks()
        benign_audit = memory.benign_audit
        proc_name = proc.name
        region_name = config.region or ""
        notify = config.notify_malware
        total = len(order)
        position = 0
        looked_up = False  # cache_key/cached already hold order[position]
        while position < total:
            block_index = order[position]
            if not looked_up:
                cached = None
                if cache is not None:
                    cache_key = (
                        block_index, generations[block_index],
                        algorithm, key_fp,
                    )
                    cached = cache_lookup(cache_key)
            looked_up = False
            if inline_ok and sim.can_coalesce(block_hash_time):
                if burst_ok and not device.malware_agents:
                    # can_coalesce just proved now + d is inside both
                    # bounds; freeze them for the whole burst.  The
                    # cache's OrderedDict is driven directly here (same
                    # get / move_to_end / counter discipline as
                    # DigestCache.lookup) to shed a call per block, and
                    # the running clock / CPU-time / hit-and-miss
                    # counters live in locals -- identical
                    # one-add-per-block float sequences, written back
                    # before anything else can observe them.  Misses
                    # read + audit + fill the cache inline; with no
                    # agents registered nothing can have dirtied memory
                    # mid-burst, so the benign-identity fast path takes
                    # the interned reference audit whenever the block
                    # really is pristine.
                    head = sim._live_head()
                    head_time = head.time if head is not None else None
                    until_bound = sim._until
                    entries_get = cache._entries.get
                    entries_move = cache._entries.move_to_end
                    now = sim.now
                    cpu_time = proc.cpu_time
                    steps = 0
                    burst_hits = 0
                    burst_misses = 0
                    while True:
                        if cached is None:
                            content = read_block(block_index)
                            reference = benign[block_index]
                            if content is reference or content == reference:
                                audit = benign_audit(block_index)
                            else:
                                audit = audit_hash(content)  # repro: allow[perf-uncached-digest]
                            cache_store(cache_key, content, audit)
                        else:
                            content, audit = cached
                        block_times[block_index] = now
                        block_hashes[block_index] = audit
                        if plain_content:
                            mac_update(content)
                        elif normalize:
                            mac_update(
                                zero_block if mutable_lookup[block_index]
                                else content
                            )
                        else:
                            mac_update(digest_content(block_index, content))
                        records_append(TraceRecord(
                            now, "compute", proc_name,
                            {"duration": block_hash_time},
                        ))
                        now += block_hash_time
                        cpu_time += block_hash_time
                        steps += 1
                        position += 1
                        # notify_block_measured is skipped: no agents
                        # are registered, so it would be a no-op.
                        if position >= total:
                            break
                        target = now + block_hash_time
                        if (
                            until_bound is not None
                            and target > until_bound
                        ) or (
                            head_time is not None and target >= head_time
                        ):
                            # Window exhausted: the next block re-enters
                            # the outer loop un-looked-up and lands on
                            # the generic path (can_coalesce fails for
                            # the same frozen bounds).
                            break
                        block_index = order[position]
                        cache_key = (
                            block_index, generations[block_index],
                            algorithm, key_fp,
                        )
                        cached = entries_get(cache_key)
                        if cached is None:
                            burst_misses += 1
                        else:
                            entries_move(cache_key)
                            burst_hits += 1
                    sim.now = now
                    sim._seq += steps
                    proc.cpu_time = cpu_time
                    cache.hits += burst_hits
                    cache.misses += burst_misses
                    if sim._m_scheduled is not None:
                        sim._m_scheduled.inc(steps)
                        sim._m_fired.inc(steps)
                    continue
                while True:
                    if cached is None:
                        content = read_block(block_index)
                        reference = benign[block_index]
                        if content is reference or content == reference:
                            audit = benign_audit(block_index)
                        else:
                            audit = audit_hash(content)  # repro: allow[perf-uncached-digest]
                        cache_store(cache_key, content, audit)
                    else:
                        content, audit = cached
                    block_times[block_index] = sim.now
                    block_hashes[block_index] = audit
                    mac.update(digest_content(block_index, content))
                    trace.record(
                        sim.now, "compute", proc.name,
                        duration=block_hash_time,
                    )
                    sim.coalesce_advance(block_hash_time)
                    proc.cpu_time += block_hash_time
                    position += 1
                    if notify:
                        device.notify_block_measured(
                            position, total, interruptible, region_name
                        )
                    if position >= total:
                        break
                    block_index = order[position]
                    cache_key = (
                        block_index, generations[block_index],
                        algorithm, key_fp,
                    )
                    cached = cache.lookup(cache_key)
                    if not sim.can_coalesce(block_hash_time):
                        # Hand order[position] -- lookup already done --
                        # to the generic path below.
                        looked_up = True
                        break
                continue
            if spans is not None:
                # Mirror the Section 3.2 adversary model in the trace:
                # when the order is a secret permutation the span says
                # how far along MP is, never which block it touched.
                block_args = {"position": position + 1}
                if config.order != "shuffled":
                    block_args["block"] = block_index
                block_span = spans.begin_span(
                    "ra.block", category="ra.measurement", **block_args
                )
            pre_ops = self.policy.before_block(block_index)
            if pre_ops:
                yield Compute(self._lock_cost(pre_ops))
            if cached is None:
                content = memory.read_block(block_index)
                # Miss path doubles as the cache fill; still-benign
                # content reuses the interned reference audit, anything
                # else is hashed -- exactly what the next visit skips.
                # The cache-off (seed) path keeps its unconditional
                # hash so it stays byte-for-byte untouched.
                if cache is not None:
                    reference = benign[block_index]
                    if content is reference or content == reference:
                        audit = benign_audit(block_index)
                    else:
                        audit = audit_hash(content)  # repro: allow[perf-uncached-digest]
                    cache.store(cache_key, content, audit)
                else:
                    audit = audit_hash(content)  # repro: allow[perf-uncached-digest]
            else:
                content, audit = cached
            block_times[block_index] = sim.now
            block_hashes[block_index] = audit
            mac.update(digest_content(block_index, content))
            yield Compute(block_hash_time, coalesce=cached is not None)
            post_ops = self.policy.after_block(block_index)
            if post_ops:
                yield Compute(self._lock_cost(post_ops))
            if spans is not None:
                spans.end_span(block_span)
                m_blocks.inc()
                m_bytes.inc(device.memory.sim_block_size)
            if notify:
                device.notify_block_measured(
                    position + 1, total, interruptible, region_name
                )
            position += 1

        # Outer HMAC hash over the fixed-size inner digest.
        yield Compute(timing.hash_time(config.algorithm, mac.digest_size))
        digest = mac.digest()

        # t_e is stamped before the end-of-measurement unlocks so that
        # "released at t_e" means exactly that; the MPU syscall time is
        # then charged after the measurement proper.
        t_end = sim.now
        end_ops = self.policy.on_end()
        if end_ops:
            yield Compute(self._lock_cost(end_ops))

        t_release: Optional[float] = None
        if self.policy.holds_after_end:
            t_release = t_end + config.release_delay
            # The extended policies *deliberately* keep the lock past
            # the atomic section: t_r release is part of the mechanism
            # (All-Lock-Ext / Inc-Lock-Ext), not an interleaving bug,
            # and the timer only fires after Atomic(False) below.
            sim.schedule(config.release_delay, self._do_release)  # repro: allow[ra-atomic-gap]

        if config.atomic:
            yield Atomic(False)

        if config.notify_malware:
            device.notify_measurement_finished()

        self.record = MeasurementRecord(
            device=device.name,
            mechanism=self.mechanism,
            algorithm=config.algorithm,
            nonce=self.nonce,
            counter=self.counter,
            digest=digest,
            t_start=t_start,
            t_end=t_end,
            block_count=len(order),
            order_seed=order_seed,
            region=config.region or "",
            normalized=config.normalize_mutable,
            data_copy=tuple(sorted(data_copy)),
            t_release=t_release,
            interruptions=proc.preemption_count - preemptions_before,
            audit_block_times=tuple(block_times),
            audit_block_hashes=tuple(block_hashes),
        )
        device.trace.record(
            sim.now, "mp.end", self.mechanism,
            duration=round(t_end - t_start, 6),
            interruptions=self.record.interruptions,
        )
        if spans is not None:
            spans.end_span(
                measurement_span,
                interruptions=self.record.interruptions,
                digest=digest.hex()[:8],
            )
            obs.metrics.histogram(
                "ra.measurement.duration",
                "wall-to-wall measurement window t_e - t_s (sim s)",
                mechanism=self.mechanism,
            ).observe(
                t_end - t_start,
                exemplar=(
                    self.ctx.trace_id if self.ctx is not None else None
                ),
            )
            if cache is not None:
                # Cache-off runs never register these series, so the
                # seed metric snapshot is untouched by default.
                obs.metrics.counter(
                    "perf.digest_cache.hits",
                    "measurement blocks served from the digest cache",
                    mechanism=self.mechanism,
                ).inc(cache.hits - hits_before)
                obs.metrics.counter(
                    "perf.digest_cache.misses",
                    "measurement blocks hashed and cached",
                    mechanism=self.mechanism,
                ).inc(cache.misses - misses_before)
        return self.record

    def _do_release(self) -> None:
        """Release extended locks at t_r (timer- or verifier-driven)."""
        self.policy.on_release()
        self.device.trace.record(
            self.device.sim.now, "mp.release", self.mechanism
        )


def expected_digest(
    key: bytes,
    reference_blocks: Sequence[bytes],
    algorithm: str,
    nonce: bytes,
    counter: int,
    measured_blocks: Sequence[int],
    order: str,
    order_seed: bytes,
    normalized_blocks: Optional[frozenset] = None,
) -> bytes:
    """What the verifier expects MP to produce over a reference image.

    Mirrors :meth:`MeasurementProcess.run`'s digest computation exactly;
    any divergence between prover memory and the reference changes the
    result.  ``normalized_blocks`` are the mutable blocks that
    contribute zeros when the record is normalized (Section 2.3).
    """
    visit = traversal_order(list(measured_blocks), order, order_seed)
    mac = Hmac(key, algorithm)
    mac.update(nonce + counter.to_bytes(8, "big"))
    normalized = normalized_blocks or frozenset()
    for block_index in visit:
        if block_index in normalized:
            mac.update(b"\x00" * len(reference_blocks[block_index]))
        else:
            mac.update(reference_blocks[block_index])
    return mac.digest()
