"""Process-wide interned benign firmware: the cold-path ReferenceStore.

Every simulated prover boots from the same deterministic benign image
(:func:`repro.sim.memory.benign_fill`), and the verifier's reference
database is that image again.  Before this store existed, *each*
``Memory`` construction re-ran the per-byte PRNG loop for every block,
every cold measurement re-hashed those same bytes for its audit
fingerprints, and a thousand-prover fleet campaign paid all of it a
thousand times over.

:class:`ReferenceStore` interns benign block contents and their audit
hashes once per process, keyed by ``(seed, block_size, block_index)``:

* :class:`repro.sim.memory.Memory` construction copies interned bytes
  into its mutable blocks instead of regenerating them, and hands out
  the interned objects themselves for ``benign_block`` /
  ``benign_image`` / ``dirty_blocks``;
* the measurement process's cache-miss fill recognises still-benign
  content (an O(1) identity check against the interned block in the
  common case) and reuses the precomputed audit hash instead of
  re-hashing;
* :meth:`repro.ra.verifier.Verifier.enroll` reference images share the
  interned blocks structurally (``bytes(b)`` of an exact ``bytes``
  returns the same object), so N identical enrolled provers hold one
  firmware image, not N.

Interning is *pure memoization* of already-deterministic functions, so
every byte handed out is identical to what the uncached code produced
-- pinned by tests against the raw generators.

Bounding
--------
Fleet campaigns sweep device seeds, so the store is a bounded LRU at
*image* granularity: up to ``capacity`` distinct ``(seed, block_size)``
images stay interned; evicting one drops all its blocks/audits at
once.  Live ``Memory`` objects keep a direct reference to their image
view, so eviction only ever frees images no device is using.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: truncated audit-fingerprint length; must match
#: :data:`repro.sim.memory.FINGERPRINT_LEN` (the import direction --
#: ``sim.memory`` imports this module -- forbids sharing the constant;
#: the equality is pinned by ``tests/test_reference_store.py``)
AUDIT_LEN = 8

#: default maximum number of distinct (seed, block_size) images interned
DEFAULT_IMAGE_CAPACITY = 64


def raw_benign_fill(block_index: int, block_size: int, seed: int) -> bytes:
    """The uncached benign-content generator.

    This is the seed repo's ``benign_fill`` byte-for-byte: one
    ``random.Random`` per block, one ``getrandbits(8)`` per byte.  The
    public :func:`repro.sim.memory.benign_fill` memoizes it through the
    process-wide store; this raw form stays importable so tests can pin
    the memoized output against it.
    """
    rng = random.Random((seed << 20) ^ block_index)
    return bytes(rng.getrandbits(8) for _ in range(block_size))


class ReferenceImage:
    """One interned benign image: lazy per-block contents and audits.

    Handed out by :meth:`ReferenceStore.image`; ``Memory`` keeps its
    view for the device's lifetime so per-block access is two dict
    lookups with no LRU traffic.
    """

    __slots__ = ("seed", "block_size", "_blocks", "_audits", "_tuples")

    def __init__(self, seed: int, block_size: int) -> None:
        self.seed = seed
        self.block_size = block_size
        self._blocks: Dict[int, bytes] = {}
        self._audits: Dict[int, bytes] = {}
        #: memoized per-block_count prefix tuples for image construction
        self._tuples: Dict[int, Tuple[bytes, ...]] = {}

    def block(self, block_index: int) -> bytes:
        """Interned benign contents of one block (generated on first use)."""
        content = self._blocks.get(block_index)
        if content is None:
            content = self._blocks[block_index] = raw_benign_fill(
                block_index, self.block_size, self.seed
            )
        return content

    def audit(self, block_index: int) -> bytes:
        """Precomputed audit hash of the block's benign contents.

        Equals ``repro.sim.memory.content_fingerprint(self.block(i))``;
        computed once per process instead of once per device traversal.
        """
        audit = self._audits.get(block_index)
        if audit is None:
            audit = self._audits[block_index] = hashlib.sha256(
                self.block(block_index)
            ).digest()[:AUDIT_LEN]
        return audit

    def blocks(self, block_count: int) -> Tuple[bytes, ...]:
        """The first ``block_count`` interned blocks as one shared tuple."""
        cached = self._tuples.get(block_count)
        if cached is None:
            block = self.block
            cached = self._tuples[block_count] = tuple(
                block(index) for index in range(block_count)
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceImage seed={self.seed} "
            f"block_size={self.block_size} blocks={len(self._blocks)}>"
        )


class ReferenceStore:
    """Bounded process-wide LRU of :class:`ReferenceImage` objects."""

    __slots__ = ("capacity", "evictions", "_images")

    def __init__(self, capacity: int = DEFAULT_IMAGE_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError("image capacity must be positive")
        self.capacity = capacity
        self.evictions = 0
        self._images: "OrderedDict[Tuple[int, int], ReferenceImage]" = (
            OrderedDict()
        )

    def image(self, seed: int, block_size: int) -> ReferenceImage:
        """The interned image view for ``(seed, block_size)``."""
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        key = (seed, block_size)
        images = self._images
        image = images.get(key)
        if image is None:
            image = images[key] = ReferenceImage(seed, block_size)
            if len(images) > self.capacity:
                images.popitem(last=False)
                self.evictions += 1
        else:
            images.move_to_end(key)
        return image

    def block(self, block_index: int, block_size: int, seed: int) -> bytes:
        """Interned benign contents (``benign_fill`` argument order)."""
        return self.image(seed, block_size).block(block_index)

    def audit(self, block_index: int, block_size: int, seed: int) -> bytes:
        """Interned audit hash (``benign_fill`` argument order)."""
        return self.image(seed, block_size).audit(block_index)

    def clear(self) -> int:
        """Drop every interned image (test isolation).  Returns count."""
        dropped = len(self._images)
        self._images.clear()
        return dropped

    def stats(self) -> Dict[str, float]:
        """Counters for telemetry / bench output."""
        return {
            "images": len(self._images),
            "capacity": self.capacity,
            "evictions": self.evictions,
            "blocks": sum(
                len(image._blocks) for image in self._images.values()
            ),
            "audits": sum(
                len(image._audits) for image in self._images.values()
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceStore {len(self._images)}/{self.capacity} images>"
        )


#: the process-wide store every Memory/measurement consults; tests that
#: need isolation swap or clear it explicitly
REFERENCE_STORE = ReferenceStore()


def interned_image(
    block_count: int, block_size: int, seed: int
) -> Tuple[bytes, ...]:
    """Shared tuple of the first ``block_count`` benign blocks."""
    return REFERENCE_STORE.image(seed, block_size).blocks(block_count)


def set_reference_store(store: ReferenceStore) -> ReferenceStore:
    """Swap the process-wide store (tests); returns the previous one."""
    global REFERENCE_STORE
    previous = REFERENCE_STORE
    REFERENCE_STORE = store
    return previous
