"""Hot-path performance layer: caching and benchmarking.

Wall-clock optimisations that are *provably inert* in sim-time:

* :class:`DigestCache` -- generation-aware per-block content/digest
  cache consulted by the measurement process (golden-equality pinned);
* :mod:`repro.perf.bench` -- the seeded ``repro bench`` micro/macro
  suite that records throughput numbers in ``BENCH_<rev>.json`` and
  fails comparisons on >20% regression.

Run-level caching (skipping whole fleet runs) lives in
:mod:`repro.fleet.store`; this package covers within-run hot paths.
"""

from repro.perf.digest_cache import DEFAULT_CAPACITY, DigestCache

__all__ = ["DEFAULT_CAPACITY", "DigestCache"]
