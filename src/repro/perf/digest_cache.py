"""Generation-aware digest cache for the measurement hot loop.

The paper's quantitative core is *simulated* measurement latency
(Figure 2); the Python cost of actually hashing block bytes on every
traversal is pure reproduction overhead.  ERASMUS and SeED self-measure
on a schedule, SMARM re-walks the same blocks shuffled, and fleet
campaigns repeat near-identical runs by the hundreds -- most traversals
re-hash memory that has not changed since the previous round.

:class:`DigestCache` removes that overhead without touching a single
simulated timestamp.  Entries are keyed by::

    (block_index, generation, algorithm, key_fingerprint)

``generation`` is :attr:`repro.sim.memory.Memory.generations` -- a
monotonic per-block counter bumped on every applied write -- so any
mutation (malware infection, relocation, workload writes, re-flash)
makes stale entries unreachable by construction.  ``key_fingerprint``
scopes entries to the device's attestation key, and ``algorithm`` to
the measurement configuration, so caches are never shared across
cryptographic contexts.

A hit returns the block's frozen content bytes and its audit hash
(:func:`repro.ra.report.audit_hash`); the measurement process still
feeds the content into the HMAC stream (nonce/counter prefixes make
the final digest per-measurement) and still charges the calibrated
ODROID hash time in sim-time.  Only the redundant Python-side
``read_block`` copy and SHA-256 audit hash are skipped -- plus, via
``Compute(..., coalesce=True)``, the per-block event-queue round-trip
that dominates wall clock.  Golden-equality tests pin cache-on runs
byte-identical to cache-off runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: (block_index, generation, algorithm, key_fingerprint)
CacheKey = Tuple[int, int, str, bytes]
#: (frozen block contents, audit hash of those contents)
CacheEntry = Tuple[bytes, bytes]

DEFAULT_CAPACITY = 4096


class DigestCache:
    """Bounded LRU cache of per-block content snapshots + audit hashes.

    One instance serves one device (wired via
    ``Device(digest_cache=...)`` or ``Scenario.build(digest_cache=True)``)
    and is consulted only by :class:`repro.ra.measurement.MeasurementProcess`.
    The default everywhere is *no cache*: the seed code path stays
    byte-for-byte untouched unless a caller opts in.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions",
                 "invalidations", "_entries")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: CacheKey) -> Optional[CacheEntry]:
        """The cached entry for ``key``, refreshed as most-recently-used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: CacheKey, content: bytes, audit: bytes) -> None:
        """Insert an entry, evicting the least-recently-used past capacity."""
        entries = self._entries
        entries[key] = (bytes(content), audit)
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (device reset hygiene).  Returns the count.

        Correctness never depends on this -- generation bumps already
        orphan stale keys -- but a brownout is the natural moment to
        free the dead entries instead of waiting for LRU churn.
        """
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += 1
        return dropped

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for telemetry / bench output."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DigestCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
